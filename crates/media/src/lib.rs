//! Video, catalog, and client models for the cluster-VoD simulation.
//!
//! The paper's media model is deliberately simple: constant-bit-rate videos
//! (`b_view` = 3 Mb/s), lengths drawn uniformly from a per-system range
//! (10–30 min for the "Small" clip server, 1–2 h for the "Large" feature
//! server), and clients characterised by two numbers — how much data they
//! can *stage* on local disk ahead of the playback point, and the peak
//! bandwidth at which they can receive.
//!
//! * [`video`] — [`Video`], [`VideoId`], and size arithmetic (data volumes
//!   are megabits throughout the workspace).
//! * [`catalog`] — an immutable [`Catalog`] of videos plus deterministic
//!   builders.
//! * [`client`] — [`ClientProfile`] (staging capacity + receive cap) with
//!   the constructors the experiments use ("buffer = 20 % of the average
//!   video size", "only enough staging to cover a migration hand-off").
//! * [`units`] — explicit unit conversions (GB ↔ megabits, etc.) so no
//!   magic factors appear in simulation code.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod catalog;
pub mod client;
pub mod units;
pub mod video;

pub use catalog::Catalog;
pub use client::ClientProfile;
pub use video::{Video, VideoId};
