//! Unit conversions.
//!
//! Internal conventions, used consistently across the workspace:
//!
//! * **data volume** — megabits (`Mb`, f64),
//! * **bandwidth** — megabits per second (`Mb/s`, f64),
//! * **time** — seconds (via [`sct_simcore::SimTime`]),
//! * **disk capacity** — specified in gigabytes (decimal GB) in configs,
//!   converted here to megabits for comparisons against video sizes.
//!
//! Keeping the conversion factors in one module avoids the classic
//! bits-vs-bytes error class.

/// Megabits per decimal gigabyte (10⁹ bytes × 8 bits ÷ 10⁶).
pub const MEGABITS_PER_GB: f64 = 8000.0;

/// Megabits per decimal megabyte.
pub const MEGABITS_PER_MB: f64 = 8.0;

/// Converts decimal gigabytes to megabits.
#[inline]
pub fn gb_to_megabits(gb: f64) -> f64 {
    gb * MEGABITS_PER_GB
}

/// Converts megabits to decimal gigabytes.
#[inline]
pub fn megabits_to_gb(mb: f64) -> f64 {
    mb / MEGABITS_PER_GB
}

/// Converts decimal megabytes to megabits.
#[inline]
pub fn mbytes_to_megabits(mbytes: f64) -> f64 {
    mbytes * MEGABITS_PER_MB
}

/// Converts megabits to decimal megabytes.
#[inline]
pub fn megabits_to_mbytes(megabits: f64) -> f64 {
    megabits / MEGABITS_PER_MB
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gb_round_trip() {
        let gb = 123.456;
        assert!((megabits_to_gb(gb_to_megabits(gb)) - gb).abs() < 1e-9);
    }

    #[test]
    fn one_gb_is_8000_megabits() {
        assert_eq!(gb_to_megabits(1.0), 8000.0);
    }

    #[test]
    fn mbyte_round_trip() {
        assert_eq!(mbytes_to_megabits(100.0), 800.0);
        assert_eq!(megabits_to_mbytes(800.0), 100.0);
    }

    #[test]
    fn typical_video_fits_expected_scale() {
        // A 90-minute video at 3 Mb/s is 16 200 Mb ≈ 2.025 GB.
        let size_mb = 90.0 * 60.0 * 3.0;
        assert!((megabits_to_gb(size_mb) - 2.025).abs() < 1e-9);
    }
}
