//! Video objects.
//!
//! A video is a constant-bit-rate stream: a length in seconds and a view
//! bandwidth in Mb/s. Its storage/transfer size is the product. The paper
//! fixes the view bandwidth at 3 Mb/s for every video; we keep it per-video
//! so heterogeneous-bitrate extensions stay possible, but all paper
//! experiments use a uniform rate.

use serde::{Deserialize, Serialize};

/// The paper's view bandwidth: "The rate at which videos are viewed is
/// 3 Mb/s" (§4.1).
pub const PAPER_VIEW_RATE_MBPS: f64 = 3.0;

/// Identifier of a video within a [`crate::Catalog`] — also its popularity
/// rank (0 = most popular) under the workload's Zipf ordering.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct VideoId(pub u32);

impl VideoId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for VideoId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// A constant-bit-rate video object.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Video {
    /// Identifier / popularity rank.
    pub id: VideoId,
    /// Playback length in seconds.
    pub length_secs: f64,
    /// View bandwidth `b_view` in Mb/s.
    pub view_rate_mbps: f64,
}

impl Video {
    /// Creates a video. Requires a positive length and view rate.
    pub fn new(id: VideoId, length_secs: f64, view_rate_mbps: f64) -> Self {
        assert!(
            length_secs > 0.0 && length_secs.is_finite(),
            "video length must be positive, got {length_secs}"
        );
        assert!(
            view_rate_mbps > 0.0 && view_rate_mbps.is_finite(),
            "view rate must be positive, got {view_rate_mbps}"
        );
        Video {
            id,
            length_secs,
            view_rate_mbps,
        }
    }

    /// Total object size in megabits (`length × b_view`).
    #[inline]
    pub fn size_mb(&self) -> f64 {
        self.length_secs * self.view_rate_mbps
    }

    /// Playback length in minutes.
    #[inline]
    pub fn length_mins(&self) -> f64 {
        self.length_secs / 60.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_is_length_times_rate() {
        let v = Video::new(VideoId(0), 1800.0, 3.0);
        assert_eq!(v.size_mb(), 5400.0);
        assert_eq!(v.length_mins(), 30.0);
    }

    #[test]
    fn id_display_and_index() {
        assert_eq!(VideoId(7).to_string(), "v7");
        assert_eq!(VideoId(7).index(), 7);
    }

    #[test]
    #[should_panic(expected = "length must be positive")]
    fn rejects_zero_length() {
        Video::new(VideoId(0), 0.0, 3.0);
    }

    #[test]
    #[should_panic(expected = "view rate must be positive")]
    fn rejects_negative_rate() {
        Video::new(VideoId(0), 60.0, -1.0);
    }
}
