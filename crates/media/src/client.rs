//! Client capability model.
//!
//! The paper distinguishes *client buffering* (a small memory buffer) from
//! *client staging* (workahead transmission onto larger client disk). For
//! the transmission engine both reduce to the same two constraints, so a
//! [`ClientProfile`] carries exactly:
//!
//! * `staging_capacity_mb` — how far (in megabits) transmission may run
//!   ahead of the playback point. `0` degenerates to classic continuous
//!   transmission; `f64::INFINITY` means the client can hold a whole video.
//! * `receive_cap_mbps` — the peak receive bandwidth. The paper's staging
//!   experiments cap this at 30 Mb/s (10 × the view rate); Theorem 1's
//!   optimality of EFTF assumes it is unbounded.

use serde::{Deserialize, Serialize};

/// The paper's client receive-bandwidth limit: "we restrict the amount of
/// bandwidth which can be used to send data to a single client to 30 Mb per
/// second" (§4.3).
pub const PAPER_RECEIVE_CAP_MBPS: f64 = 30.0;

/// Client-side resources relevant to semi-continuous transmission.
///
/// ```
/// use sct_media::ClientProfile;
/// // The paper's §4.3 client: buffer = 20 % of a 5400 Mb average video,
/// // receive cap 30 Mb/s.
/// let c = ClientProfile::staging_fraction(0.2, 5400.0, 30.0);
/// assert_eq!(c.staging_capacity_mb, 1080.0);
/// assert!(c.can_stage(1000.0));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ClientProfile {
    /// Staging buffer capacity in megabits (how much data may sit at the
    /// client unviewed). May be `INFINITY`.
    pub staging_capacity_mb: f64,
    /// Maximum receive bandwidth in Mb/s. May be `INFINITY`.
    pub receive_cap_mbps: f64,
}

impl ClientProfile {
    /// Creates a profile. Capacities must be non-negative; the receive cap
    /// must be positive (a client that cannot receive at all is
    /// meaningless).
    pub fn new(staging_capacity_mb: f64, receive_cap_mbps: f64) -> Self {
        assert!(
            staging_capacity_mb >= 0.0 && !staging_capacity_mb.is_nan(),
            "staging capacity must be >= 0, got {staging_capacity_mb}"
        );
        assert!(
            receive_cap_mbps > 0.0 && !receive_cap_mbps.is_nan(),
            "receive cap must be > 0, got {receive_cap_mbps}"
        );
        ClientProfile {
            staging_capacity_mb,
            receive_cap_mbps,
        }
    }

    /// A client with no staging at all: transmission degenerates to the
    /// continuous baseline (every stream gets exactly `b_view`).
    pub fn no_staging(receive_cap_mbps: f64) -> Self {
        Self::new(0.0, receive_cap_mbps)
    }

    /// A client whose staging buffer is `fraction` of `avg_video_size_mb` —
    /// the paper's parameterisation ("the amount of staging buffer is
    /// expressed as a percentage of the storage required to store an entire
    /// copy of the average sized video", §4.3).
    pub fn staging_fraction(fraction: f64, avg_video_size_mb: f64, receive_cap_mbps: f64) -> Self {
        assert!(
            (0.0..=f64::INFINITY).contains(&fraction),
            "fraction must be >= 0, got {fraction}"
        );
        Self::new(fraction * avg_video_size_mb, receive_cap_mbps)
    }

    /// A client with unbounded staging and receive bandwidth — the regime
    /// of Theorem 1 (EFTF optimality).
    pub fn unbounded() -> Self {
        ClientProfile {
            staging_capacity_mb: f64::INFINITY,
            receive_cap_mbps: f64::INFINITY,
        }
    }

    /// `true` if this client can stage at least `mb` megabits.
    #[inline]
    pub fn can_stage(&self, mb: f64) -> bool {
        self.staging_capacity_mb >= mb
    }

    /// `true` if the staging buffer is unbounded.
    #[inline]
    pub fn is_unbounded_staging(&self) -> bool {
        self.staging_capacity_mb.is_infinite()
    }
}

impl Default for ClientProfile {
    /// The paper's default client for the staging experiments:
    /// no staging, 30 Mb/s receive cap.
    fn default() -> Self {
        Self::no_staging(PAPER_RECEIVE_CAP_MBPS)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn staging_fraction_scales_avg_size() {
        let p = ClientProfile::staging_fraction(0.2, 5400.0, 30.0);
        assert_eq!(p.staging_capacity_mb, 1080.0);
        assert_eq!(p.receive_cap_mbps, 30.0);
    }

    #[test]
    fn zero_fraction_means_no_staging() {
        let p = ClientProfile::staging_fraction(0.0, 5400.0, 30.0);
        assert_eq!(p.staging_capacity_mb, 0.0);
        assert!(p.can_stage(0.0));
        assert!(!p.can_stage(1.0));
    }

    #[test]
    fn unbounded_profile() {
        let p = ClientProfile::unbounded();
        assert!(p.is_unbounded_staging());
        assert!(p.can_stage(1e18));
        assert!(p.receive_cap_mbps.is_infinite());
    }

    #[test]
    fn default_is_paper_no_staging_client() {
        let p = ClientProfile::default();
        assert_eq!(p.staging_capacity_mb, 0.0);
        assert_eq!(p.receive_cap_mbps, PAPER_RECEIVE_CAP_MBPS);
    }

    #[test]
    #[should_panic(expected = "receive cap must be > 0")]
    fn rejects_zero_receive_cap() {
        ClientProfile::new(0.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "staging capacity must be >= 0")]
    fn rejects_negative_staging() {
        ClientProfile::new(-1.0, 30.0);
    }
}
