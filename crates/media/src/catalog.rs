//! The video catalog.
//!
//! A [`Catalog`] is the immutable set of video objects offered by the
//! service. Video ids double as popularity ranks: the workload's Zipf-like
//! law assigns probability `p_i = c / (i+1)^(1-θ)` to `VideoId(i)`, and the
//! *predictive* placement strategy reads the same ranks. The catalog itself
//! is popularity-agnostic — it only knows lengths and sizes.

use crate::video::{Video, VideoId};
use sct_simcore::{Rng, UniformRange};
use serde::{Deserialize, Serialize};

/// An immutable collection of videos.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Catalog {
    videos: Vec<Video>,
}

impl Catalog {
    /// Builds a catalog from an explicit video list.
    ///
    /// Ids must equal positions (`videos[i].id == VideoId(i)`), so that the
    /// popularity rank ↔ id correspondence holds by construction.
    pub fn from_videos(videos: Vec<Video>) -> Self {
        assert!(!videos.is_empty(), "catalog must not be empty");
        for (i, v) in videos.iter().enumerate() {
            assert_eq!(
                v.id,
                VideoId(i as u32),
                "video ids must be dense and in positional order"
            );
        }
        Catalog { videos }
    }

    /// Builds a catalog of `n` videos with lengths drawn uniformly from
    /// `[min_length_secs, max_length_secs)` at a common view rate —
    /// the paper's §4.1 catalog model.
    pub fn uniform_lengths(
        n: usize,
        min_length_secs: f64,
        max_length_secs: f64,
        view_rate_mbps: f64,
        rng: &mut Rng,
    ) -> Self {
        assert!(n > 0, "catalog must not be empty");
        let dist = UniformRange::new(min_length_secs, max_length_secs);
        let videos = (0..n)
            .map(|i| Video::new(VideoId(i as u32), dist.sample(rng), view_rate_mbps))
            .collect();
        Catalog { videos }
    }

    /// Number of videos.
    pub fn len(&self) -> usize {
        self.videos.len()
    }

    /// `true` if the catalog has no videos (cannot happen via constructors).
    pub fn is_empty(&self) -> bool {
        self.videos.is_empty()
    }

    /// The video with the given id. Panics on out-of-range ids — those are
    /// simulation bugs, not recoverable conditions.
    #[inline]
    pub fn video(&self, id: VideoId) -> &Video {
        &self.videos[id.index()]
    }

    /// All videos in rank order.
    pub fn videos(&self) -> &[Video] {
        &self.videos
    }

    /// Iterator over ids in rank order.
    pub fn ids(&self) -> impl Iterator<Item = VideoId> + '_ {
        (0..self.videos.len() as u32).map(VideoId)
    }

    /// Mean video size in megabits. Staging-buffer sizes are expressed as a
    /// fraction of this ("buffer space which is only 20 % of the entire
    /// video object", §4.3).
    pub fn avg_size_mb(&self) -> f64 {
        self.videos.iter().map(Video::size_mb).sum::<f64>() / self.videos.len() as f64
    }

    /// Mean video length in seconds.
    pub fn avg_length_secs(&self) -> f64 {
        self.videos.iter().map(|v| v.length_secs).sum::<f64>() / self.videos.len() as f64
    }

    /// Total size of one copy of every video, in megabits.
    pub fn total_size_mb(&self) -> f64 {
        self.videos.iter().map(Video::size_mb).sum()
    }

    /// The largest single video, in megabits.
    pub fn max_size_mb(&self) -> f64 {
        self.videos.iter().map(Video::size_mb).fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_catalog() -> Catalog {
        let mut rng = Rng::new(1);
        Catalog::uniform_lengths(100, 600.0, 1800.0, 3.0, &mut rng)
    }

    #[test]
    fn uniform_lengths_in_range() {
        let c = small_catalog();
        assert_eq!(c.len(), 100);
        for v in c.videos() {
            assert!((600.0..1800.0).contains(&v.length_secs));
            assert_eq!(v.view_rate_mbps, 3.0);
        }
    }

    #[test]
    fn avg_size_near_expected() {
        // E[length] = 1200 s → E[size] = 3600 Mb; 100 samples land well
        // within ±15 %.
        let c = small_catalog();
        let avg = c.avg_size_mb();
        assert!(
            (avg - 3600.0).abs() < 3600.0 * 0.15,
            "avg size {avg} too far from 3600"
        );
    }

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut r1 = Rng::new(99);
        let mut r2 = Rng::new(99);
        let a = Catalog::uniform_lengths(10, 100.0, 200.0, 3.0, &mut r1);
        let b = Catalog::uniform_lengths(10, 100.0, 200.0, 3.0, &mut r2);
        for (va, vb) in a.videos().iter().zip(b.videos()) {
            assert_eq!(va.length_secs, vb.length_secs);
        }
    }

    #[test]
    fn totals_are_consistent() {
        let c = small_catalog();
        let total = c.total_size_mb();
        assert!((total / c.len() as f64 - c.avg_size_mb()).abs() < 1e-9);
        assert!(c.max_size_mb() <= 1800.0 * 3.0);
        assert!(c.max_size_mb() >= c.avg_size_mb());
    }

    #[test]
    fn from_videos_validates_ids() {
        let vids = vec![
            Video::new(VideoId(0), 100.0, 3.0),
            Video::new(VideoId(1), 200.0, 3.0),
        ];
        let c = Catalog::from_videos(vids);
        assert_eq!(c.video(VideoId(1)).length_secs, 200.0);
        assert_eq!(c.ids().collect::<Vec<_>>(), vec![VideoId(0), VideoId(1)]);
    }

    #[test]
    #[should_panic(expected = "dense and in positional order")]
    fn from_videos_rejects_misordered_ids() {
        Catalog::from_videos(vec![Video::new(VideoId(1), 100.0, 3.0)]);
    }

    #[test]
    #[should_panic(expected = "must not be empty")]
    fn rejects_empty() {
        Catalog::from_videos(Vec::new());
    }
}
