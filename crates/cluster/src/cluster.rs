//! Cluster specifications: homogeneous and heterogeneous builders.
//!
//! The heterogeneity study (§4.6) compares clusters that differ in how a
//! fixed *total* of bandwidth (or storage) is spread across servers: a
//! homogeneous split versus increasingly uneven splits. Keeping the totals
//! fixed isolates the effect of imbalance from the effect of capacity.

use crate::server::{ServerId, ServerSpec};
use sct_simcore::Rng;
use serde::{Deserialize, Serialize};

/// The static description of a server cluster.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ClusterSpec {
    servers: Vec<ServerSpec>,
}

impl ClusterSpec {
    /// Builds a cluster from explicit per-server specs.
    pub fn from_servers(servers: Vec<ServerSpec>) -> Self {
        assert!(!servers.is_empty(), "cluster must have at least one server");
        assert!(
            servers.len() <= u16::MAX as usize,
            "too many servers for ServerId"
        );
        ClusterSpec { servers }
    }

    /// A homogeneous cluster of `n` identical servers.
    pub fn homogeneous(n: usize, bandwidth_mbps: f64, disk_gb: f64) -> Self {
        assert!(n > 0, "cluster must have at least one server");
        Self::from_servers(vec![ServerSpec::new(bandwidth_mbps, disk_gb); n])
    }

    /// A cluster with **bandwidth heterogeneity**: per-server bandwidths
    /// drawn uniformly from `mean × [1-spread, 1+spread]`, then rescaled so
    /// the total equals `n × mean` exactly. Disk is homogeneous.
    ///
    /// `spread = 0` reduces to [`ClusterSpec::homogeneous`]; `spread` must
    /// be in `[0, 1)` so every server keeps positive bandwidth.
    pub fn bandwidth_heterogeneous(
        n: usize,
        mean_bandwidth_mbps: f64,
        disk_gb: f64,
        spread: f64,
        rng: &mut Rng,
    ) -> Self {
        assert!((0.0..1.0).contains(&spread), "spread must be in [0, 1)");
        let raw: Vec<f64> = (0..n)
            .map(|_| mean_bandwidth_mbps * rng.range_f64(1.0 - spread, 1.0 + spread))
            .collect();
        let scale = mean_bandwidth_mbps * n as f64 / raw.iter().sum::<f64>();
        Self::from_servers(
            raw.into_iter()
                .map(|b| ServerSpec::new(b * scale, disk_gb))
                .collect(),
        )
    }

    /// A cluster with **storage heterogeneity**: per-server disk drawn
    /// uniformly from `mean × [1-spread, 1+spread]`, rescaled to a fixed
    /// total. Bandwidth is homogeneous.
    pub fn storage_heterogeneous(
        n: usize,
        bandwidth_mbps: f64,
        mean_disk_gb: f64,
        spread: f64,
        rng: &mut Rng,
    ) -> Self {
        assert!((0.0..1.0).contains(&spread), "spread must be in [0, 1)");
        let raw: Vec<f64> = (0..n)
            .map(|_| mean_disk_gb * rng.range_f64(1.0 - spread, 1.0 + spread))
            .collect();
        let scale = mean_disk_gb * n as f64 / raw.iter().sum::<f64>();
        Self::from_servers(
            raw.into_iter()
                .map(|d| ServerSpec::new(bandwidth_mbps, d * scale))
                .collect(),
        )
    }

    /// Number of servers.
    pub fn len(&self) -> usize {
        self.servers.len()
    }

    /// `true` if the cluster has no servers (cannot happen via constructors).
    pub fn is_empty(&self) -> bool {
        self.servers.is_empty()
    }

    /// The spec of one server.
    #[inline]
    pub fn server(&self, id: ServerId) -> &ServerSpec {
        &self.servers[id.index()]
    }

    /// All server specs in id order.
    pub fn servers(&self) -> &[ServerSpec] {
        &self.servers
    }

    /// Iterator over server ids.
    pub fn ids(&self) -> impl Iterator<Item = ServerId> + '_ {
        (0..self.servers.len() as u16).map(ServerId)
    }

    /// Aggregate outbound bandwidth in Mb/s — the denominator of the
    /// paper's utilization metric and of the 100 %-load calibration.
    pub fn total_bandwidth_mbps(&self) -> f64 {
        self.servers.iter().map(|s| s.bandwidth_mbps).sum()
    }

    /// Aggregate disk capacity in megabits.
    pub fn total_disk_mb(&self) -> f64 {
        self.servers.iter().map(|s| s.disk_capacity_mb).sum()
    }

    /// Total stream slots at a given view rate (Σ per-server SVBR).
    pub fn total_slots(&self, view_rate_mbps: f64) -> usize {
        self.servers.iter().map(|s| s.svbr(view_rate_mbps)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn homogeneous_basics() {
        let c = ClusterSpec::homogeneous(5, 100.0, 100.0);
        assert_eq!(c.len(), 5);
        assert_eq!(c.total_bandwidth_mbps(), 500.0);
        assert_eq!(c.total_slots(3.0), 5 * 33);
        assert_eq!(c.server(ServerId(4)).bandwidth_mbps, 100.0);
        assert_eq!(c.ids().count(), 5);
    }

    #[test]
    fn bandwidth_heterogeneous_preserves_total() {
        let mut rng = Rng::new(5);
        let c = ClusterSpec::bandwidth_heterogeneous(10, 300.0, 50.0, 0.5, &mut rng);
        assert!((c.total_bandwidth_mbps() - 3000.0).abs() < 1e-6);
        // All servers positive and actually spread out.
        let min = c
            .servers()
            .iter()
            .map(|s| s.bandwidth_mbps)
            .fold(f64::INFINITY, f64::min);
        let max = c
            .servers()
            .iter()
            .map(|s| s.bandwidth_mbps)
            .fold(0.0, f64::max);
        assert!(min > 0.0);
        assert!(max - min > 30.0, "spread should produce real variation");
        // Disk untouched.
        assert!(c.servers().iter().all(|s| s.disk_capacity_mb == 400_000.0));
    }

    #[test]
    fn storage_heterogeneous_preserves_total() {
        let mut rng = Rng::new(6);
        let c = ClusterSpec::storage_heterogeneous(8, 100.0, 100.0, 0.4, &mut rng);
        assert!((c.total_disk_mb() - 8.0 * 800_000.0).abs() < 1e-3);
        assert!(c.servers().iter().all(|s| s.bandwidth_mbps == 100.0));
    }

    #[test]
    fn zero_spread_equals_homogeneous() {
        let mut rng = Rng::new(7);
        let het = ClusterSpec::bandwidth_heterogeneous(4, 100.0, 10.0, 0.0, &mut rng);
        let hom = ClusterSpec::homogeneous(4, 100.0, 10.0);
        for (a, b) in het.servers().iter().zip(hom.servers()) {
            assert!((a.bandwidth_mbps - b.bandwidth_mbps).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn rejects_empty_cluster() {
        ClusterSpec::from_servers(Vec::new());
    }
}
