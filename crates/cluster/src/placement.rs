//! Video placement strategies and the replica map.
//!
//! "A video placement strategy must be devised. The placement strategy
//! decides when, where and how many replicas of a video object will need to
//! be created" (§2). This reproduction, like the paper, performs **static**
//! placement before any request arrives (§4.1):
//!
//! 1. decide how many copies each video gets ([`PlacementStrategy`]),
//! 2. place each video's copies on a random subset of servers, subject to
//!    disk capacity and one-copy-per-server.
//!
//! The three strategies (§3.2, §4.4):
//!
//! * [`PlacementStrategy::Even`] — every video gets the same number of
//!   copies (rounding distributed at random). Completely oblivious to
//!   popularity.
//! * [`PlacementStrategy::Predictive`] — copies proportional to (perfectly
//!   predicted) popularity, at least one copy each.
//! * [`PlacementStrategy::PartialPredictive`] — even allocation plus a few
//!   extra copies of the most popular videos; models *partial* knowledge
//!   ("it is only necessary to identify the ones that are likely to be more
//!   popular", §4.4).

use crate::cluster::ClusterSpec;
use crate::server::ServerId;
use sct_media::{Catalog, VideoId};
use sct_simcore::Rng;
use serde::{Deserialize, Serialize};

/// How many replicas each video receives.
///
/// ```
/// use sct_cluster::{ClusterSpec, PlacementStrategy};
/// use sct_media::Catalog;
/// use sct_simcore::Rng;
/// let mut rng = Rng::new(7);
/// let catalog = Catalog::uniform_lengths(10, 600.0, 1800.0, 3.0, &mut rng);
/// let cluster = ClusterSpec::homogeneous(4, 100.0, 100.0);
/// let map = PlacementStrategy::even_paper()
///     .place(&catalog, &cluster, &[0.1; 10], &mut rng);
/// assert_eq!(map.total_copies(), 22);       // 2.2 copies × 10 videos
/// map.validate(&catalog, &cluster);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum PlacementStrategy {
    /// The same number of copies for every video; rounding of
    /// `avg_copies × n_videos` is assigned to random videos.
    Even {
        /// Average copies per video (the paper uses ≈ 2.2).
        avg_copies: f64,
    },
    /// Copies proportional to predicted popularity (the workload's true
    /// Zipf probabilities — the paper assumes *perfect* prediction), with
    /// at least one copy per video.
    Predictive {
        /// Average copies per video; the copy budget is
        /// `round(avg_copies × n_videos)`, apportioned by popularity.
        avg_copies: f64,
    },
    /// Even allocation plus `extra_per_top` additional copies for the most
    /// popular `top_fraction` of videos.
    PartialPredictive {
        /// Average copies per video for the even base.
        avg_copies: f64,
        /// Fraction of the catalog (by popularity rank) that gets extras.
        top_fraction: f64,
        /// Extra copies per boosted video.
        extra_per_top: u32,
    },
}

impl PlacementStrategy {
    /// The paper's default even allocation (≈ 2.2 copies per video).
    pub fn even_paper() -> Self {
        PlacementStrategy::Even { avg_copies: 2.2 }
    }

    /// The paper's default predictive allocation with the same copy budget
    /// as [`PlacementStrategy::even_paper`].
    pub fn predictive_paper() -> Self {
        PlacementStrategy::Predictive { avg_copies: 2.2 }
    }

    /// The paper's "mildly skewed" partial predictive scheme: even base
    /// plus 2 extra copies for the top 10 % of videos.
    pub fn partial_predictive_paper() -> Self {
        PlacementStrategy::PartialPredictive {
            avg_copies: 2.2,
            top_fraction: 0.1,
            extra_per_top: 2,
        }
    }

    /// Computes the target number of copies per video (before disk
    /// feasibility). `popularity[i]` is the request probability of video
    /// `i`; only the predictive variants read it.
    ///
    /// Every video gets at least one copy and at most `n_servers` copies.
    pub fn copy_targets(
        &self,
        n_videos: usize,
        n_servers: usize,
        popularity: &[f64],
        rng: &mut Rng,
    ) -> Vec<u32> {
        assert!(n_videos > 0 && n_servers > 0);
        assert_eq!(
            popularity.len(),
            n_videos,
            "popularity vector must cover the catalog"
        );
        let cap = n_servers as u32;
        match *self {
            PlacementStrategy::Even { avg_copies } => even_targets(n_videos, avg_copies, cap, rng),
            PlacementStrategy::Predictive { avg_copies } => {
                let budget = (avg_copies * n_videos as f64).round() as u64;
                proportional_targets(popularity, budget, cap)
            }
            PlacementStrategy::PartialPredictive {
                avg_copies,
                top_fraction,
                extra_per_top,
            } => {
                let mut targets = even_targets(n_videos, avg_copies, cap, rng);
                let top_k = ((top_fraction * n_videos as f64).ceil() as usize).min(n_videos);
                // Video ids double as popularity ranks, so "the most
                // popular videos" are simply ids 0..top_k.
                for t in targets.iter_mut().take(top_k) {
                    *t = (*t + extra_per_top).min(cap);
                }
                targets
            }
        }
    }

    /// Runs the full placement: copy targets, then random server selection
    /// under disk constraints.
    pub fn place(
        &self,
        catalog: &Catalog,
        cluster: &ClusterSpec,
        popularity: &[f64],
        rng: &mut Rng,
    ) -> ReplicaMap {
        let targets = self.copy_targets(catalog.len(), cluster.len(), popularity, rng);
        ReplicaMap::place_randomly(catalog, cluster, &targets, rng)
    }
}

/// Even allocation targets: `round(avg × n)` copies total, spread as evenly
/// as possible, the remainder going to a random subset of videos
/// ("with rounding done at random", §3.2).
fn even_targets(n_videos: usize, avg_copies: f64, cap: u32, rng: &mut Rng) -> Vec<u32> {
    assert!(avg_copies > 0.0, "avg_copies must be positive");
    let total = (avg_copies * n_videos as f64).round() as u64;
    let total = total.max(n_videos as u64); // at least one each
    let base = (total / n_videos as u64) as u32;
    let remainder = (total % n_videos as u64) as usize;
    let mut targets = vec![base.clamp(1, cap); n_videos];
    for idx in rng.sample_indices(n_videos, remainder) {
        targets[idx] = (targets[idx] + 1).min(cap);
    }
    targets
}

/// Largest-remainder apportionment of `budget` copies by popularity, with a
/// floor of one copy and a ceiling of `cap` copies per video.
fn proportional_targets(popularity: &[f64], budget: u64, cap: u32) -> Vec<u32> {
    let n = popularity.len();
    let budget = budget.max(n as u64);
    let total_p: f64 = popularity.iter().sum();
    assert!(total_p > 0.0, "popularity must have positive mass");

    // Ideal (real-valued) shares.
    let ideal: Vec<f64> = popularity
        .iter()
        .map(|p| p / total_p * budget as f64)
        .collect();
    let mut targets: Vec<u32> = ideal
        .iter()
        .map(|&x| (x.floor() as u32).clamp(1, cap))
        .collect();

    // Distribute what's left of the budget by largest fractional part,
    // skipping videos already at the ceiling.
    let assigned: u64 = targets.iter().map(|&t| t as u64).sum();
    if assigned < budget {
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| {
            let fa = ideal[a] - ideal[a].floor();
            let fb = ideal[b] - ideal[b].floor();
            fb.partial_cmp(&fa)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        let mut left = budget - assigned;
        // Repeatedly sweep the preference order until the budget is gone
        // or every video is at the ceiling.
        while left > 0 {
            let mut progressed = false;
            for &i in &order {
                if left == 0 {
                    break;
                }
                if targets[i] < cap {
                    targets[i] += 1;
                    left -= 1;
                    progressed = true;
                }
            }
            if !progressed {
                break; // every video at ceiling; surplus budget is unusable
            }
        }
    }
    targets
}

/// The static assignment of video replicas to servers.
///
/// Both directions are materialised: `holders(video)` drives admission
/// (which servers can serve a request) and `videos_on(server)` drives
/// migration search.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ReplicaMap {
    holders: Vec<Vec<ServerId>>,
    videos_on: Vec<Vec<VideoId>>,
    /// Disk megabits consumed on each server by the placement.
    disk_used_mb: Vec<f64>,
    /// Copies requested by the strategy that could not be placed for lack
    /// of disk (0 under all paper configurations).
    shortfall: u64,
}

impl ReplicaMap {
    /// Builds a replica map from explicit holder lists (`holders[i]` = the
    /// servers storing video `i`). Intended for tests and hand-crafted
    /// scenarios; disk accounting is skipped (reported as zero).
    pub fn from_holders(n_servers: usize, holders: Vec<Vec<ServerId>>) -> ReplicaMap {
        let mut videos_on: Vec<Vec<VideoId>> = vec![Vec::new(); n_servers];
        let mut holders = holders;
        for (i, hs) in holders.iter_mut().enumerate() {
            hs.sort_unstable();
            for &s in hs.iter() {
                assert!(s.index() < n_servers, "holder {s} out of range");
                videos_on[s.index()].push(VideoId(i as u32));
            }
            let mut dedup = hs.clone();
            dedup.dedup();
            assert_eq!(dedup.len(), hs.len(), "duplicate holder for video {i}");
        }
        for list in &mut videos_on {
            list.sort_unstable();
        }
        ReplicaMap {
            holders,
            videos_on,
            disk_used_mb: vec![0.0; n_servers],
            shortfall: 0,
        }
    }

    /// Places `targets[i]` copies of video `i` on distinct random servers,
    /// respecting disk capacity. Videos are processed in a random order so
    /// that, under disk pressure, no rank is systematically favoured.
    pub fn place_randomly(
        catalog: &Catalog,
        cluster: &ClusterSpec,
        targets: &[u32],
        rng: &mut Rng,
    ) -> ReplicaMap {
        assert_eq!(targets.len(), catalog.len());
        let n_servers = cluster.len();
        let mut holders: Vec<Vec<ServerId>> = vec![Vec::new(); catalog.len()];
        let mut videos_on: Vec<Vec<VideoId>> = vec![Vec::new(); n_servers];
        let mut free_mb: Vec<f64> = cluster
            .servers()
            .iter()
            .map(|s| s.disk_capacity_mb)
            .collect();
        let mut shortfall = 0u64;

        let mut order: Vec<usize> = (0..catalog.len()).collect();
        rng.shuffle(&mut order);

        for vid_idx in order {
            let video = VideoId(vid_idx as u32);
            let size = catalog.video(video).size_mb();
            let want = targets[vid_idx].min(n_servers as u32);
            // Feasible servers: enough free disk for one copy.
            let mut feasible: Vec<u16> = (0..n_servers as u16)
                .filter(|&s| free_mb[s as usize] >= size)
                .collect();
            rng.shuffle(&mut feasible);
            let got = feasible.len().min(want as usize);
            shortfall += (want as usize - got) as u64;
            for &s in &feasible[..got] {
                free_mb[s as usize] -= size;
                holders[vid_idx].push(ServerId(s));
                videos_on[s as usize].push(video);
            }
            holders[vid_idx].sort_unstable();
        }
        for list in &mut videos_on {
            list.sort_unstable();
        }
        let disk_used_mb = cluster
            .servers()
            .iter()
            .zip(&free_mb)
            .map(|(s, &f)| s.disk_capacity_mb - f)
            .collect();
        ReplicaMap {
            holders,
            videos_on,
            disk_used_mb,
            shortfall,
        }
    }

    /// The servers holding a replica of `video` (sorted by id).
    #[inline]
    pub fn holders(&self, video: VideoId) -> &[ServerId] {
        &self.holders[video.index()]
    }

    /// Registers a new replica of `video` on `server` (dynamic replication
    /// extension). `size_mb` is charged against the server's disk
    /// bookkeeping. Panics if the server already holds the video.
    pub fn add_replica(&mut self, video: VideoId, server: ServerId, size_mb: f64) {
        let hs = &mut self.holders[video.index()];
        match hs.binary_search(&server) {
            Ok(_) => panic!("{server} already holds {video}"),
            Err(pos) => hs.insert(pos, server),
        }
        let vs = &mut self.videos_on[server.index()];
        match vs.binary_search(&video) {
            Ok(_) => unreachable!("holder/videos_on out of sync"),
            Err(pos) => vs.insert(pos, video),
        }
        self.disk_used_mb[server.index()] += size_mb;
    }

    /// Free disk on `server` given its capacity, per this map's
    /// bookkeeping.
    pub fn free_disk_mb(&self, server: ServerId, capacity_mb: f64) -> f64 {
        (capacity_mb - self.disk_used_mb[server.index()]).max(0.0)
    }

    /// The videos stored on `server` (sorted by id).
    #[inline]
    pub fn videos_on(&self, server: ServerId) -> &[VideoId] {
        &self.videos_on[server.index()]
    }

    /// `true` if `server` holds a replica of `video`.
    pub fn holds(&self, server: ServerId, video: VideoId) -> bool {
        self.holders(video).binary_search(&server).is_ok()
    }

    /// Number of videos tracked.
    pub fn num_videos(&self) -> usize {
        self.holders.len()
    }

    /// Number of servers tracked.
    pub fn num_servers(&self) -> usize {
        self.videos_on.len()
    }

    /// Total replicas placed.
    pub fn total_copies(&self) -> u64 {
        self.holders.iter().map(|h| h.len() as u64).sum()
    }

    /// Copy count of one video.
    pub fn copies_of(&self, video: VideoId) -> usize {
        self.holders(video).len()
    }

    /// Copies the strategy wanted but disk could not hold.
    pub fn shortfall(&self) -> u64 {
        self.shortfall
    }

    /// Disk used on each server, in megabits.
    pub fn disk_used_mb(&self) -> &[f64] {
        &self.disk_used_mb
    }

    /// Checks structural invariants against the catalog and cluster;
    /// panics with a description on violation. Used by tests and debug
    /// builds of the simulation.
    pub fn validate(&self, catalog: &Catalog, cluster: &ClusterSpec) {
        assert_eq!(self.num_videos(), catalog.len());
        assert_eq!(self.num_servers(), cluster.len());
        for (i, hs) in self.holders.iter().enumerate() {
            let mut sorted = hs.clone();
            sorted.dedup();
            assert_eq!(sorted.len(), hs.len(), "video {i} has duplicate holders");
            for &s in hs {
                assert!(
                    self.videos_on(s).binary_search(&VideoId(i as u32)).is_ok(),
                    "holder lists inconsistent for video {i} / {s}"
                );
            }
        }
        for (s, used) in self.disk_used_mb.iter().enumerate() {
            let cap = cluster.server(ServerId(s as u16)).disk_capacity_mb;
            assert!(
                *used <= cap + 1e-6,
                "server {s} disk overcommitted: {used} > {cap}"
            );
            let recomputed: f64 = self.videos_on[s]
                .iter()
                .map(|&v| catalog.video(v).size_mb())
                .sum();
            assert!(
                (recomputed - used).abs() < 1e-6,
                "server {s} disk bookkeeping drifted"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sct_simcore::ZipfLike;

    fn setup(n_videos: usize, n_servers: usize) -> (Catalog, ClusterSpec, Rng) {
        let mut rng = Rng::new(42);
        let catalog = Catalog::uniform_lengths(n_videos, 600.0, 1800.0, 3.0, &mut rng);
        let cluster = ClusterSpec::homogeneous(n_servers, 100.0, 100.0);
        (catalog, cluster, rng)
    }

    #[test]
    fn even_targets_hit_budget_and_spread() {
        let mut rng = Rng::new(1);
        let t = even_targets(100, 2.2, 5, &mut rng);
        let total: u64 = t.iter().map(|&x| x as u64).sum();
        assert_eq!(total, 220);
        assert!(t.iter().all(|&x| x == 2 || x == 3));
        assert_eq!(t.iter().filter(|&&x| x == 3).count(), 20);
    }

    #[test]
    fn even_targets_at_least_one_each() {
        let mut rng = Rng::new(2);
        let t = even_targets(10, 0.3, 5, &mut rng);
        assert!(t.iter().all(|&x| x >= 1));
    }

    #[test]
    fn proportional_targets_follow_popularity() {
        let pops = ZipfLike::new(100, 0.0);
        let t = proportional_targets(pops.probs(), 220, 20);
        let total: u64 = t.iter().map(|&x| x as u64).sum();
        assert_eq!(total, 220);
        assert!(t[0] > t[50], "popular videos must get more copies");
        assert!(t.iter().all(|&x| x >= 1), "every video gets one copy");
        // Largest-remainder rounding may locally invert by one copy, but
        // never more.
        for w in t.windows(2) {
            assert!(w[1] <= w[0] + 1);
        }
    }

    #[test]
    fn proportional_targets_respect_ceiling() {
        let pops = ZipfLike::new(10, -1.5); // extremely skewed
        let t = proportional_targets(pops.probs(), 22, 5);
        assert!(t.iter().all(|&x| x <= 5));
        assert!(t.iter().all(|&x| x >= 1));
    }

    #[test]
    fn partial_predictive_boosts_head_only() {
        let (catalog, cluster, mut rng) = setup(100, 20);
        let pops = ZipfLike::new(100, 0.0);
        let strat = PlacementStrategy::partial_predictive_paper();
        let even = PlacementStrategy::even_paper();
        let t_partial = strat.copy_targets(100, 20, pops.probs(), &mut rng);
        let t_even = even.copy_targets(100, 20, pops.probs(), &mut rng);
        // Head boosted by exactly 2 relative to an even run (same base
        // modulo random rounding): check mean over head vs tail.
        let head_mean: f64 = t_partial[..10].iter().map(|&x| x as f64).sum::<f64>() / 10.0;
        let tail_mean: f64 = t_partial[10..].iter().map(|&x| x as f64).sum::<f64>() / 90.0;
        assert!(head_mean > tail_mean + 1.5);
        let _ = (catalog, cluster, t_even);
    }

    #[test]
    fn placement_respects_disk_and_distinct_servers() {
        let (catalog, cluster, mut rng) = setup(100, 5);
        let map = PlacementStrategy::even_paper().place(&catalog, &cluster, &[0.01; 100], &mut rng);
        map.validate(&catalog, &cluster);
        assert_eq!(map.shortfall(), 0, "paper-scale disks fit everything");
        assert_eq!(map.total_copies(), 220);
        for v in catalog.ids() {
            assert!(map.copies_of(v) >= 2);
        }
    }

    #[test]
    fn placement_under_disk_pressure_reports_shortfall() {
        let mut rng = Rng::new(3);
        let catalog = Catalog::uniform_lengths(50, 3600.0, 7200.0, 3.0, &mut rng);
        // Tiny disks: ~2 GB each holds at most 1 long video (avg 2 GB).
        let cluster = ClusterSpec::homogeneous(4, 100.0, 2.5);
        let map = PlacementStrategy::even_paper().place(&catalog, &cluster, &[0.02; 50], &mut rng);
        map.validate(&catalog, &cluster);
        assert!(map.shortfall() > 0, "disk pressure must be detected");
        assert!(map.total_copies() < 110);
    }

    #[test]
    fn holders_and_videos_on_are_mutually_consistent() {
        let (catalog, cluster, mut rng) = setup(30, 6);
        let pops = ZipfLike::new(30, 0.5);
        let map =
            PlacementStrategy::predictive_paper().place(&catalog, &cluster, pops.probs(), &mut rng);
        map.validate(&catalog, &cluster);
        for v in catalog.ids() {
            for &s in map.holders(v) {
                assert!(map.holds(s, v));
            }
        }
        let from_holders: u64 = catalog.ids().map(|v| map.copies_of(v) as u64).sum();
        let from_servers: u64 = cluster.ids().map(|s| map.videos_on(s).len() as u64).sum();
        assert_eq!(from_holders, from_servers);
    }

    #[test]
    fn placement_is_deterministic_per_seed() {
        let (catalog, cluster, _) = setup(40, 8);
        let pops = vec![1.0 / 40.0; 40];
        let m1 =
            PlacementStrategy::even_paper().place(&catalog, &cluster, &pops, &mut Rng::new(77));
        let m2 =
            PlacementStrategy::even_paper().place(&catalog, &cluster, &pops, &mut Rng::new(77));
        for v in catalog.ids() {
            assert_eq!(m1.holders(v), m2.holders(v));
        }
    }

    #[test]
    fn add_replica_keeps_map_consistent() {
        let (catalog, cluster, mut rng) = setup(10, 4);
        let mut map = PlacementStrategy::Even { avg_copies: 1.0 }
            .place(&catalog, &cluster, &[0.1; 10], &mut rng);
        let v = VideoId(3);
        let existing = map.holders(v).to_vec();
        let newcomer = cluster
            .ids()
            .find(|s| !existing.contains(s))
            .expect("some server lacks the video");
        let size = catalog.video(v).size_mb();
        let used_before = map.disk_used_mb()[newcomer.index()];
        map.add_replica(v, newcomer, size);
        assert!(map.holds(newcomer, v));
        assert_eq!(map.copies_of(v), existing.len() + 1);
        assert_eq!(map.disk_used_mb()[newcomer.index()], used_before + size);
        map.validate(&catalog, &cluster);
    }

    #[test]
    #[should_panic(expected = "already holds")]
    fn add_replica_rejects_duplicates() {
        let (catalog, cluster, mut rng) = setup(10, 4);
        let mut map =
            PlacementStrategy::even_paper().place(&catalog, &cluster, &[0.1; 10], &mut rng);
        let v = VideoId(0);
        let holder = map.holders(v)[0];
        map.add_replica(v, holder, 1.0);
    }

    #[test]
    fn free_disk_accounts_for_placement() {
        let (catalog, cluster, mut rng) = setup(10, 4);
        let map = PlacementStrategy::even_paper().place(&catalog, &cluster, &[0.1; 10], &mut rng);
        for s in cluster.ids() {
            let cap = cluster.server(s).disk_capacity_mb;
            let free = map.free_disk_mb(s, cap);
            assert!((free - (cap - map.disk_used_mb()[s.index()])).abs() < 1e-9);
        }
    }

    #[test]
    fn predictive_gives_head_more_replicas_than_even() {
        let (catalog, cluster, mut rng) = setup(100, 20);
        let pops = ZipfLike::new(100, -1.0); // strongly skewed
        let even =
            PlacementStrategy::even_paper().place(&catalog, &cluster, pops.probs(), &mut rng);
        let pred =
            PlacementStrategy::predictive_paper().place(&catalog, &cluster, pops.probs(), &mut rng);
        assert!(pred.copies_of(VideoId(0)) > even.copies_of(VideoId(0)));
    }
}
