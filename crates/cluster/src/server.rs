//! Server specifications.

use sct_media::units::gb_to_megabits;
use serde::{Deserialize, Serialize};

/// Identifier of a data server within the cluster.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ServerId(pub u16);

impl ServerId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for ServerId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// Static resources of one data server.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ServerSpec {
    /// Outbound transmission bandwidth in Mb/s.
    pub bandwidth_mbps: f64,
    /// Disk capacity in megabits.
    pub disk_capacity_mb: f64,
}

impl ServerSpec {
    /// Creates a spec from bandwidth (Mb/s) and disk capacity (decimal GB).
    pub fn new(bandwidth_mbps: f64, disk_gb: f64) -> Self {
        assert!(
            bandwidth_mbps > 0.0 && bandwidth_mbps.is_finite(),
            "bandwidth must be positive, got {bandwidth_mbps}"
        );
        assert!(
            disk_gb >= 0.0 && disk_gb.is_finite(),
            "disk capacity must be >= 0, got {disk_gb}"
        );
        ServerSpec {
            bandwidth_mbps,
            disk_capacity_mb: gb_to_megabits(disk_gb),
        }
    }

    /// The **server-to-view-bandwidth ratio** for streams viewed at
    /// `view_rate_mbps` — the number of concurrent streams the minimum-flow
    /// admission condition permits (§3.2: "the ratio of the server
    /// bandwidth to the view bandwidth").
    #[inline]
    pub fn svbr(&self, view_rate_mbps: f64) -> usize {
        debug_assert!(view_rate_mbps > 0.0);
        (self.bandwidth_mbps / view_rate_mbps).floor() as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn svbr_is_floor_of_ratio() {
        let s = ServerSpec::new(100.0, 100.0);
        assert_eq!(s.svbr(3.0), 33);
        let s = ServerSpec::new(300.0, 100.0);
        assert_eq!(s.svbr(3.0), 100);
        let s = ServerSpec::new(2.9, 100.0);
        assert_eq!(s.svbr(3.0), 0, "a server slower than one stream holds none");
    }

    #[test]
    fn disk_capacity_converted_to_megabits() {
        let s = ServerSpec::new(100.0, 1.0);
        assert_eq!(s.disk_capacity_mb, 8000.0);
    }

    #[test]
    fn id_display() {
        assert_eq!(ServerId(3).to_string(), "s3");
        assert_eq!(ServerId(3).index(), 3);
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn rejects_zero_bandwidth() {
        ServerSpec::new(0.0, 10.0);
    }
}
