//! Partitioning the cluster into event-loop shards.
//!
//! A [`ShardMap`] assigns every server (and therefore every stream the
//! server carries) to one of `n` shards. The sharded event loop in
//! `sct-core` runs each shard's events on its own calendar queue and only
//! synchronizes at the causal edges the span layer identifies — DRM
//! displacement, chain-2 inner hops, replication copies, and evacuation
//! rescues. The mapping is static and contiguous: servers `0..n_servers`
//! are cut into `n_shards` near-even blocks (the first `n_servers mod
//! n_shards` blocks get one extra server), so neighbouring servers —
//! which the controller's placement tends to co-locate replicas on —
//! stay on the same shard and most interactions remain shard-local.

use crate::server::ServerId;

/// A static assignment of servers to event-loop shards.
///
/// Shard ids are dense (`0..n_shards`) and every server belongs to
/// exactly one shard. The map is intentionally tiny — one `u32` per
/// shard boundary — because `shard_of` sits on the event-loop hot path.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardMap {
    /// `starts[s]` is the first server index of shard `s`;
    /// `starts[n_shards]` == `n_servers` (sentinel).
    starts: Vec<u32>,
}

impl ShardMap {
    /// Cuts `n_servers` into `n_shards` contiguous near-even blocks.
    ///
    /// `n_shards` is clamped to `1..=n_servers` (a shard with no servers
    /// would never receive events and only add barrier work).
    pub fn new(n_servers: usize, n_shards: usize) -> Self {
        assert!(n_servers > 0, "ShardMap needs at least one server");
        let n = n_shards.clamp(1, n_servers);
        let base = n_servers / n;
        let extra = n_servers % n;
        let mut starts = Vec::with_capacity(n + 1);
        let mut at = 0usize;
        for s in 0..n {
            starts.push(at as u32);
            at += base + usize::from(s < extra);
        }
        starts.push(n_servers as u32);
        ShardMap { starts }
    }

    /// The single-shard map: everything on shard 0 (the monolithic loop).
    pub fn single(n_servers: usize) -> Self {
        ShardMap::new(n_servers, 1)
    }

    /// Number of shards.
    #[inline]
    pub fn n_shards(&self) -> usize {
        self.starts.len() - 1
    }

    /// Number of servers covered by the map.
    #[inline]
    pub fn n_servers(&self) -> usize {
        *self.starts.last().expect("sentinel") as usize
    }

    /// The shard that owns `server`.
    #[inline]
    pub fn shard_of(&self, server: ServerId) -> usize {
        let idx = server.index() as u32;
        debug_assert!(idx < *self.starts.last().unwrap(), "server out of range");
        // Blocks are contiguous and sorted; partition_point finds the
        // first start *after* idx, whose predecessor is the owning shard.
        self.starts.partition_point(|&s| s <= idx) - 1
    }

    /// `true` when the two servers live on different shards — the test
    /// for whether an interaction between them is a cross-shard edge.
    #[inline]
    pub fn crosses(&self, a: ServerId, b: ServerId) -> bool {
        self.shard_of(a) != self.shard_of(b)
    }

    /// The server indices owned by shard `s`.
    pub fn servers_of(&self, s: usize) -> std::ops::Range<usize> {
        self.starts[s] as usize..self.starts[s + 1] as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blocks_are_near_even_and_cover_everything() {
        for n_servers in [1usize, 2, 5, 7, 20, 256] {
            for n_shards in [1usize, 2, 3, 4, 8, 300] {
                let map = ShardMap::new(n_servers, n_shards);
                let n = map.n_shards();
                assert!(n >= 1 && n <= n_servers);
                let mut total = 0;
                let mut sizes = Vec::new();
                for s in 0..n {
                    let r = map.servers_of(s);
                    sizes.push(r.len());
                    for i in r {
                        assert_eq!(map.shard_of(ServerId(i as u16)), s);
                        total += 1;
                    }
                }
                assert_eq!(total, n_servers);
                let min = sizes.iter().min().unwrap();
                let max = sizes.iter().max().unwrap();
                assert!(max - min <= 1, "{n_servers}/{n_shards}: uneven {sizes:?}");
            }
        }
    }

    #[test]
    fn single_is_one_shard() {
        let map = ShardMap::single(20);
        assert_eq!(map.n_shards(), 1);
        assert_eq!(map.n_servers(), 20);
        assert!(!map.crosses(ServerId(0), ServerId(19)));
    }

    #[test]
    fn crosses_detects_shard_boundaries() {
        let map = ShardMap::new(4, 2);
        assert!(!map.crosses(ServerId(0), ServerId(1)));
        assert!(map.crosses(ServerId(1), ServerId(2)));
        assert!(!map.crosses(ServerId(2), ServerId(3)));
    }
}
