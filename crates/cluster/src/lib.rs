//! Cluster model and video placement.
//!
//! The paper's server cluster (§2) is a set of independent data sources —
//! each with its own disk and network bandwidth, **no shared storage** —
//! fronted by a distribution controller. This crate models the static side
//! of that architecture:
//!
//! * [`server`] — per-server specs (bandwidth, disk) and the key derived
//!   quantity, the **server-to-view-bandwidth ratio (SVBR)**: how many
//!   simultaneous streams one server can sustain under minimum-flow
//!   admission.
//! * [`cluster`] — homogeneous and heterogeneous cluster builders (the
//!   heterogeneity study of §4.6 varies bandwidth or storage spread at a
//!   fixed total).
//! * [`placement`] — the replica-placement strategies of §3.2/§4.4: *even*
//!   (popularity-oblivious), *predictive* (popularity-proportional), and
//!   *partial-predictive* (even plus a few extra copies of the head), all
//!   producing a validated [`placement::ReplicaMap`].
//! * [`shard`] — the static server-to-shard partition ([`ShardMap`]) the
//!   sharded event loop uses to split work and detect cross-shard edges.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster;
pub mod placement;
pub mod server;
pub mod shard;

pub use cluster::ClusterSpec;
pub use placement::{PlacementStrategy, ReplicaMap};
pub use server::{ServerId, ServerSpec};
pub use shard::ShardMap;
