//! Property tests for placement: disk feasibility, structural consistency,
//! and copy-budget accounting over arbitrary cluster shapes.

use proptest::prelude::*;
use sct_cluster::{ClusterSpec, PlacementStrategy, ReplicaMap};
use sct_media::Catalog;
use sct_simcore::{Rng, ZipfLike};

#[derive(Clone, Debug)]
struct World {
    n_videos: usize,
    n_servers: usize,
    disk_gb: f64,
    min_len: f64,
    span: f64,
    theta: f64,
    seed: u64,
}

fn world() -> impl Strategy<Value = World> {
    (
        1usize..60,
        1usize..24,
        0.1f64..50.0,
        60.0f64..3600.0,
        1.0f64..3600.0,
        -1.5f64..=1.0,
        any::<u64>(),
    )
        .prop_map(
            |(n_videos, n_servers, disk_gb, min_len, span, theta, seed)| World {
                n_videos,
                n_servers,
                disk_gb,
                min_len,
                span,
                theta,
                seed,
            },
        )
}

fn strategies() -> Vec<PlacementStrategy> {
    vec![
        PlacementStrategy::Even { avg_copies: 2.2 },
        PlacementStrategy::Even { avg_copies: 1.0 },
        PlacementStrategy::Predictive { avg_copies: 2.2 },
        PlacementStrategy::PartialPredictive {
            avg_copies: 2.2,
            top_fraction: 0.1,
            extra_per_top: 2,
        },
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Whatever the cluster shape and disk pressure, placement never
    /// overcommits a disk, never duplicates a replica, and the shortfall
    /// accounting matches what was actually placed.
    #[test]
    fn placement_always_feasible(w in world()) {
        let mut rng = Rng::new(w.seed);
        let catalog = Catalog::uniform_lengths(
            w.n_videos,
            w.min_len,
            w.min_len + w.span,
            3.0,
            &mut rng,
        );
        let cluster = ClusterSpec::homogeneous(w.n_servers, 100.0, w.disk_gb);
        let pops = ZipfLike::new(w.n_videos, w.theta);
        for strategy in strategies() {
            let map = strategy.place(&catalog, &cluster, pops.probs(), &mut rng);
            map.validate(&catalog, &cluster);
            let targets: u64 = strategy
                .copy_targets(w.n_videos, w.n_servers, pops.probs(), &mut Rng::new(w.seed))
                .iter()
                .map(|&t| t.min(w.n_servers as u32) as u64)
                .sum();
            // Placed + shortfall can differ from this particular target
            // draw (random rounding), but the placed count can never
            // exceed videos × servers.
            prop_assert!(map.total_copies() <= (w.n_videos * w.n_servers) as u64);
            let _ = targets;
        }
    }

    /// Copy targets always give each video between 1 and n_servers copies,
    /// and the even strategy's total hits its budget exactly.
    #[test]
    fn copy_targets_in_bounds(
        n_videos in 1usize..200,
        n_servers in 1usize..30,
        avg in 0.5f64..5.0,
        theta in -1.5f64..=1.0,
        seed in any::<u64>(),
    ) {
        let pops = ZipfLike::new(n_videos, theta);
        let mut rng = Rng::new(seed);
        for strategy in [
            PlacementStrategy::Even { avg_copies: avg },
            PlacementStrategy::Predictive { avg_copies: avg },
        ] {
            let t = strategy.copy_targets(n_videos, n_servers, pops.probs(), &mut rng);
            prop_assert_eq!(t.len(), n_videos);
            prop_assert!(t.iter().all(|&x| x >= 1));
            prop_assert!(t.iter().all(|&x| x <= n_servers as u32));
        }
    }

    /// Hand-built replica maps agree with lookups in both directions.
    #[test]
    fn from_holders_bidirectional(
        assignment in prop::collection::vec(
            prop::collection::btree_set(0u16..8, 0..8),
            1..30,
        ),
    ) {
        let holders: Vec<Vec<sct_cluster::ServerId>> = assignment
            .iter()
            .map(|set| set.iter().map(|&s| sct_cluster::ServerId(s)).collect())
            .collect();
        let map = ReplicaMap::from_holders(8, holders.clone());
        for (v, hs) in holders.iter().enumerate() {
            let video = sct_media::VideoId(v as u32);
            for s in sct_cluster::ClusterSpec::homogeneous(8, 1.0, 1.0).ids() {
                prop_assert_eq!(map.holds(s, video), hs.contains(&s));
            }
        }
        let total: usize = holders.iter().map(Vec::len).sum();
        prop_assert_eq!(map.total_copies(), total as u64);
    }

    /// Heterogeneous cluster builders preserve totals for any spread.
    #[test]
    fn heterogeneity_preserves_totals(
        n in 1usize..32,
        mean_bw in 10.0f64..1000.0,
        disk in 1.0f64..100.0,
        spread in 0.0f64..0.99,
        seed in any::<u64>(),
    ) {
        let mut rng = Rng::new(seed);
        let bw = ClusterSpec::bandwidth_heterogeneous(n, mean_bw, disk, spread, &mut rng);
        prop_assert!((bw.total_bandwidth_mbps() - mean_bw * n as f64).abs() < 1e-6 * n as f64);
        let st = ClusterSpec::storage_heterogeneous(n, mean_bw, disk, spread, &mut rng);
        prop_assert!(
            (st.total_disk_mb() - disk * 8000.0 * n as f64).abs() < 1e-6 * 8000.0 * n as f64
        );
    }
}
