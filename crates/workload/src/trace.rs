//! Materialised request traces.
//!
//! A [`Trace`] pins down the exact request sequence of a trial so that two
//! implementations (or two configurations of this one) can be compared on
//! *identical* inputs, and so that interesting runs can be archived as
//! JSON. The live simulation normally uses the lazy
//! [`crate::RequestGenerator`]; traces are for debugging, tests, and
//! cross-checks.

use crate::generator::{RequestEvent, RequestGenerator};
use sct_media::VideoId;
use sct_simcore::{Rng, SimTime, ZipfLike};
use serde::{Deserialize, Serialize};

/// A finite recorded request sequence.
///
/// ```
/// use sct_workload::Trace;
/// use sct_simcore::{Rng, SimTime, ZipfLike};
/// let pops = ZipfLike::new(10, 0.271);
/// let t = Trace::generate(1.0, &pops, SimTime::from_mins(5.0), &Rng::new(1));
/// let back = Trace::from_json(&t.to_json()).unwrap();
/// assert_eq!(t, back);
/// ```
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    /// (arrival seconds, video id), strictly increasing in time.
    pub events: Vec<(f64, u32)>,
}

impl Trace {
    /// Records all requests arriving before `horizon`.
    pub fn generate(
        rate_per_sec: f64,
        popularity: &ZipfLike,
        horizon: SimTime,
        seed_rng: &Rng,
    ) -> Trace {
        let mut g = RequestGenerator::new(rate_per_sec, popularity, seed_rng);
        let mut events = Vec::new();
        while g.peek_time() < horizon {
            let r = g.next_request();
            events.push((r.at.as_secs(), r.video.0));
        }
        Trace { events }
    }

    /// Number of requests.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` if the trace holds no requests.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Iterates the trace as typed request events.
    pub fn iter(&self) -> impl Iterator<Item = RequestEvent> + '_ {
        self.events.iter().map(|&(t, v)| RequestEvent {
            at: SimTime::from_secs(t),
            video: VideoId(v),
        })
    }

    /// Serialises to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("trace serialisation cannot fail")
    }

    /// Parses a JSON trace, validating monotone arrival times.
    pub fn from_json(s: &str) -> Result<Trace, String> {
        let t: Trace = serde_json::from_str(s).map_err(|e| e.to_string())?;
        for w in t.events.windows(2) {
            if w[1].0 < w[0].0 {
                return Err(format!(
                    "trace times must be non-decreasing ({} after {})",
                    w[1].0, w[0].0
                ));
            }
        }
        Ok(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> Trace {
        let pops = ZipfLike::new(10, 0.0);
        Trace::generate(1.0, &pops, SimTime::from_secs(500.0), &Rng::new(11))
    }

    #[test]
    fn generation_is_bounded_by_horizon() {
        let t = sample_trace();
        assert!(!t.is_empty());
        assert!(t.events.iter().all(|&(s, _)| s < 500.0));
        // λ = 1/s over 500 s → ~500 events.
        assert!((t.len() as f64 - 500.0).abs() < 120.0, "{} events", t.len());
    }

    #[test]
    fn json_round_trip() {
        let t = sample_trace();
        let j = t.to_json();
        let back = Trace::from_json(&j).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn from_json_rejects_time_travel() {
        let bad = r#"{"events":[[5.0,1],[4.0,2]]}"#;
        assert!(Trace::from_json(bad).is_err());
        let good = r#"{"events":[[4.0,1],[5.0,2]]}"#;
        assert_eq!(Trace::from_json(good).unwrap().len(), 2);
    }

    #[test]
    fn iter_produces_typed_events() {
        let t = sample_trace();
        let first = t.iter().next().unwrap();
        assert_eq!(first.at.as_secs(), t.events[0].0);
        assert_eq!(first.video.0, t.events[0].1);
    }

    #[test]
    fn identical_seeds_identical_traces() {
        let pops = ZipfLike::new(10, 0.5);
        let a = Trace::generate(2.0, &pops, SimTime::from_secs(100.0), &Rng::new(5));
        let b = Trace::generate(2.0, &pops, SimTime::from_secs(100.0), &Rng::new(5));
        assert_eq!(a, b);
    }
}
