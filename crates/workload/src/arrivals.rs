//! Poisson arrival process and offered-load calibration.

use sct_media::Catalog;
use sct_simcore::{Exponential, Rng, SimTime};
use serde::{Deserialize, Serialize};

/// The arrival rate (requests/second) that makes the offered load exactly
/// 100 % of the cluster bandwidth (§4.1): `λ · E[size] = Σ b_server`,
/// where the expectation weights each video by its request probability.
///
/// `popularity[i]` is the probability that a request asks for video `i`.
pub fn calibrated_rate(total_bandwidth_mbps: f64, catalog: &Catalog, popularity: &[f64]) -> f64 {
    assert_eq!(popularity.len(), catalog.len());
    let mean_size: f64 = catalog
        .videos()
        .iter()
        .zip(popularity)
        .map(|(v, &p)| v.size_mb() * p)
        .sum();
    assert!(mean_size > 0.0, "mean requested size must be positive");
    total_bandwidth_mbps / mean_size
}

/// A Poisson arrival stream: exponential inter-arrival times at a fixed
/// rate, advanced lazily.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PoissonArrivals {
    exp: Exponential,
    next: SimTime,
}

impl PoissonArrivals {
    /// Creates a stream with the first arrival strictly after t = 0.
    pub fn new(rate_per_sec: f64, rng: &mut Rng) -> Self {
        let exp = Exponential::new(rate_per_sec);
        let first = SimTime::ZERO + exp.sample(rng);
        PoissonArrivals { exp, next: first }
    }

    /// The time of the next arrival (without consuming it).
    pub fn peek(&self) -> SimTime {
        self.next
    }

    /// Consumes and returns the next arrival time, scheduling the one
    /// after it.
    pub fn pop(&mut self, rng: &mut Rng) -> SimTime {
        let t = self.next;
        self.next = t + self.exp.sample(rng);
        t
    }

    /// The configured rate (arrivals per second).
    pub fn rate(&self) -> f64 {
        self.exp.rate()
    }
}

/// A non-homogeneous Poisson stream with a sinusoidal (diurnal) rate:
///
/// ```text
/// λ(t) = base_rate · (1 + amplitude · sin(2π t / period))
/// ```
///
/// Sampled by Lewis–Shedler thinning against the peak rate, so
/// inter-arrival statistics are exact. `amplitude = 0` degenerates to the
/// homogeneous process; `amplitude = 1` swings the offered load between
/// zero and twice the mean over each period — a stylised day/night cycle.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DiurnalPoisson {
    base_rate: f64,
    amplitude: f64,
    period_secs: f64,
    peak: Exponential,
    next: SimTime,
}

impl DiurnalPoisson {
    /// Creates the stream; `amplitude ∈ [0, 1]`, positive period.
    pub fn new(base_rate: f64, amplitude: f64, period_secs: f64, rng: &mut Rng) -> Self {
        assert!(base_rate > 0.0);
        assert!((0.0..=1.0).contains(&amplitude));
        assert!(period_secs > 0.0);
        let peak = Exponential::new(base_rate * (1.0 + amplitude).max(1e-12));
        let mut d = DiurnalPoisson {
            base_rate,
            amplitude,
            period_secs,
            peak,
            next: SimTime::ZERO,
        };
        d.next = d.draw_from(SimTime::ZERO, rng);
        d
    }

    /// The instantaneous rate at `t`.
    pub fn rate_at(&self, t: SimTime) -> f64 {
        let phase = 2.0 * std::f64::consts::PI * t.as_secs() / self.period_secs;
        self.base_rate * (1.0 + self.amplitude * phase.sin())
    }

    /// Thinning: draw candidates at the peak rate, accept with probability
    /// λ(t)/λ_peak.
    fn draw_from(&self, mut t: SimTime, rng: &mut Rng) -> SimTime {
        let peak_rate = self.base_rate * (1.0 + self.amplitude);
        loop {
            t += self.peak.sample(rng);
            if self.amplitude == 0.0 || rng.next_f64() < self.rate_at(t) / peak_rate {
                return t;
            }
        }
    }

    /// The time of the next arrival (without consuming it).
    pub fn peek(&self) -> SimTime {
        self.next
    }

    /// Consumes and returns the next arrival time.
    pub fn pop(&mut self, rng: &mut Rng) -> SimTime {
        let t = self.next;
        self.next = self.draw_from(t, rng);
        t
    }

    /// The long-run mean rate (arrivals per second).
    pub fn mean_rate(&self) -> f64 {
        self.base_rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_small_system_scale() {
        // 100 uniform-popularity videos of exactly 20 min at 3 Mb/s:
        // E[size] = 3600 Mb; cluster 500 Mb/s → λ = 0.1389/s ≈ 500/hr.
        let videos = (0..100)
            .map(|i| sct_media::Video::new(sct_media::VideoId(i), 1200.0, 3.0))
            .collect();
        let catalog = Catalog::from_videos(videos);
        let pops = vec![0.01; 100];
        let rate = calibrated_rate(500.0, &catalog, &pops);
        assert!((rate - 500.0 / 3600.0).abs() < 1e-12);
    }

    #[test]
    fn calibration_respects_popularity_weighting() {
        // Two videos: a short popular one and a long unpopular one.
        let videos = vec![
            sct_media::Video::new(sct_media::VideoId(0), 600.0, 3.0), // 1800 Mb
            sct_media::Video::new(sct_media::VideoId(1), 6000.0, 3.0), // 18000 Mb
        ];
        let catalog = Catalog::from_videos(videos);
        let rate = calibrated_rate(100.0, &catalog, &[0.9, 0.1]);
        let mean = 0.9 * 1800.0 + 0.1 * 18000.0;
        assert!((rate - 100.0 / mean).abs() < 1e-12);
    }

    #[test]
    fn arrivals_are_strictly_increasing() {
        let mut rng = Rng::new(8);
        let mut p = PoissonArrivals::new(10.0, &mut rng);
        let mut prev = SimTime::ZERO;
        for _ in 0..1000 {
            let t = p.pop(&mut rng);
            assert!(t > prev);
            prev = t;
        }
    }

    #[test]
    fn arrival_rate_matches_requested() {
        let mut rng = Rng::new(9);
        let mut p = PoissonArrivals::new(2.0, &mut rng);
        let n = 100_000;
        let mut last = SimTime::ZERO;
        for _ in 0..n {
            last = p.pop(&mut rng);
        }
        let measured = n as f64 / last.as_secs();
        assert!((measured - 2.0).abs() < 0.05, "rate {measured}");
    }

    #[test]
    fn diurnal_mean_rate_matches_base() {
        let mut rng = Rng::new(21);
        let mut p = DiurnalPoisson::new(2.0, 0.8, 3600.0, &mut rng);
        let n = 200_000;
        let mut last = SimTime::ZERO;
        for _ in 0..n {
            last = p.pop(&mut rng);
        }
        // Average over many whole periods → base rate.
        let measured = n as f64 / last.as_secs();
        assert!((measured - 2.0).abs() < 0.05, "mean rate {measured}");
    }

    #[test]
    fn diurnal_peak_beats_trough() {
        let mut rng = Rng::new(22);
        let period = 3600.0;
        let mut p = DiurnalPoisson::new(1.0, 0.9, period, &mut rng);
        // Count arrivals by phase quadrant over many periods.
        let mut peak_count = 0u64;
        let mut trough_count = 0u64;
        loop {
            let t = p.pop(&mut rng);
            if t.as_secs() > 400.0 * period {
                break;
            }
            let phase = (t.as_secs() / period).fract();
            if (0.125..0.375).contains(&phase) {
                peak_count += 1; // sin ≈ +1 quadrant
            } else if (0.625..0.875).contains(&phase) {
                trough_count += 1; // sin ≈ −1 quadrant
            }
        }
        assert!(
            peak_count as f64 > 4.0 * trough_count as f64,
            "peak {peak_count} vs trough {trough_count}"
        );
    }

    #[test]
    fn zero_amplitude_is_homogeneous() {
        let mut rng = Rng::new(23);
        let mut p = DiurnalPoisson::new(5.0, 0.0, 3600.0, &mut rng);
        assert_eq!(p.rate_at(SimTime::from_secs(0.0)), 5.0);
        assert_eq!(p.rate_at(SimTime::from_secs(900.0)), 5.0);
        let mut prev = SimTime::ZERO;
        for _ in 0..1000 {
            let t = p.pop(&mut rng);
            assert!(t > prev);
            prev = t;
        }
    }

    #[test]
    fn peek_does_not_consume() {
        let mut rng = Rng::new(10);
        let mut p = PoissonArrivals::new(1.0, &mut rng);
        let t1 = p.peek();
        let t2 = p.peek();
        assert_eq!(t1, t2);
        assert_eq!(p.pop(&mut rng), t1);
        assert!(p.peek() > t1);
    }
}
