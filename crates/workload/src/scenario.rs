//! The paper's system specifications (Fig. 3) and heterogeneous variants.
//!
//! Parts of the printed Fig. 3 table lost leading digits in the available
//! text; the reconstruction below follows the constraints the paper itself
//! states (see DESIGN.md): both systems carry ~2.2 copies per video of a
//! 100-video catalog, the Small system's copies concentrate on 5 servers
//! while the Large system's spread over 20, and disks are ample enough
//! that placement is bandwidth-bound, not storage-bound.

use sct_cluster::ClusterSpec;
use sct_media::{client::PAPER_RECEIVE_CAP_MBPS, video::PAPER_VIEW_RATE_MBPS, Catalog};
use sct_simcore::Rng;
use serde::{Deserialize, Serialize};

/// Which server resource a heterogeneity experiment perturbs (§4.6).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum HeterogeneityKind {
    /// Per-server bandwidth varies; total bandwidth fixed.
    Bandwidth,
    /// Per-server disk varies; total disk fixed.
    Storage,
}

/// A complete static description of one experimental system.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SystemSpec {
    /// Human-readable name ("small", "large", …).
    pub name: String,
    /// Number of data servers.
    pub n_servers: usize,
    /// Per-server outbound bandwidth, Mb/s.
    pub server_bandwidth_mbps: f64,
    /// Per-server disk, decimal GB.
    pub server_disk_gb: f64,
    /// Catalog size.
    pub n_videos: usize,
    /// Video length range, seconds (uniform).
    pub video_length_secs: (f64, f64),
    /// View bandwidth `b_view`, Mb/s.
    pub view_rate_mbps: f64,
    /// Client receive cap, Mb/s.
    pub client_receive_cap_mbps: f64,
    /// Average replicas per video for the placement budget.
    pub avg_copies: f64,
}

impl SystemSpec {
    /// The paper's **Small** system (Fig. 3): 5 servers × 100 Mb/s,
    /// 10–30 minute clips.
    pub fn small_paper() -> Self {
        SystemSpec {
            name: "small".into(),
            n_servers: 5,
            server_bandwidth_mbps: 100.0,
            server_disk_gb: 100.0,
            n_videos: 100,
            video_length_secs: (10.0 * 60.0, 30.0 * 60.0),
            view_rate_mbps: PAPER_VIEW_RATE_MBPS,
            client_receive_cap_mbps: PAPER_RECEIVE_CAP_MBPS,
            avg_copies: 2.2,
        }
    }

    /// The paper's **Large** system (Fig. 3): 20 servers × 300 Mb/s,
    /// 1–2 hour feature films.
    pub fn large_paper() -> Self {
        SystemSpec {
            name: "large".into(),
            n_servers: 20,
            server_bandwidth_mbps: 300.0,
            server_disk_gb: 50.0,
            n_videos: 100,
            video_length_secs: (3600.0, 7200.0),
            view_rate_mbps: PAPER_VIEW_RATE_MBPS,
            client_receive_cap_mbps: PAPER_RECEIVE_CAP_MBPS,
            avg_copies: 2.2,
        }
    }

    /// A scaled-down system for fast tests and examples: 3 servers,
    /// short clips, small catalog. Not a paper configuration.
    pub fn tiny_test() -> Self {
        SystemSpec {
            name: "tiny".into(),
            n_servers: 3,
            server_bandwidth_mbps: 30.0,
            server_disk_gb: 10.0,
            n_videos: 20,
            video_length_secs: (60.0, 180.0),
            view_rate_mbps: PAPER_VIEW_RATE_MBPS,
            client_receive_cap_mbps: PAPER_RECEIVE_CAP_MBPS,
            avg_copies: 2.2,
        }
    }

    /// A million-viewer stress system for the sharded event loop: 256
    /// servers × 12 Gb/s gives 1 024 000 concurrent view slots at the
    /// paper's 3 Mb/s view rate — three orders of magnitude past the
    /// Large system, far beyond any cluster the paper measures. Short
    /// 10–20 minute clips keep stream turnover (and thus event rate)
    /// high, and the 1000-video catalog keeps per-video demand realistic
    /// at this scale. Not a paper configuration.
    pub fn huge() -> Self {
        SystemSpec {
            name: "huge".into(),
            n_servers: 256,
            server_bandwidth_mbps: 12_000.0,
            server_disk_gb: 100.0,
            n_videos: 1000,
            video_length_secs: (10.0 * 60.0, 20.0 * 60.0),
            view_rate_mbps: PAPER_VIEW_RATE_MBPS,
            client_receive_cap_mbps: PAPER_RECEIVE_CAP_MBPS,
            avg_copies: 2.2,
        }
    }

    /// A heterogeneity-study variant (§4.6): `n` servers sharing the same
    /// *total* bandwidth and storage as `n × (bw, disk)` of this spec.
    pub fn with_servers(&self, n: usize) -> SystemSpec {
        assert!(n > 0);
        let total_bw = self.server_bandwidth_mbps * self.n_servers as f64;
        let total_disk = self.server_disk_gb * self.n_servers as f64;
        SystemSpec {
            name: format!("{}-{}srv", self.name, n),
            n_servers: n,
            server_bandwidth_mbps: total_bw / n as f64,
            server_disk_gb: total_disk / n as f64,
            ..self.clone()
        }
    }

    /// Builds the homogeneous cluster.
    pub fn cluster(&self) -> ClusterSpec {
        ClusterSpec::homogeneous(
            self.n_servers,
            self.server_bandwidth_mbps,
            self.server_disk_gb,
        )
    }

    /// Builds a heterogeneous cluster with the given kind and spread,
    /// preserving this spec's totals.
    pub fn heterogeneous_cluster(
        &self,
        kind: HeterogeneityKind,
        spread: f64,
        rng: &mut Rng,
    ) -> ClusterSpec {
        match kind {
            HeterogeneityKind::Bandwidth => ClusterSpec::bandwidth_heterogeneous(
                self.n_servers,
                self.server_bandwidth_mbps,
                self.server_disk_gb,
                spread,
                rng,
            ),
            HeterogeneityKind::Storage => ClusterSpec::storage_heterogeneous(
                self.n_servers,
                self.server_bandwidth_mbps,
                self.server_disk_gb,
                spread,
                rng,
            ),
        }
    }

    /// Draws the catalog (uniform lengths).
    pub fn catalog(&self, rng: &mut Rng) -> Catalog {
        Catalog::uniform_lengths(
            self.n_videos,
            self.video_length_secs.0,
            self.video_length_secs.1,
            self.view_rate_mbps,
            rng,
        )
    }

    /// Aggregate cluster bandwidth.
    pub fn total_bandwidth_mbps(&self) -> f64 {
        self.server_bandwidth_mbps * self.n_servers as f64
    }

    /// Per-server stream slots (the SVBR).
    pub fn svbr(&self) -> usize {
        (self.server_bandwidth_mbps / self.view_rate_mbps).floor() as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_systems_match_fig3() {
        let s = SystemSpec::small_paper();
        assert_eq!(s.n_servers, 5);
        assert_eq!(s.server_bandwidth_mbps, 100.0);
        assert_eq!(s.svbr(), 33);
        assert_eq!(s.video_length_secs, (600.0, 1800.0));

        let l = SystemSpec::large_paper();
        assert_eq!(l.n_servers, 20);
        assert_eq!(l.server_bandwidth_mbps, 300.0);
        assert_eq!(l.svbr(), 100);
        assert_eq!(l.video_length_secs, (3600.0, 7200.0));
        assert_eq!(l.total_bandwidth_mbps(), 6000.0);
    }

    #[test]
    fn small_system_disks_hold_the_placement() {
        // 100 clips ≤ 30 min × 2.2 copies ≈ ≤ 1.2 TB total; 5 × 100 GB
        // disks hold an even share comfortably.
        let s = SystemSpec::small_paper();
        let mut rng = Rng::new(1);
        let catalog = s.catalog(&mut rng);
        let per_server_load = catalog.total_size_mb() * s.avg_copies / s.n_servers as f64;
        let disk = s
            .cluster()
            .server(sct_cluster::ServerId(0))
            .disk_capacity_mb;
        assert!(
            per_server_load < disk * 0.5,
            "placement should be bandwidth-bound: {per_server_load} vs {disk}"
        );
    }

    #[test]
    fn large_system_disks_hold_the_placement() {
        let l = SystemSpec::large_paper();
        let mut rng = Rng::new(2);
        let catalog = l.catalog(&mut rng);
        let per_server_load = catalog.total_size_mb() * l.avg_copies / l.n_servers as f64;
        let disk = l
            .cluster()
            .server(sct_cluster::ServerId(0))
            .disk_capacity_mb;
        assert!(per_server_load < disk, "{per_server_load} vs {disk}");
    }

    #[test]
    fn with_servers_preserves_totals() {
        let base = SystemSpec::large_paper();
        for n in [5, 10, 20] {
            let v = base.with_servers(n);
            assert_eq!(v.n_servers, n);
            assert!((v.total_bandwidth_mbps() - base.total_bandwidth_mbps()).abs() < 1e-9);
            assert!(
                (v.server_disk_gb * n as f64 - base.server_disk_gb * base.n_servers as f64).abs()
                    < 1e-9
            );
        }
    }

    #[test]
    fn heterogeneous_clusters_preserve_totals() {
        let spec = SystemSpec::small_paper();
        let mut rng = Rng::new(3);
        let bw = spec.heterogeneous_cluster(HeterogeneityKind::Bandwidth, 0.5, &mut rng);
        assert!((bw.total_bandwidth_mbps() - spec.total_bandwidth_mbps()).abs() < 1e-6);
        let st = spec.heterogeneous_cluster(HeterogeneityKind::Storage, 0.5, &mut rng);
        assert!((st.total_disk_mb() - spec.cluster().total_disk_mb()).abs() < 1e-3);
    }

    #[test]
    fn huge_spec_reaches_a_million_slots() {
        let h = SystemSpec::huge();
        assert_eq!(h.svbr(), 4000);
        assert_eq!(h.n_servers * h.svbr(), 1_024_000);
        // Disks must still hold the placement (bandwidth-bound).
        let mut rng = Rng::new(5);
        let catalog = h.catalog(&mut rng);
        let per_server_load = catalog.total_size_mb() * h.avg_copies / h.n_servers as f64;
        let disk = h
            .cluster()
            .server(sct_cluster::ServerId(0))
            .disk_capacity_mb;
        assert!(
            per_server_load < disk * 0.5,
            "placement should be bandwidth-bound: {per_server_load} vs {disk}"
        );
    }

    #[test]
    fn tiny_spec_is_consistent() {
        let t = SystemSpec::tiny_test();
        assert!(t.svbr() >= 10);
        let mut rng = Rng::new(4);
        let c = t.catalog(&mut rng);
        assert_eq!(c.len(), 20);
    }
}
