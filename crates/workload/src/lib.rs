//! Workload generation for the cluster-VoD experiments.
//!
//! The paper's workload model (§4.1):
//!
//! * request arrivals form a **Poisson process** whose rate is calibrated
//!   so the *offered load is exactly 100 %*: the expected megabits
//!   requested per second equal the cluster's aggregate bandwidth
//!   ("the arrival rate is chosen so as to place as much stress as
//!   possible on the system");
//! * each request asks for a video drawn from the **Zipf-like** popularity
//!   law `p_i = c / i^(1-θ)` (implemented in `sct-simcore`);
//! * two reference systems, **Small** (5 × 100 Mb/s, 10–30 min clips) and
//!   **Large** (20 × 300 Mb/s, 1–2 h features), defined in Fig. 3 and
//!   reconstructed in [`scenario`];
//! * trials of 1000 simulated hours, 5 trials per data point.
//!
//! Modules:
//!
//! * [`arrivals`] — Poisson arrival stream + the 100 %-load calibration.
//! * [`generator`] — the combined request source (arrival times × video
//!   choice), deterministic per seed.
//! * [`scenario`] — [`scenario::SystemSpec`]: the Fig. 3 parameter sets and
//!   heterogeneous variants (§4.6).
//! * [`trace`] — materialised request traces with JSON (de)serialisation,
//!   for exact cross-run and cross-implementation comparisons.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arrivals;
pub mod generator;
pub mod scenario;
pub mod trace;

pub use arrivals::{calibrated_rate, DiurnalPoisson, PoissonArrivals};
pub use generator::RequestGenerator;
pub use scenario::{HeterogeneityKind, SystemSpec};
pub use trace::Trace;
