//! The combined request source: Poisson arrival times × Zipf video choice.

use crate::arrivals::{DiurnalPoisson, PoissonArrivals};
use sct_media::VideoId;
use sct_simcore::{AliasTable, Rng, SimTime, ZipfLike};

/// One request before admission: when it arrives and what it wants.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RequestEvent {
    /// Arrival time.
    pub at: SimTime,
    /// Requested video.
    pub video: VideoId,
}

/// The arrival process driving a generator.
#[derive(Clone, Debug)]
enum Arrivals {
    /// Stationary Poisson (the paper's model).
    Homogeneous(PoissonArrivals),
    /// Sinusoidally modulated Poisson (diurnal extension).
    Diurnal(DiurnalPoisson),
}

impl Arrivals {
    fn peek(&self) -> SimTime {
        match self {
            Arrivals::Homogeneous(p) => p.peek(),
            Arrivals::Diurnal(d) => d.peek(),
        }
    }

    fn pop(&mut self, rng: &mut Rng) -> SimTime {
        match self {
            Arrivals::Homogeneous(p) => p.pop(rng),
            Arrivals::Diurnal(d) => d.pop(rng),
        }
    }
}

/// A deterministic stream of [`RequestEvent`]s.
///
/// Owns its RNG (forked from the trial seed) so that the arrival sequence
/// is independent of how the rest of the simulation consumes randomness.
#[derive(Clone, Debug)]
pub struct RequestGenerator {
    arrivals: Arrivals,
    sampler: AliasTable,
    rng: Rng,
    produced: u64,
}

impl RequestGenerator {
    /// Creates a generator with the given arrival rate and popularity law.
    pub fn new(rate_per_sec: f64, popularity: &ZipfLike, seed_rng: &Rng) -> Self {
        let mut rng = seed_rng.fork(0xA221_7A15);
        let arrivals = Arrivals::Homogeneous(PoissonArrivals::new(rate_per_sec, &mut rng));
        RequestGenerator {
            arrivals,
            sampler: popularity.sampler(),
            rng,
            produced: 0,
        }
    }

    /// Creates a generator whose arrival rate swings sinusoidally around
    /// `mean_rate_per_sec` (diurnal extension; the mean offered load stays
    /// at the calibrated 100 %).
    pub fn new_diurnal(
        mean_rate_per_sec: f64,
        amplitude: f64,
        period_secs: f64,
        popularity: &ZipfLike,
        seed_rng: &Rng,
    ) -> Self {
        let mut rng = seed_rng.fork(0xA221_7A15);
        let arrivals = Arrivals::Diurnal(DiurnalPoisson::new(
            mean_rate_per_sec,
            amplitude,
            period_secs,
            &mut rng,
        ));
        RequestGenerator {
            arrivals,
            sampler: popularity.sampler(),
            rng,
            produced: 0,
        }
    }

    /// The arrival time of the next request (not yet consumed).
    pub fn peek_time(&self) -> SimTime {
        self.arrivals.peek()
    }

    /// Produces the next request.
    pub fn next_request(&mut self) -> RequestEvent {
        let at = self.arrivals.pop(&mut self.rng);
        let video = VideoId(self.sampler.sample(&mut self.rng) as u32);
        self.produced += 1;
        RequestEvent { at, video }
    }

    /// How many requests have been produced so far.
    pub fn produced(&self) -> u64 {
        self.produced
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let pops = ZipfLike::new(50, 0.0);
        let root = Rng::new(99);
        let mut g1 = RequestGenerator::new(1.0, &pops, &root);
        let mut g2 = RequestGenerator::new(1.0, &pops, &root);
        for _ in 0..100 {
            assert_eq!(g1.next_request(), g2.next_request());
        }
        assert_eq!(g1.produced(), 100);
    }

    #[test]
    fn video_choice_follows_popularity() {
        let pops = ZipfLike::new(10, -0.5);
        let root = Rng::new(3);
        let mut g = RequestGenerator::new(1.0, &pops, &root);
        let mut counts = [0usize; 10];
        let n = 100_000;
        for _ in 0..n {
            counts[g.next_request().video.index()] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            let freq = c as f64 / n as f64;
            assert!(
                (freq - pops.prob(i)).abs() < 0.01,
                "video {i}: freq {freq} vs p {}",
                pops.prob(i)
            );
        }
    }

    #[test]
    fn diurnal_generator_contract() {
        let pops = ZipfLike::new(8, 0.0);
        let root = Rng::new(6);
        let mut g = RequestGenerator::new_diurnal(1.0, 0.8, 3600.0, &pops, &root);
        let mut prev = SimTime::ZERO;
        for _ in 0..500 {
            let r = g.next_request();
            assert!(r.at > prev);
            assert!(r.video.index() < 8);
            prev = r.at;
        }
        // Deterministic per seed.
        let mut g2 = RequestGenerator::new_diurnal(1.0, 0.8, 3600.0, &pops, &root);
        let mut g3 = RequestGenerator::new_diurnal(1.0, 0.8, 3600.0, &pops, &root);
        for _ in 0..100 {
            assert_eq!(g2.next_request(), g3.next_request());
        }
    }

    #[test]
    fn times_strictly_increase_and_peek_agrees() {
        let pops = ZipfLike::new(5, 1.0);
        let root = Rng::new(4);
        let mut g = RequestGenerator::new(5.0, &pops, &root);
        let mut prev = SimTime::ZERO;
        for _ in 0..1000 {
            let peeked = g.peek_time();
            let r = g.next_request();
            assert_eq!(r.at, peeked);
            assert!(r.at > prev);
            prev = r.at;
        }
    }
}
