//! Property tests for workload generation: calibration arithmetic, arrival
//! monotonicity, and trace integrity.

use proptest::prelude::*;
use sct_media::{Catalog, Video, VideoId};
use sct_simcore::{Rng, SimTime, ZipfLike};
use sct_workload::{calibrated_rate, RequestGenerator, SystemSpec, Trace};

proptest! {
    /// The calibrated arrival rate satisfies λ · E[size] = total bandwidth
    /// exactly, for arbitrary catalogs and popularity skews.
    #[test]
    fn calibration_identity(
        lengths in prop::collection::vec(60.0f64..7200.0, 1..100),
        theta in -1.5f64..=1.0,
        bandwidth in 10.0f64..10_000.0,
    ) {
        let videos: Vec<Video> = lengths
            .iter()
            .enumerate()
            .map(|(i, &l)| Video::new(VideoId(i as u32), l, 3.0))
            .collect();
        let catalog = Catalog::from_videos(videos);
        let pops = ZipfLike::new(catalog.len(), theta);
        let rate = calibrated_rate(bandwidth, &catalog, pops.probs());
        let mean_size: f64 = catalog
            .videos()
            .iter()
            .zip(pops.probs())
            .map(|(v, &p)| v.size_mb() * p)
            .sum();
        prop_assert!((rate * mean_size - bandwidth).abs() < 1e-6 * bandwidth);
    }

    /// Request times strictly increase and videos stay within the catalog,
    /// for any seed and rate.
    #[test]
    fn generator_contract(seed in any::<u64>(), rate in 0.01f64..100.0, n_videos in 1usize..50) {
        let pops = ZipfLike::new(n_videos, 0.0);
        let mut g = RequestGenerator::new(rate, &pops, &Rng::new(seed));
        let mut prev = SimTime::ZERO;
        for _ in 0..200 {
            let r = g.next_request();
            prop_assert!(r.at > prev);
            prop_assert!(r.video.index() < n_videos);
            prev = r.at;
        }
    }

    /// Traces round-trip through JSON for arbitrary horizons and seeds.
    #[test]
    fn trace_json_round_trip(seed in any::<u64>(), horizon_secs in 1.0f64..5000.0) {
        let pops = ZipfLike::new(10, 0.5);
        let t = Trace::generate(0.5, &pops, SimTime::from_secs(horizon_secs), &Rng::new(seed));
        let back = Trace::from_json(&t.to_json()).unwrap();
        prop_assert_eq!(t, back);
    }

    /// `with_servers` preserves cluster totals for any server count.
    #[test]
    fn with_servers_total_invariant(n in 1usize..64) {
        let base = SystemSpec::large_paper();
        let scaled = base.with_servers(n);
        prop_assert!(
            (scaled.total_bandwidth_mbps() - base.total_bandwidth_mbps()).abs() < 1e-6
        );
        prop_assert!(
            (scaled.server_disk_gb * n as f64
                - base.server_disk_gb * base.n_servers as f64)
                .abs()
                < 1e-6
        );
    }
}
