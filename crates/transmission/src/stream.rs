//! State of one active stream.
//!
//! A stream couples a video object with a client and tracks how much data
//! has been transmitted. Playback starts the moment the request is
//! admitted ("which also has the available resources to begin transmission
//! immediately", §2), so at wall time `t`:
//!
//! ```text
//! viewed(t) = b_view · min(t − start, length)
//! staged(t) = sent(t) − viewed(t)          ∈ [0, staging_capacity]
//! ```
//!
//! Under any minimum-flow allocation `sent` grows at ≥ `b_view` while the
//! stream is unfinished, so `staged ≥ 0` always holds (playback never
//! starves) and transmission completes no later than `start + length`.

use crate::{EPS_MB, EPS_SECS};
use sct_media::{ClientProfile, VideoId};
use sct_simcore::SimTime;
use serde::{Deserialize, Serialize};

/// Globally unique identifier of an admitted request.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct StreamId(pub u64);

impl std::fmt::Display for StreamId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// What a stream transfers: a viewer's playback, or a server-to-server
/// replica copy (dynamic replication extension).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StreamKind {
    /// A viewer watching a video; subject to playback semantics.
    Playback,
    /// A background copy of a video object toward another server. The
    /// "client" is the receiving server: unbounded buffer, fixed receive
    /// rate, no playback clock, never migrated by DRM.
    ReplicaCopy,
}

/// One active (or just-finished) stream on a server.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Stream {
    /// Request identifier.
    pub id: StreamId,
    /// Which video is being streamed.
    pub video: VideoId,
    /// Total object size in megabits.
    pub size_mb: f64,
    /// View bandwidth `b_view` in Mb/s.
    pub view_rate: f64,
    /// Admission time == playback start.
    pub start: SimTime,
    /// Client staging/receive constraints.
    pub client: ClientProfile,
    /// Megabits transmitted so far.
    sent_mb: f64,
    /// Currently allocated transmission rate (Mb/s); set by the allocator.
    rate: f64,
    /// Time `sent_mb` was last brought up to date.
    last_update: SimTime,
    /// How many times this stream has been migrated between servers.
    pub hops: u32,
    /// Seconds of video the client has played back (≤ length). Advances
    /// with wall time only while not paused.
    played_secs: f64,
    /// Whether playback is currently paused (interactivity extension;
    /// the paper's Theorem 1 regime has this always `false`).
    paused: bool,
    /// Playback stream or background replica copy.
    pub kind: StreamKind,
}

impl Stream {
    /// Admits a new stream at `now`. The client must be able to receive at
    /// least the view rate, otherwise playback could starve.
    pub fn new(
        id: StreamId,
        video: VideoId,
        size_mb: f64,
        view_rate: f64,
        client: ClientProfile,
        now: SimTime,
    ) -> Self {
        assert!(size_mb > 0.0 && view_rate > 0.0);
        assert!(
            client.receive_cap_mbps >= view_rate,
            "client receive cap {} below view rate {view_rate}",
            client.receive_cap_mbps
        );
        Stream {
            id,
            video,
            size_mb,
            view_rate,
            start: now,
            client,
            sent_mb: 0.0,
            rate: 0.0,
            last_update: now,
            hops: 0,
            played_secs: 0.0,
            paused: false,
            kind: StreamKind::Playback,
        }
    }

    /// Creates a background replica-copy stream: `size_mb` of `video`
    /// pushed at exactly `copy_rate` Mb/s. Modelled as a minimum-flow
    /// stream whose view rate *is* the copy rate, so it consumes real
    /// admission capacity and real bandwidth on the source server and
    /// finishes after `size / copy_rate` seconds.
    pub fn replica_copy(
        id: StreamId,
        video: VideoId,
        size_mb: f64,
        copy_rate: f64,
        now: SimTime,
    ) -> Self {
        let mut s = Stream::new(
            id,
            video,
            size_mb,
            copy_rate,
            // The receiving server drains at the copy rate and has disk
            // for the whole object: nothing ever buffers or caps.
            ClientProfile::new(f64::INFINITY, copy_rate),
            now,
        );
        s.kind = StreamKind::ReplicaCopy;
        s
    }

    /// `true` for background replica-copy streams.
    #[inline]
    pub fn is_copy(&self) -> bool {
        self.kind == StreamKind::ReplicaCopy
    }

    /// Playback length in seconds.
    #[inline]
    pub fn length_secs(&self) -> f64 {
        self.size_mb / self.view_rate
    }

    /// Megabits transmitted so far (up to the last `advance_to`).
    #[inline]
    pub fn sent_mb(&self) -> f64 {
        self.sent_mb
    }

    /// Megabits still to transmit.
    #[inline]
    pub fn remaining_mb(&self) -> f64 {
        (self.size_mb - self.sent_mb).max(0.0)
    }

    /// `true` once all data has been transmitted.
    #[inline]
    pub fn is_finished(&self) -> bool {
        self.size_mb - self.sent_mb <= EPS_MB
    }

    /// The currently allocated rate in Mb/s.
    #[inline]
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Sets the allocated rate. Only the allocator should call this, and
    /// only at the stream's current update point.
    #[inline]
    pub(crate) fn set_rate(&mut self, rate: f64) {
        debug_assert!(rate >= 0.0);
        self.rate = rate;
    }

    /// `true` while playback is paused.
    #[inline]
    pub fn is_paused(&self) -> bool {
        self.paused
    }

    /// Seconds of playback consumed by `now` (assuming the pause state has
    /// not changed since the last `advance_to`).
    #[inline]
    fn played_by(&self, now: SimTime) -> f64 {
        let extra = if self.paused {
            0.0
        } else {
            now - self.last_update
        };
        (self.played_secs + extra.max(0.0)).min(self.length_secs())
    }

    /// Megabits the client has consumed (viewed) by `now`.
    #[inline]
    pub fn viewed_mb(&self, now: SimTime) -> f64 {
        self.played_by(now) * self.view_rate
    }

    /// Megabits sitting in the client's staging buffer at `now`
    /// (transmitted but not yet viewed). Non-negative under minimum flow.
    #[inline]
    pub fn staged_mb(&self, now: SimTime) -> f64 {
        debug_assert!(now - self.last_update >= -EPS_SECS, "stream state is stale");
        (self.sent_mb - self.viewed_mb(now)).max(0.0)
    }

    /// `true` if the staging buffer has no room for workahead at `now`.
    #[inline]
    pub fn buffer_full(&self, now: SimTime) -> bool {
        self.staged_mb(now) >= self.client.staging_capacity_mb - EPS_MB
    }

    /// The paper's *projected finishing time*: when transmission would end
    /// if the stream received exactly `b_view` from `now` on (§3.3).
    #[inline]
    pub fn projected_finish(&self, now: SimTime) -> SimTime {
        now + self.remaining_mb() / self.view_rate
    }

    /// Hard transmission deadline for continuous playback: the wall time
    /// at which the client's playhead would reach the end if it never
    /// pauses again. Pauses push it later.
    #[inline]
    pub fn deadline(&self) -> SimTime {
        self.last_update + (self.length_secs() - self.played_secs)
    }

    /// Pauses playback. The stream keeps its server slot; consumption
    /// stops, so a full staging buffer can no longer absorb even the view
    /// rate — the allocator drops the minimum flow of paused streams to 0.
    /// The caller must have advanced the stream to `now` and must re-run
    /// the allocator afterwards.
    pub fn pause(&mut self, now: SimTime) {
        debug_assert!(
            (now - self.last_update).abs() <= EPS_SECS,
            "pause on stale state"
        );
        self.paused = true;
    }

    /// Resumes playback (see [`Stream::pause`]).
    pub fn resume(&mut self, now: SimTime) {
        debug_assert!(
            (now - self.last_update).abs() <= EPS_SECS,
            "resume on stale state"
        );
        self.paused = false;
    }

    /// Best-effort evacuation restart: rewinds the transmission point to
    /// the playback point, discarding the workahead parked in the
    /// client's staging buffer (a failed hand-off invalidates it), and
    /// zeroes the allocated rate. Playback position and pause state are
    /// untouched; the caller re-admits the stream elsewhere and re-runs
    /// the allocator. Returns the megabits of staged workahead discarded
    /// — that data will be transmitted a second time by the new server.
    pub fn restart_from_playback(&mut self, now: SimTime) -> f64 {
        debug_assert!(
            (now - self.last_update).abs() <= EPS_SECS,
            "restart on stale state"
        );
        let viewed = self.viewed_mb(now);
        let flushed = (self.sent_mb - viewed).max(0.0);
        self.sent_mb = viewed;
        self.rate = 0.0;
        flushed
    }

    /// Integrates the current rate from `last_update` to `now`, updating
    /// `sent_mb`. Caps at the object size (the allocator schedules a
    /// completion event exactly at the crossing; the cap absorbs float
    /// drift).
    pub fn advance_to(&mut self, now: SimTime) -> f64 {
        let dt = now - self.last_update;
        debug_assert!(dt >= -EPS_SECS, "time went backwards: {dt}");
        if dt <= 0.0 {
            // Same clamp as `ServerEngine::advance_to`: a sub-EPS stale
            // timestamp must not rewind the integration anchor.
            self.last_update = self.last_update.max(now);
            return 0.0;
        }
        let delta = (self.rate * dt).min(self.remaining_mb());
        self.sent_mb += delta;
        if !self.paused {
            self.played_secs = (self.played_secs + dt).min(self.length_secs());
        }
        self.last_update = now;
        debug_assert!(
            self.sent_mb <= self.size_mb + EPS_MB,
            "sent {} overshot size {}",
            self.sent_mb,
            self.size_mb
        );
        delta
    }

    /// Seconds from `now` until this stream finishes at its current rate,
    /// or `None` if the rate is zero.
    pub fn time_to_completion(&self) -> Option<f64> {
        if self.rate <= 0.0 {
            None
        } else {
            Some(self.remaining_mb() / self.rate)
        }
    }

    /// Seconds from `now` until the staging buffer fills at the current
    /// rate, or `None` if it never will (rate ≤ consumption, or unbounded
    /// buffer). Completion may occur first; the engine takes the minimum.
    pub fn time_to_buffer_full(&self, now: SimTime) -> Option<f64> {
        if self.client.is_unbounded_staging() {
            return None;
        }
        // While playing, the buffer grows at (rate − b_view); while
        // paused, consumption stops and it grows at the full rate.
        // Transmission always ends by the playback end, so we need not
        // consider the post-playback regime.
        let consumption = if self.paused { 0.0 } else { self.view_rate };
        let growth = self.rate - consumption;
        if growth <= 0.0 {
            return None;
        }
        let headroom = (self.client.staging_capacity_mb - self.staged_mb(now)).max(0.0);
        Some(headroom / growth)
    }

    /// Records a migration hop (server hand-off). State carries over
    /// unchanged; only the hop count moves.
    pub fn record_hop(&mut self) {
        self.hops += 1;
    }

    /// Checks internal invariants at `now`; panics with a description on
    /// violation. Debug/test aid.
    pub fn check_invariants(&self, now: SimTime) {
        assert!(self.sent_mb >= -EPS_MB && self.sent_mb <= self.size_mb + EPS_MB);
        let staged = self.sent_mb - self.viewed_mb(now);
        assert!(
            staged >= -EPS_MB,
            "playback starved: staged {staged} at {now} (stream {})",
            self.id
        );
        assert!(
            staged <= self.client.staging_capacity_mb + self.view_rate * EPS_SECS + EPS_MB,
            "staging buffer overflow: {staged} > {}",
            self.client.staging_capacity_mb
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn client(cap_mb: f64, recv: f64) -> ClientProfile {
        ClientProfile::new(cap_mb, recv)
    }

    fn stream_at_zero(size: f64, cap_mb: f64) -> Stream {
        Stream::new(
            StreamId(1),
            VideoId(0),
            size,
            3.0,
            client(cap_mb, 30.0),
            SimTime::ZERO,
        )
    }

    #[test]
    fn fresh_stream_state() {
        let s = stream_at_zero(300.0, 60.0);
        assert_eq!(s.length_secs(), 100.0);
        assert_eq!(s.sent_mb(), 0.0);
        assert_eq!(s.remaining_mb(), 300.0);
        assert!(!s.is_finished());
        assert_eq!(s.deadline(), SimTime::from_secs(100.0));
        assert_eq!(s.projected_finish(SimTime::ZERO), SimTime::from_secs(100.0));
    }

    #[test]
    fn advance_at_view_rate_keeps_buffer_empty() {
        let mut s = stream_at_zero(300.0, 60.0);
        s.set_rate(3.0);
        for step in 1..=10 {
            let t = SimTime::from_secs(step as f64 * 10.0);
            s.advance_to(t);
            assert!(s.staged_mb(t).abs() < 1e-9, "buffer should stay empty");
            s.check_invariants(t);
        }
        assert!((s.sent_mb() - 300.0).abs() < 1e-9);
        assert!(s.is_finished());
    }

    #[test]
    fn workahead_fills_buffer_then_projected_finish_moves_earlier() {
        let mut s = stream_at_zero(300.0, 60.0);
        s.set_rate(9.0); // 6 Mb/s of workahead
        let t = SimTime::from_secs(5.0);
        s.advance_to(t);
        assert!((s.sent_mb() - 45.0).abs() < 1e-9);
        assert!((s.viewed_mb(t) - 15.0).abs() < 1e-9);
        assert!((s.staged_mb(t) - 30.0).abs() < 1e-9);
        // Projected finish: 255 Mb remaining at 3 Mb/s → t + 85 s.
        assert!((s.projected_finish(t) - SimTime::from_secs(90.0)).abs() < 1e-9);
        s.check_invariants(t);
    }

    #[test]
    fn time_to_buffer_full_accounts_for_consumption() {
        let mut s = stream_at_zero(300.0, 60.0);
        s.set_rate(9.0);
        // Buffer grows at 6 Mb/s; 60 Mb of headroom → 10 s.
        assert!((s.time_to_buffer_full(SimTime::ZERO).unwrap() - 10.0).abs() < 1e-9);
        let t = SimTime::from_secs(10.0);
        s.advance_to(t);
        assert!(s.buffer_full(t));
        assert_eq!(s.time_to_buffer_full(t), Some(0.0));
        // At exactly b_view the buffer stays full forever.
        s.set_rate(3.0);
        assert_eq!(s.time_to_buffer_full(t), None);
        let t2 = SimTime::from_secs(30.0);
        s.advance_to(t2);
        assert!(s.buffer_full(t2));
        s.check_invariants(t2);
    }

    #[test]
    fn zero_capacity_client_is_always_full() {
        let s = stream_at_zero(300.0, 0.0);
        assert!(s.buffer_full(SimTime::ZERO));
    }

    #[test]
    fn unbounded_client_never_fills() {
        let mut s = Stream::new(
            StreamId(2),
            VideoId(0),
            300.0,
            3.0,
            ClientProfile::unbounded(),
            SimTime::ZERO,
        );
        s.set_rate(1000.0);
        assert_eq!(s.time_to_buffer_full(SimTime::ZERO), None);
        let t = SimTime::from_secs(0.3);
        s.advance_to(t);
        assert!(s.is_finished());
        assert!(!s.buffer_full(t));
    }

    #[test]
    fn completion_time_at_rate() {
        let mut s = stream_at_zero(300.0, f64::INFINITY);
        s.set_rate(30.0);
        assert!((s.time_to_completion().unwrap() - 10.0).abs() < 1e-12);
        s.set_rate(0.0);
        assert_eq!(s.time_to_completion(), None);
    }

    #[test]
    fn advance_caps_at_size() {
        let mut s = stream_at_zero(30.0, f64::INFINITY);
        s.set_rate(30.0);
        let sent = s.advance_to(SimTime::from_secs(100.0));
        assert_eq!(sent, 30.0);
        assert!(s.is_finished());
        assert_eq!(s.remaining_mb(), 0.0);
    }

    #[test]
    fn viewed_saturates_at_length() {
        let mut s = stream_at_zero(30.0, f64::INFINITY);
        s.set_rate(30.0);
        s.advance_to(SimTime::from_secs(1.0));
        // length is 10 s; viewing stops there.
        assert_eq!(s.viewed_mb(SimTime::from_secs(20.0)), 30.0);
        assert_eq!(s.viewed_mb(SimTime::from_secs(10.0)), 30.0);
        assert_eq!(s.viewed_mb(SimTime::from_secs(5.0)), 15.0);
    }

    #[test]
    fn hop_recording() {
        let mut s = stream_at_zero(30.0, 60.0);
        assert_eq!(s.hops, 0);
        s.record_hop();
        s.record_hop();
        assert_eq!(s.hops, 2);
    }

    #[test]
    fn advance_with_zero_dt_is_noop() {
        let mut s = stream_at_zero(300.0, 60.0);
        s.set_rate(9.0);
        let t = SimTime::from_secs(2.0);
        s.advance_to(t);
        let before = s.sent_mb();
        assert_eq!(s.advance_to(t), 0.0);
        assert_eq!(s.sent_mb(), before);
    }

    #[test]
    fn pause_freezes_consumption() {
        let mut s = stream_at_zero(300.0, 60.0);
        s.set_rate(3.0);
        let t1 = SimTime::from_secs(10.0);
        s.advance_to(t1);
        assert!((s.viewed_mb(t1) - 30.0).abs() < 1e-9);
        s.pause(t1);
        s.set_rate(3.0); // allocator may keep feeding the buffer
        let t2 = SimTime::from_secs(20.0);
        s.advance_to(t2);
        // 10 more seconds of transmission, zero more seconds of playback.
        assert!((s.sent_mb() - 60.0).abs() < 1e-9);
        assert!((s.viewed_mb(t2) - 30.0).abs() < 1e-9);
        assert!((s.staged_mb(t2) - 30.0).abs() < 1e-9);
        s.check_invariants(t2);
        s.resume(t2);
        let t3 = SimTime::from_secs(30.0);
        s.set_rate(3.0);
        s.advance_to(t3);
        assert!((s.viewed_mb(t3) - 60.0).abs() < 1e-9, "playback resumed");
    }

    #[test]
    fn paused_stream_buffer_fills_at_full_rate() {
        let mut s = stream_at_zero(300.0, 60.0);
        s.set_rate(6.0);
        let t1 = SimTime::from_secs(1.0);
        s.advance_to(t1);
        s.pause(t1);
        // Growth is now the full 6 Mb/s; staged is 3 Mb, headroom 57 Mb.
        let dt = s.time_to_buffer_full(t1).unwrap();
        assert!((dt - 57.0 / 6.0).abs() < 1e-9, "dt {dt}");
        // While playing it would have been 57 / (6-3).
        s.resume(t1);
        assert!((s.time_to_buffer_full(t1).unwrap() - 19.0).abs() < 1e-9);
    }

    #[test]
    fn deadline_extends_with_pause() {
        let mut s = stream_at_zero(300.0, 60.0);
        s.set_rate(3.0);
        assert_eq!(s.deadline(), SimTime::from_secs(100.0));
        let t1 = SimTime::from_secs(10.0);
        s.advance_to(t1);
        s.pause(t1);
        let t2 = SimTime::from_secs(25.0);
        s.set_rate(0.0);
        s.advance_to(t2);
        // 90 s of playback left, so the deadline slid 15 s later.
        assert_eq!(s.deadline(), SimTime::from_secs(115.0));
    }

    #[test]
    #[should_panic(expected = "below view rate")]
    fn rejects_client_slower_than_view_rate() {
        Stream::new(
            StreamId(3),
            VideoId(0),
            30.0,
            3.0,
            ClientProfile::new(0.0, 2.0),
            SimTime::ZERO,
        );
    }
}
