//! Per-server stream engine.
//!
//! A [`ServerEngine`] owns the streams currently served by one data source
//! and advances them between events. The global simulation drives it with
//! three operations:
//!
//! 1. [`ServerEngine::advance_to`] — integrate all stream states (and the
//!    transmitted-megabits meter) up to the current time;
//! 2. mutations — [`admit`](ServerEngine::admit),
//!    [`reap_finished`](ServerEngine::reap_finished),
//!    [`remove_stream`](ServerEngine::remove_stream) (migration out);
//! 3. [`ServerEngine::reschedule`] — re-run the bandwidth allocator and
//!    report when this server next needs attention (earliest stream
//!    completion or staging-buffer fill).
//!
//! Stale wake-ups are filtered with a generation counter: every
//! `reschedule` invalidates previously scheduled wakes, so the global
//! event queue never needs to delete entries.

use crate::alloc::{allocate_incremental, AllocScratch, SchedulerKind};
use crate::stream::{Stream, StreamId};
use crate::{EPS_MB, EPS_SECS};
use sct_cluster::ServerId;
use sct_simcore::SimTime;

/// What a scheduled wake-up is expected to handle (diagnostic only — the
/// engine re-derives the actual state when woken).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EngineEvent {
    /// A stream will have transmitted all its data.
    Completion,
    /// A client staging buffer will be full.
    BufferFull,
}

/// The transmission state of one data server.
#[derive(Clone, Debug)]
pub struct ServerEngine {
    id: ServerId,
    capacity_mbps: f64,
    scheduler: SchedulerKind,
    streams: Vec<Stream>,
    clock: SimTime,
    /// Megabits transmitted since the measurement start.
    measured_mb: f64,
    /// Megabits transmitted since t = 0 (includes warm-up).
    transmitted_mb: f64,
    /// Transmission before this instant does not count toward utilization.
    measure_start: SimTime,
    generation: u64,
    /// Sum of admitted view rates — the minimum-flow commitment.
    committed_mbps: f64,
    /// Sum of currently allocated transmission rates, recomputed in
    /// stream order after every mutation so it is bit-identical to a
    /// fresh fold over [`ServerEngine::streams`]. Lets observers read
    /// the aggregate in O(1) instead of re-summing per state view.
    allocated_mbps: f64,
    /// Whether the server is up. Offline servers admit nothing and hold no
    /// streams; see [`ServerEngine::fail`].
    online: bool,
    /// Incremental-allocation scratch (cached spare order + SoA columns).
    scratch: AllocScratch,
    /// The wake time computed by the last [`ServerEngine::reschedule`]
    /// (absolute, so it stays valid under pure time advancement). Lets
    /// post-admission re-arm sites reuse the schedule instead of
    /// re-scanning every stream.
    last_wake: Option<SimTime>,
}

impl ServerEngine {
    /// Creates an idle engine.
    pub fn new(id: ServerId, capacity_mbps: f64, scheduler: SchedulerKind) -> Self {
        assert!(capacity_mbps > 0.0);
        ServerEngine {
            id,
            capacity_mbps,
            scheduler,
            streams: Vec::new(),
            clock: SimTime::ZERO,
            measured_mb: 0.0,
            transmitted_mb: 0.0,
            measure_start: SimTime::ZERO,
            generation: 0,
            committed_mbps: 0.0,
            allocated_mbps: 0.0,
            online: true,
            scratch: AllocScratch::default(),
            last_wake: None,
        }
    }

    /// Sets the utilization-measurement start (warm-up cutoff). Must be
    /// called before the simulation starts.
    pub fn set_measure_start(&mut self, t: SimTime) {
        assert!(self.clock == SimTime::ZERO && self.streams.is_empty());
        self.measure_start = t;
    }

    /// Server id.
    pub fn id(&self) -> ServerId {
        self.id
    }

    /// Outbound capacity in Mb/s.
    pub fn capacity_mbps(&self) -> f64 {
        self.capacity_mbps
    }

    /// Number of unfinished streams currently assigned here.
    pub fn active_count(&self) -> usize {
        self.streams.len()
    }

    /// The streams currently assigned here (read-only; used by the
    /// migration victim search).
    pub fn streams(&self) -> &[Stream] {
        &self.streams
    }

    /// Current wake generation; wake-ups carrying an older generation are
    /// stale and must be ignored.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The engine's local clock (time of last `advance_to`).
    pub fn clock(&self) -> SimTime {
        self.clock
    }

    /// Megabits transmitted within the measurement window so far.
    pub fn measured_mb(&self) -> f64 {
        self.measured_mb
    }

    /// Megabits transmitted since t = 0.
    pub fn transmitted_mb(&self) -> f64 {
        self.transmitted_mb
    }

    /// Minimum-flow admission test (§3.3): can this server take one more
    /// stream viewed at `view_rate` without breaking Σ b_view ≤ capacity?
    /// Offline servers admit nothing.
    pub fn can_admit(&self, view_rate: f64) -> bool {
        self.online && self.committed_mbps + view_rate <= self.capacity_mbps + EPS_MB
    }

    /// `true` while the server is up.
    pub fn is_online(&self) -> bool {
        self.online
    }

    /// Sum of the view rates of all admitted streams — the minimum-flow
    /// commitment that [`ServerEngine::can_admit`] guards. Read by the
    /// telemetry gauges and cross-checked by the differential oracle
    /// against its own ledger.
    pub fn committed_mbps(&self) -> f64 {
        self.committed_mbps
    }

    /// Sum of the rates currently allocated to this server's streams —
    /// identical to summing [`ServerEngine::streams`] in order, but O(1).
    pub fn allocated_mbps(&self) -> f64 {
        self.allocated_mbps
    }

    /// Recomputes the allocated-rate aggregate from scratch, in stream
    /// order. Called after every mutation that can change the stream set
    /// or a rate, so the cache never drifts from the direct sum.
    fn refresh_allocated(&mut self) {
        self.allocated_mbps = self.streams.iter().map(Stream::rate).sum();
    }

    /// Test-only fault injection: silently perturbs one stream's allocated
    /// rate *without* reallocating or invalidating scheduled wakes —
    /// exactly the signature of an allocator bug. Returns `false` if the
    /// stream is not on this server. Used to prove the differential oracle
    /// catches misallocations; never call outside oracle self-tests.
    #[cfg(feature = "differential")]
    pub fn inject_rate_error(&mut self, id: StreamId, delta_mbps: f64) -> bool {
        match self.streams.iter_mut().find(|s| s.id == id) {
            Some(s) => {
                let rate = (s.rate() + delta_mbps).max(0.0);
                s.set_rate(rate);
                self.refresh_allocated();
                true
            }
            None => false,
        }
    }

    /// Fails the server at `now`: integrates state, takes every active
    /// stream off it (their transmission state intact, for possible
    /// emergency migration by the controller), and marks it offline.
    /// Previously scheduled wakes become stale.
    pub fn fail(&mut self, now: SimTime) -> Vec<Stream> {
        self.advance_to(now);
        self.generation += 1;
        self.online = false;
        self.committed_mbps = 0.0;
        self.last_wake = None;
        self.allocated_mbps = 0.0;
        std::mem::take(&mut self.streams)
    }

    /// Repairs the server at `now`: it comes back empty and admitting.
    pub fn repair(&mut self, now: SimTime) {
        self.advance_to(now);
        assert!(
            self.streams.is_empty(),
            "offline servers cannot hold streams"
        );
        self.generation += 1;
        self.online = true;
        self.last_wake = None;
    }

    /// Integrates all stream states from the engine clock to `now`.
    /// Idempotent for equal times; panics if time would run backwards.
    pub fn advance_to(&mut self, now: SimTime) {
        let dt = now - self.clock;
        assert!(dt >= -EPS_SECS, "engine {} time went backwards", self.id);
        if dt <= 0.0 {
            // A wake time computed by float arithmetic can land up to
            // EPS_SECS before the current clock; hold the clock rather
            // than stepping it backwards, so a subsequent advance to a
            // legitimate time never sees a widened negative dt.
            self.clock = self.clock.max(now);
            return;
        }
        // Fraction of this interval inside the measurement window. Rates
        // are constant across the interval, so a linear share is exact.
        let measured_fraction = if self.measure_start <= self.clock {
            1.0
        } else if self.measure_start >= now {
            0.0
        } else {
            (now - self.measure_start) / dt
        };
        for s in &mut self.streams {
            let delta = s.advance_to(now);
            self.transmitted_mb += delta;
            self.measured_mb += delta * measured_fraction;
        }
        self.clock = now;
    }

    /// Admits a stream (must satisfy [`ServerEngine::can_admit`]) and
    /// reallocates bandwidth. Returns the next wake time.
    pub fn admit(&mut self, stream: Stream, now: SimTime) -> Option<SimTime> {
        self.advance_to(now);
        assert!(
            self.can_admit(stream.view_rate),
            "admission invariant violated on {}",
            self.id
        );
        assert!(!stream.is_finished());
        self.committed_mbps += stream.view_rate;
        self.streams.push(stream);
        self.reschedule(now)
    }

    /// Removes and returns every finished stream. Call after
    /// `advance_to(now)` at a wake; follow with [`ServerEngine::reschedule`].
    pub fn reap_finished(&mut self, now: SimTime) -> Vec<Stream> {
        debug_assert!(
            (now - self.clock).abs() <= EPS_SECS,
            "reap before advancing"
        );
        let mut finished = Vec::new();
        let mut i = 0;
        while i < self.streams.len() {
            if self.streams[i].is_finished() {
                let s = self.streams.swap_remove(i);
                self.committed_mbps -= s.view_rate;
                finished.push(s);
            } else {
                i += 1;
            }
        }
        if self.streams.is_empty() {
            self.committed_mbps = 0.0; // absorb float drift at idle
        }
        self.refresh_allocated();
        finished
    }

    /// Removes a specific stream (for migration to another server).
    /// The caller must `advance_to(now)` first and `reschedule` after.
    pub fn remove_stream(&mut self, id: StreamId, now: SimTime) -> Option<Stream> {
        debug_assert!((now - self.clock).abs() <= EPS_SECS);
        let idx = self.streams.iter().position(|s| s.id == id)?;
        let s = self.streams.swap_remove(idx);
        self.committed_mbps -= s.view_rate;
        if self.streams.is_empty() {
            self.committed_mbps = 0.0;
        }
        self.refresh_allocated();
        Some(s)
    }

    /// Pauses or resumes a stream's playback (interactivity extension).
    /// Returns `false` if the stream is not on this server (it may have
    /// completed or migrated away). The caller must `reschedule` after a
    /// successful toggle.
    pub fn set_paused(&mut self, id: StreamId, paused: bool, now: SimTime) -> bool {
        self.advance_to(now);
        match self.streams.iter_mut().find(|s| s.id == id) {
            Some(s) => {
                if paused {
                    s.pause(now);
                } else {
                    s.resume(now);
                }
                self.refresh_allocated();
                true
            }
            None => false,
        }
    }

    /// Re-runs the allocator at `now`, bumps the wake generation, and
    /// returns the time of the next intrinsic event (stream completion or
    /// buffer fill), if any.
    pub fn reschedule(&mut self, now: SimTime) -> Option<SimTime> {
        debug_assert!(
            (now - self.clock).abs() <= EPS_SECS,
            "reschedule before advancing"
        );
        self.generation += 1;
        allocate_incremental(
            self.scheduler,
            self.capacity_mbps,
            now,
            &mut self.streams,
            &mut self.scratch,
        );
        self.refresh_allocated();
        self.last_wake = self.next_event_after(now).map(|(t, _)| t);
        self.last_wake
    }

    /// The wake time the most recent [`ServerEngine::reschedule`]
    /// reported. Valid until the stream set or a rate changes — i.e. the
    /// caller may rely on it only while it has performed no engine
    /// mutation since that reschedule (pure `advance_to` is fine: the
    /// cached time is absolute).
    pub fn last_wake(&self) -> Option<SimTime> {
        self.last_wake
    }

    /// When (and why) this server next changes state on its own.
    pub fn next_event_after(&self, now: SimTime) -> Option<(SimTime, EngineEvent)> {
        let mut best: Option<(SimTime, EngineEvent)> = None;
        for s in &self.streams {
            if let Some(dt) = s.time_to_completion() {
                let t = now + dt;
                if best.is_none_or(|(bt, _)| t < bt) {
                    best = Some((t, EngineEvent::Completion));
                }
            }
            if let Some(dt) = s.time_to_buffer_full(now) {
                let t = now + dt;
                if best.is_none_or(|(bt, _)| t < bt) {
                    best = Some((t, EngineEvent::BufferFull));
                }
            }
        }
        best
    }

    /// Validates engine-level invariants at the current clock. Test aid.
    pub fn check_invariants(&self) {
        let now = self.clock;
        let mut total_rate = 0.0;
        let mut committed = 0.0;
        for s in &self.streams {
            s.check_invariants(now);
            assert!(!s.is_finished(), "finished stream not reaped");
            assert!(
                s.is_paused() || s.rate() >= s.view_rate - EPS_MB,
                "min-flow violated on {}",
                self.id
            );
            total_rate += s.rate();
            committed += s.view_rate;
        }
        assert!(
            total_rate <= self.capacity_mbps + EPS_MB * self.streams.len() as f64,
            "capacity exceeded on {}: {total_rate} > {}",
            self.id,
            self.capacity_mbps
        );
        assert!(
            (committed - self.committed_mbps).abs() < EPS_MB * (1.0 + self.streams.len() as f64),
            "committed bandwidth drifted on {}",
            self.id
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sct_media::{ClientProfile, VideoId};

    fn mk_stream(id: u64, size: f64, cap: f64, now: SimTime) -> Stream {
        Stream::new(
            StreamId(id),
            VideoId(id as u32),
            size,
            3.0,
            ClientProfile::new(cap, 30.0),
            now,
        )
    }

    fn engine() -> ServerEngine {
        ServerEngine::new(ServerId(0), 100.0, SchedulerKind::Eftf)
    }

    #[test]
    fn admission_respects_capacity() {
        let mut e = ServerEngine::new(ServerId(0), 10.0, SchedulerKind::Eftf);
        let now = SimTime::ZERO;
        assert!(e.can_admit(3.0));
        e.admit(mk_stream(1, 300.0, 0.0, now), now);
        e.admit(mk_stream(2, 300.0, 0.0, now), now);
        e.admit(mk_stream(3, 300.0, 0.0, now), now);
        // 3 × 3 = 9; a fourth would commit 12 > 10.
        assert!(!e.can_admit(3.0));
        assert_eq!(e.active_count(), 3);
        e.check_invariants();
    }

    #[test]
    fn single_stream_completes_at_projected_time() {
        let mut e = engine();
        let now = SimTime::ZERO;
        // 300 Mb, 30 Mb/s receive cap, huge buffer: EFTF sends at 30 → 10 s.
        let wake = e.admit(mk_stream(1, 300.0, 1e9, now), now).unwrap();
        assert!((wake.as_secs() - 10.0).abs() < 1e-9);
        e.advance_to(wake);
        let done = e.reap_finished(wake);
        assert_eq!(done.len(), 1);
        assert!(done[0].is_finished());
        assert_eq!(e.active_count(), 0);
        assert!((e.transmitted_mb() - 300.0).abs() < 1e-9);
    }

    #[test]
    fn no_staging_stream_completes_exactly_at_deadline() {
        let mut e = engine();
        let now = SimTime::ZERO;
        let wake = e.admit(mk_stream(1, 300.0, 0.0, now), now).unwrap();
        assert!((wake.as_secs() - 100.0).abs() < 1e-9, "wake {wake}");
        e.advance_to(wake);
        assert_eq!(e.reap_finished(wake).len(), 1);
    }

    #[test]
    fn buffer_full_event_then_completion() {
        let mut e = engine();
        let now = SimTime::ZERO;
        // 300 Mb object, 54 Mb buffer, cap 30: buffer grows at 27 → full at
        // 2 s. Then rate drops to 3; remaining 240 Mb → completes at 82 s
        // (wall): sent(2s)=60, viewed grows with playback; transmission
        // finishes when sent = 300 → 2 + 240/3 = 82 s.
        let w1 = e.admit(mk_stream(1, 300.0, 54.0, now), now).unwrap();
        assert!((w1.as_secs() - 2.0).abs() < 1e-9, "w1 {w1}");
        e.advance_to(w1);
        assert!(e.reap_finished(w1).is_empty());
        let w2 = e.reschedule(w1).unwrap();
        assert!((w2.as_secs() - 82.0).abs() < 1e-9, "w2 {w2}");
        e.advance_to(w2);
        let done = e.reap_finished(w2);
        assert_eq!(done.len(), 1);
        e.check_invariants();
    }

    #[test]
    fn eftf_reassigns_spare_when_first_buffer_fills() {
        let mut e = engine();
        let now = SimTime::ZERO;
        // Stream 1 finishes earlier → gets the workahead until its buffer
        // fills; then stream 2 should inherit the spare.
        e.admit(mk_stream(1, 150.0, 27.0, now), now);
        let wake = e.admit(mk_stream(2, 600.0, 1e9, now), now).unwrap();
        // Both get min-flow 3; spare 94 goes to stream 1 first, capped at
        // receive 30 → rate 30, growth 27, headroom 27 → full at 1 s.
        // Stream 2 receives the remainder: min(94-27, 27) → rate 30 too.
        let r1 = e
            .streams()
            .iter()
            .find(|s| s.id == StreamId(1))
            .unwrap()
            .rate();
        let r2 = e
            .streams()
            .iter()
            .find(|s| s.id == StreamId(2))
            .unwrap()
            .rate();
        assert_eq!(r1, 30.0);
        assert_eq!(r2, 30.0);
        assert!((wake.as_secs() - 1.0).abs() < 1e-9);
        e.advance_to(wake);
        e.reap_finished(wake);
        e.reschedule(wake);
        let r1 = e
            .streams()
            .iter()
            .find(|s| s.id == StreamId(1))
            .unwrap()
            .rate();
        let r2 = e
            .streams()
            .iter()
            .find(|s| s.id == StreamId(2))
            .unwrap()
            .rate();
        assert_eq!(r1, 3.0, "full buffer drops to view rate");
        assert_eq!(r2, 30.0, "later stream keeps its workahead");
        e.check_invariants();
    }

    #[test]
    fn measured_window_excludes_warmup() {
        let mut e = engine();
        e.set_measure_start(SimTime::from_secs(50.0));
        let now = SimTime::ZERO;
        // No staging: constant 3 Mb/s for 100 s.
        e.admit(mk_stream(1, 300.0, 0.0, now), now);
        e.advance_to(SimTime::from_secs(100.0));
        assert!((e.transmitted_mb() - 300.0).abs() < 1e-9);
        assert!((e.measured_mb() - 150.0).abs() < 1e-9);
    }

    #[test]
    fn measured_window_straddling_interval_is_split_exactly() {
        let mut e = engine();
        e.set_measure_start(SimTime::from_secs(30.0));
        let now = SimTime::ZERO;
        e.admit(mk_stream(1, 300.0, 0.0, now), now);
        // One single advance across the boundary.
        e.advance_to(SimTime::from_secs(40.0));
        assert!((e.measured_mb() - 30.0).abs() < 1e-9);
    }

    #[test]
    fn remove_stream_for_migration_preserves_state() {
        let mut e = engine();
        let now = SimTime::ZERO;
        e.admit(mk_stream(1, 300.0, 1e9, now), now);
        let t = SimTime::from_secs(2.0);
        e.advance_to(t);
        let s = e.remove_stream(StreamId(1), t).unwrap();
        assert!((s.sent_mb() - 60.0).abs() < 1e-9, "sent {}", s.sent_mb());
        assert_eq!(e.active_count(), 0);
        assert!(e.can_admit(3.0));
        // Re-admission elsewhere continues from the same state.
        let mut e2 = ServerEngine::new(ServerId(1), 100.0, SchedulerKind::Eftf);
        e2.advance_to(t);
        let mut s = s;
        s.record_hop();
        e2.admit(s, t);
        assert_eq!(e2.streams()[0].hops, 1);
        assert!((e2.streams()[0].sent_mb() - 60.0).abs() < 1e-9);
    }

    #[test]
    fn remove_missing_stream_is_none() {
        let mut e = engine();
        assert!(e.remove_stream(StreamId(9), SimTime::ZERO).is_none());
    }

    #[test]
    fn generation_bumps_on_reschedule() {
        let mut e = engine();
        let g0 = e.generation();
        e.reschedule(SimTime::ZERO);
        assert_eq!(e.generation(), g0 + 1);
        e.admit(mk_stream(1, 300.0, 0.0, SimTime::ZERO), SimTime::ZERO);
        assert_eq!(e.generation(), g0 + 2);
    }

    #[test]
    fn idle_engine_has_no_events() {
        let e = engine();
        assert!(e.next_event_after(SimTime::ZERO).is_none());
    }

    #[test]
    fn paused_stream_releases_bandwidth_to_others() {
        let mut e = ServerEngine::new(ServerId(0), 9.0, SchedulerKind::Eftf);
        let now = SimTime::ZERO;
        // Three streams saturate the 9 Mb/s server at min flow.
        for i in 0..3 {
            e.admit(mk_stream(i, 300.0, 1e6, now), now);
        }
        assert!(e.streams().iter().all(|s| s.rate() == 3.0));
        // Pausing one frees its minimum flow; EFTF hands it to the
        // earliest finisher among the others... including possibly the
        // paused stream itself (it still has buffer room).
        let t = SimTime::from_secs(1.0);
        assert!(e.set_paused(StreamId(1), true, t));
        e.reschedule(t);
        let total: f64 = e.streams().iter().map(|s| s.rate()).sum();
        assert!((total - 9.0).abs() < 1e-9, "capacity stays busy: {total}");
        for s in e.streams() {
            if !s.is_paused() {
                assert!(s.rate() >= 3.0 - 1e-9, "min flow for playing streams");
            }
        }
        e.check_invariants();
    }

    #[test]
    fn pause_unknown_stream_is_false() {
        let mut e = engine();
        assert!(!e.set_paused(StreamId(77), true, SimTime::ZERO));
    }

    #[test]
    fn paused_full_buffer_stream_goes_idle() {
        let mut e = ServerEngine::new(ServerId(0), 30.0, SchedulerKind::Eftf);
        let now = SimTime::ZERO;
        // 30 Mb buffer fills quickly at full rate.
        e.admit(mk_stream(1, 300.0, 30.0, now), now);
        let w = e.next_event_after(now).unwrap().0; // buffer-full
        e.advance_to(w);
        e.reschedule(w);
        assert!(e.set_paused(StreamId(1), true, w));
        e.reschedule(w);
        let s = &e.streams()[0];
        assert_eq!(s.rate(), 0.0, "paused + full buffer → no feed");
        assert!(
            e.next_event_after(w).is_none(),
            "nothing can happen until resume"
        );
        e.check_invariants();
    }

    #[test]
    fn fail_takes_streams_and_blocks_admission() {
        let mut e = engine();
        let now = SimTime::ZERO;
        e.admit(mk_stream(1, 300.0, 1e9, now), now);
        e.admit(mk_stream(2, 300.0, 1e9, now), now);
        let t = SimTime::from_secs(2.0);
        let taken = e.fail(t);
        assert_eq!(taken.len(), 2);
        assert!(!e.is_online());
        assert!(!e.can_admit(3.0));
        assert_eq!(e.active_count(), 0);
        // Transmission state survived the failure (for emergency
        // migration): both streams got workahead before the crash.
        assert!(taken.iter().all(|s| s.sent_mb() > 6.0 - 1e-9));
        assert!(e.next_event_after(t).is_none());
    }

    #[test]
    fn repair_restores_admission() {
        let mut e = engine();
        let t0 = SimTime::ZERO;
        e.admit(mk_stream(1, 300.0, 0.0, t0), t0);
        let t1 = SimTime::from_secs(1.0);
        e.fail(t1);
        let g_down = e.generation();
        let t2 = SimTime::from_secs(5.0);
        e.repair(t2);
        assert!(e.is_online());
        assert!(
            e.generation() > g_down,
            "repair must invalidate stale wakes"
        );
        assert!(e.can_admit(3.0));
        e.admit(mk_stream(2, 300.0, 0.0, t2), t2);
        assert_eq!(e.active_count(), 1);
        e.check_invariants();
    }

    #[test]
    fn sub_eps_stale_wake_does_not_rewind_clock() {
        let mut e = engine();
        let now = SimTime::ZERO;
        e.admit(mk_stream(1, 3000.0, 1e9, now), now);
        let t = SimTime::from_secs(10.0);
        e.advance_to(t);
        assert_eq!(e.clock(), t);
        // A wake computed by float arithmetic can land up to EPS_SECS
        // before the clock; the clamp must hold the clock, not rewind it.
        let stale = SimTime::from_secs(10.0 - 0.5e-9);
        e.advance_to(stale);
        assert_eq!(e.clock(), t, "clock stepped backwards on a stale wake");
        // Repeating the stale advance must not widen the gap either.
        e.advance_to(stale);
        assert_eq!(e.clock(), t);
        // A later legitimate advance proceeds normally.
        let later = SimTime::from_secs(11.0);
        e.advance_to(later);
        assert_eq!(e.clock(), later);
        e.check_invariants();
    }

    #[test]
    fn failed_server_remove_does_not_double_decrement() {
        // A stream "removed" from a failed server (e.g. a migration whose
        // source crashed mid-flight) must not decrement committed_mbps a
        // second time: `fail` already zeroed the commitment ledger.
        let mut e = engine();
        let now = SimTime::ZERO;
        e.admit(mk_stream(1, 300.0, 30.0, now), now);
        e.admit(mk_stream(2, 300.0, 30.0, now), now);
        let t = SimTime::from_secs(1.0);
        let taken = e.fail(t);
        assert_eq!(taken.len(), 2);
        assert!(
            e.remove_stream(StreamId(1), t).is_none(),
            "failed server holds no streams"
        );
        // can_admit must stay false (offline), and the ledger must not have
        // gone negative, which would admit 6 streams after repair.
        assert!(!e.can_admit(3.0));
        e.repair(t);
        let mut admitted = 0;
        for i in 10..60 {
            if e.can_admit(3.0) {
                e.admit(mk_stream(i, 30.0, 0.0, t), t);
                admitted += 1;
            }
        }
        assert_eq!(admitted, 33, "capacity 100 / view 3 = 33 slots");
        e.check_invariants();
    }

    #[test]
    fn many_streams_conserve_data() {
        let mut e = engine();
        let now = SimTime::ZERO;
        for i in 0..30 {
            e.admit(mk_stream(i, 90.0 + i as f64, 30.0, now), now);
        }
        // Run the engine loop manually for a while.
        let mut t = now;
        let mut total_reaped = 0.0;
        for _ in 0..500 {
            let Some(next) = e.next_event_after(t) else {
                break;
            };
            t = next.0;
            e.advance_to(t);
            for s in e.reap_finished(t) {
                total_reaped += s.sent_mb();
            }
            e.reschedule(t);
            e.check_invariants();
        }
        assert_eq!(e.active_count(), 0, "everything finishes");
        let expected: f64 = (0..30).map(|i| 90.0 + i as f64).sum();
        assert!((total_reaped - expected).abs() < 1e-6);
        assert!((e.transmitted_mb() - expected).abs() < 1e-6);
    }
}
