//! Bandwidth allocation policies (minimum-flow family).
//!
//! All policies share the minimum-flow skeleton: every unfinished stream
//! first receives its view bandwidth; the policies differ only in how the
//! *spare* server bandwidth is distributed among streams whose staging
//! buffers still have room:
//!
//! * [`SchedulerKind::Eftf`] — the paper's Earliest Finishing Time First
//!   (Fig. 2): spare goes to the stream with the earliest projected finish,
//!   up to its client receive cap, then the next, and so on. Optimal among
//!   minimum-flow algorithms for unbounded receive caps (Theorem 1).
//! * [`SchedulerKind::LatestFinishFirst`] — the adversarial mirror image;
//!   an ablation baseline showing the ordering matters.
//! * [`SchedulerKind::ProportionalShare`] — waterfilling: spare is split
//!   evenly among candidates, respecting receive caps; a "fair" baseline.
//! * [`SchedulerKind::NoWorkahead`] — no spare is handed out at all:
//!   classic *continuous* transmission, the pre-paper state of the art.
//!
//! [`allocate`] mutates the streams' rates in place and returns the spare
//! bandwidth that could not be used (all buffers full / caps reached).

use crate::stream::{Stream, StreamId};
use crate::EPS_MB;
use sct_simcore::SimTime;
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;

/// Which minimum-flow allocation policy a server runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SchedulerKind {
    /// Earliest Finishing Time First (the paper's algorithm, Fig. 2).
    Eftf,
    /// Latest finishing time first — adversarial ablation.
    LatestFinishFirst,
    /// Even split of spare bandwidth among eligible streams (waterfill).
    ProportionalShare,
    /// No workahead: every stream gets exactly `b_view` (continuous
    /// transmission baseline).
    NoWorkahead,
}

impl SchedulerKind {
    /// All variants, for ablation sweeps.
    pub const ALL: [SchedulerKind; 4] = [
        SchedulerKind::Eftf,
        SchedulerKind::LatestFinishFirst,
        SchedulerKind::ProportionalShare,
        SchedulerKind::NoWorkahead,
    ];

    /// Short stable name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            SchedulerKind::Eftf => "eftf",
            SchedulerKind::LatestFinishFirst => "lff",
            SchedulerKind::ProportionalShare => "prop",
            SchedulerKind::NoWorkahead => "none",
        }
    }
}

/// Distributes `capacity_mbps` across `streams` at time `now` according to
/// `kind`, writing each stream's rate. All streams must be unfinished and
/// advanced to `now`. Returns the unused (idle) bandwidth.
///
/// ```
/// use sct_transmission::{allocate, SchedulerKind, Stream, StreamId};
/// use sct_media::{ClientProfile, VideoId};
/// use sct_simcore::SimTime;
/// let client = ClientProfile::new(1e6, 30.0);
/// let mut streams = vec![
///     Stream::new(StreamId(1), VideoId(0), 30.0, 3.0, client, SimTime::ZERO),
///     Stream::new(StreamId(2), VideoId(1), 600.0, 3.0, client, SimTime::ZERO),
/// ];
/// let idle = allocate(SchedulerKind::Eftf, 40.0, SimTime::ZERO, &mut streams);
/// // Minimum flow 3 + 3; EFTF gives the earliest finisher the spare, up
/// // to its 30 Mb/s receive cap; the rest goes to the other stream.
/// assert_eq!(streams[0].rate(), 30.0);
/// assert_eq!(streams[1].rate(), 10.0);
/// assert_eq!(idle, 0.0);
/// ```
///
/// Panics in debug builds if the minimum-flow admission invariant
/// (Σ `b_view` ≤ capacity) is violated — admission control must prevent
/// that before calling.
pub fn allocate(
    kind: SchedulerKind,
    capacity_mbps: f64,
    now: SimTime,
    streams: &mut [Stream],
) -> f64 {
    // Phase 1: minimum flow. Paused streams consume nothing, so their
    // guaranteed minimum is zero — a paused stream with a full buffer
    // cannot absorb even the view rate (interactivity extension; in the
    // paper's regime nothing is ever paused and every stream gets b_view).
    let mut used = 0.0;
    for s in streams.iter_mut() {
        debug_assert!(!s.is_finished(), "finished streams must be reaped first");
        let min = if s.is_paused() { 0.0 } else { s.view_rate };
        s.set_rate(min);
        used += min;
    }
    let mut spare = capacity_mbps - used;
    debug_assert!(
        spare >= -EPS_MB,
        "admission let through too many streams: used {used} of {capacity_mbps}"
    );
    if spare <= EPS_MB {
        return spare.max(0.0);
    }

    // Phase 2: distribute spare among streams that can absorb workahead.
    let mut candidates: Vec<usize> = (0..streams.len())
        .filter(|&i| !streams[i].buffer_full(now))
        .collect();

    match kind {
        SchedulerKind::NoWorkahead => {}
        SchedulerKind::Eftf | SchedulerKind::LatestFinishFirst => {
            candidates.sort_by(|&a, &b| {
                let fa = streams[a].projected_finish(now);
                let fb = streams[b].projected_finish(now);
                let ord = fa.cmp(&fb).then(streams[a].id.cmp(&streams[b].id));
                if kind == SchedulerKind::LatestFinishFirst {
                    ord.reverse()
                } else {
                    ord
                }
            });
            for &i in &candidates {
                if spare <= EPS_MB {
                    break;
                }
                let s = &mut streams[i];
                let headroom = s.client.receive_cap_mbps - s.rate();
                let give = spare.min(headroom).max(0.0);
                s.set_rate(s.rate() + give);
                spare -= give;
            }
        }
        SchedulerKind::ProportionalShare => {
            spare -= waterfill(spare, now, streams, &candidates);
        }
    }
    spare.max(0.0)
}

/// Reusable scratch for [`allocate_incremental`]: the cached
/// spare-distribution order from the previous allocation plus
/// struct-of-arrays columns for the current one.
///
/// Each server engine owns one of these. The cached order makes repeated
/// allocations on a slowly-changing stream population cheap: most events
/// add, remove, pause, or fill exactly one stream, which perturbs the
/// EFTF/LFF candidate order by at most one entry — the repair pass
/// verifies the survivors are still sorted and splices the newcomers in,
/// falling back to a full sort only when the relative order actually
/// changed. The SoA columns (`finish`, `candidate`) are gathered in one
/// linear pass so the ordering checks never chase back into the wide
/// `Stream` structs.
#[derive(Clone, Debug, Default)]
pub struct AllocScratch {
    /// Previous allocation's spare order: `(index, id)` sorted by the
    /// scheduler key. The id doubles as the validity token — an entry
    /// counts only while the same stream still sits at the same index.
    order: Vec<(u32, StreamId)>,
    /// Order under (re)construction; kept to reuse its allocation.
    next_order: Vec<(u32, StreamId)>,
    /// Per-index scheduler key (`projected_finish`) for this call.
    finish: Vec<SimTime>,
    /// Per-index candidacy (`!buffer_full`) for this call.
    candidate: Vec<bool>,
    /// Per-index marker: already present in the surviving order.
    in_order: Vec<bool>,
    /// Candidate index list reused by the waterfill path.
    indices: Vec<usize>,
}

/// Strict "allocates before" test under `kind`'s spare order. Keys are
/// unique (the id breaks finish-time ties), so this is a total order.
#[inline]
fn key_less(kind: SchedulerKind, a: (SimTime, StreamId), b: (SimTime, StreamId)) -> bool {
    let ord = a.0.cmp(&b.0).then(a.1.cmp(&b.1));
    match kind {
        SchedulerKind::Eftf => ord == Ordering::Less,
        SchedulerKind::LatestFinishFirst => ord == Ordering::Greater,
        _ => unreachable!("only the ordered schedulers maintain a spare order"),
    }
}

/// Rebuilds `scratch.order` to the sorted candidate list for this call,
/// reusing the previous order when its relative ordering still holds.
fn repair_order(kind: SchedulerKind, now: SimTime, streams: &[Stream], scratch: &mut AllocScratch) {
    let n = streams.len();
    let AllocScratch {
        order,
        next_order,
        finish,
        candidate,
        in_order,
        ..
    } = scratch;
    finish.clear();
    candidate.clear();
    in_order.clear();
    for s in streams {
        finish.push(s.projected_finish(now));
        candidate.push(!s.buffer_full(now));
        in_order.push(false);
    }
    // Filter the cached order down to entries that still name the same
    // live stream and are still candidates, verifying the survivors
    // remain sorted under the fresh keys.
    next_order.clear();
    let mut survivors_sorted = true;
    for &(iu, id) in order.iter() {
        let i = iu as usize;
        if i >= n || streams[i].id != id || !candidate[i] {
            continue;
        }
        if let Some(&(last, last_id)) = next_order.last() {
            if !key_less(kind, (finish[last as usize], last_id), (finish[i], id)) {
                survivors_sorted = false;
                break;
            }
        }
        next_order.push((iu, id));
        in_order[i] = true;
    }
    if survivors_sorted {
        // Splice in streams missing from the cached order: new arrivals,
        // index moves from swap_remove, buffers that drained back below
        // full. Usually zero or one per event.
        for i in 0..n {
            if candidate[i] && !in_order[i] {
                let k = (finish[i], streams[i].id);
                let pos = next_order
                    .partition_point(|&(j, jid)| key_less(kind, (finish[j as usize], jid), k));
                next_order.insert(pos, (i as u32, streams[i].id));
            }
        }
    } else {
        // The surviving candidates' relative order changed — the one case
        // where incremental repair must fall back to a full sort.
        next_order.clear();
        next_order.extend(
            (0..n)
                .filter(|&i| candidate[i])
                .map(|i| (i as u32, streams[i].id)),
        );
        next_order.sort_unstable_by(|&(a, aid), &(b, bid)| {
            let ord = finish[a as usize]
                .cmp(&finish[b as usize])
                .then(aid.cmp(&bid));
            if kind == SchedulerKind::LatestFinishFirst {
                ord.reverse()
            } else {
                ord
            }
        });
    }
    std::mem::swap(order, next_order);
}

/// [`allocate`], but with incremental repair of the spare-distribution
/// order across calls via `scratch`. Produces **bit-identical** rates to
/// the full allocator: phase 1 is the same arithmetic in the same
/// iteration order, and phase 2 walks the same uniquely-sorted candidate
/// sequence — the only thing cached is *how that sequence is obtained*.
/// Debug builds cross-check every call against [`allocate`] on a clone.
pub fn allocate_incremental(
    kind: SchedulerKind,
    capacity_mbps: f64,
    now: SimTime,
    streams: &mut [Stream],
    scratch: &mut AllocScratch,
) -> f64 {
    let idle = allocate_incremental_inner(kind, capacity_mbps, now, streams, scratch);
    #[cfg(debug_assertions)]
    {
        let mut full: Vec<Stream> = streams.to_vec();
        let idle_full = allocate(kind, capacity_mbps, now, &mut full);
        debug_assert!(
            idle.to_bits() == idle_full.to_bits(),
            "incremental repair diverged from the full allocator: idle {idle} vs {idle_full}"
        );
        for (inc, reference) in streams.iter().zip(&full) {
            debug_assert!(
                inc.rate().to_bits() == reference.rate().to_bits(),
                "incremental repair diverged from the full allocator on stream {:?}: {} vs {}",
                inc.id,
                inc.rate(),
                reference.rate()
            );
        }
    }
    idle
}

fn allocate_incremental_inner(
    kind: SchedulerKind,
    capacity_mbps: f64,
    now: SimTime,
    streams: &mut [Stream],
    scratch: &mut AllocScratch,
) -> f64 {
    // Phase 1: minimum flow — identical to `allocate`.
    let mut used = 0.0;
    for s in streams.iter_mut() {
        debug_assert!(!s.is_finished(), "finished streams must be reaped first");
        let min = if s.is_paused() { 0.0 } else { s.view_rate };
        s.set_rate(min);
        used += min;
    }
    let mut spare = capacity_mbps - used;
    debug_assert!(
        spare >= -EPS_MB,
        "admission let through too many streams: used {used} of {capacity_mbps}"
    );
    if spare <= EPS_MB {
        // The cached order may be stale now, but it is self-validating
        // (id check + sorted check), so leaving it is safe.
        return spare.max(0.0);
    }

    match kind {
        SchedulerKind::NoWorkahead => {}
        SchedulerKind::Eftf | SchedulerKind::LatestFinishFirst => {
            repair_order(kind, now, streams, scratch);
            for &(i, _) in &scratch.order {
                if spare <= EPS_MB {
                    break;
                }
                let s = &mut streams[i as usize];
                let headroom = s.client.receive_cap_mbps - s.rate();
                let give = spare.min(headroom).max(0.0);
                s.set_rate(s.rate() + give);
                spare -= give;
            }
        }
        SchedulerKind::ProportionalShare => {
            // The waterfill sorts internally by (headroom, index) — its
            // result is independent of candidate input order, so index
            // order (what `allocate` passes) needs no repair machinery.
            scratch.indices.clear();
            for (i, s) in streams.iter().enumerate() {
                if !s.buffer_full(now) {
                    scratch.indices.push(i);
                }
            }
            spare -= waterfill(spare, now, streams, &scratch.indices);
        }
    }
    spare.max(0.0)
}

/// Exact waterfill: finds the common extra rate `r` such that
/// `Σ min(headroom_i, r) = spare` (or hands out all headroom if spare
/// exceeds it). Returns the amount distributed.
fn waterfill(spare: f64, _now: SimTime, streams: &mut [Stream], candidates: &[usize]) -> f64 {
    if candidates.is_empty() || spare <= EPS_MB {
        return 0.0;
    }
    let mut headrooms: Vec<(usize, f64)> = candidates
        .iter()
        .map(|&i| {
            let s = &streams[i];
            (i, (s.client.receive_cap_mbps - s.rate()).max(0.0))
        })
        .collect();
    headrooms.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));

    let total_headroom: f64 = headrooms.iter().map(|&(_, h)| h).sum();
    if total_headroom <= spare {
        // Everyone saturates.
        for &(i, h) in &headrooms {
            let s = &mut streams[i];
            s.set_rate(s.rate() + h);
        }
        return total_headroom;
    }

    // Find the water level. Processing in ascending headroom order: once a
    // stream's headroom is below the provisional even share, it saturates
    // and the rest re-split.
    let mut remaining = spare;
    let mut left = headrooms.len();
    let mut level = 0.0;
    for &(_, h) in &headrooms {
        let share = remaining / left as f64;
        if h <= share {
            remaining -= h;
            left -= 1;
        } else {
            level = share;
            break;
        }
    }
    let mut given = 0.0;
    for &(i, h) in &headrooms {
        // Saturated streams (h <= level) take exactly their headroom;
        // the rest take the common water level.
        let extra = h.min(level);
        let s = &mut streams[i];
        s.set_rate(s.rate() + extra);
        given += extra;
    }
    given
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::{Stream, StreamId};
    use sct_media::{ClientProfile, VideoId};

    const NOW: SimTime = SimTime::ZERO;

    /// A stream with `remaining` Mb left, buffer capacity `cap`, receive
    /// cap `recv`, view rate 3.
    fn mk(id: u64, size: f64, cap: f64, recv: f64) -> Stream {
        Stream::new(
            StreamId(id),
            VideoId(id as u32),
            size,
            3.0,
            ClientProfile::new(cap, recv),
            NOW,
        )
    }

    fn rates(streams: &[Stream]) -> Vec<f64> {
        streams.iter().map(|s| s.rate()).collect()
    }

    #[test]
    fn min_flow_always_granted() {
        let mut streams = vec![mk(1, 300.0, 0.0, 30.0), mk(2, 600.0, 0.0, 30.0)];
        for kind in SchedulerKind::ALL {
            let idle = allocate(kind, 100.0, NOW, &mut streams);
            assert_eq!(rates(&streams), vec![3.0, 3.0], "{kind:?}");
            assert!((idle - 94.0).abs() < 1e-9, "{kind:?}: idle {idle}");
        }
    }

    #[test]
    fn eftf_favors_earliest_finish() {
        // Stream 1 has 30 Mb left (finish in 10 s at b_view), stream 2 has
        // 600 Mb (200 s). Both have big buffers and 30 Mb/s caps.
        let mut streams = vec![mk(1, 30.0, 1e6, 30.0), mk(2, 600.0, 1e6, 30.0)];
        let idle = allocate(SchedulerKind::Eftf, 40.0, NOW, &mut streams);
        // min flow: 3+3; spare 34 → stream 1 up to 30, stream 2 gets 7.
        assert_eq!(rates(&streams), vec![30.0, 10.0]);
        assert_eq!(idle, 0.0);
    }

    #[test]
    fn lff_mirrors_eftf() {
        let mut streams = vec![mk(1, 30.0, 1e6, 30.0), mk(2, 600.0, 1e6, 30.0)];
        allocate(SchedulerKind::LatestFinishFirst, 40.0, NOW, &mut streams);
        assert_eq!(rates(&streams), vec![10.0, 30.0]);
    }

    #[test]
    fn full_buffers_get_only_view_rate() {
        // Zero staging: workahead impossible even with spare capacity.
        let mut streams = vec![mk(1, 300.0, 0.0, 30.0), mk(2, 300.0, 1e6, 30.0)];
        let idle = allocate(SchedulerKind::Eftf, 100.0, NOW, &mut streams);
        assert_eq!(streams[0].rate(), 3.0);
        assert_eq!(streams[1].rate(), 30.0);
        assert!((idle - 67.0).abs() < 1e-9);
    }

    #[test]
    fn receive_cap_limits_workahead() {
        let mut streams = vec![mk(1, 300.0, 1e6, 5.0)];
        let idle = allocate(SchedulerKind::Eftf, 100.0, NOW, &mut streams);
        assert_eq!(streams[0].rate(), 5.0);
        assert!((idle - 95.0).abs() < 1e-9);
    }

    #[test]
    fn no_workahead_ignores_spare() {
        let mut streams = vec![mk(1, 300.0, 1e6, 30.0), mk(2, 300.0, 1e6, 30.0)];
        let idle = allocate(SchedulerKind::NoWorkahead, 100.0, NOW, &mut streams);
        assert_eq!(rates(&streams), vec![3.0, 3.0]);
        assert!((idle - 94.0).abs() < 1e-9);
    }

    #[test]
    fn proportional_share_splits_evenly() {
        let mut streams = vec![
            mk(1, 300.0, 1e6, 30.0),
            mk(2, 600.0, 1e6, 30.0),
            mk(3, 900.0, 1e6, 30.0),
        ];
        let idle = allocate(SchedulerKind::ProportionalShare, 30.0, NOW, &mut streams);
        // 9 min-flow, spare 21 → 7 extra each.
        assert_eq!(rates(&streams), vec![10.0, 10.0, 10.0]);
        assert!(idle.abs() < 1e-9);
    }

    #[test]
    fn proportional_share_respects_uneven_caps() {
        let mut streams = vec![
            mk(1, 300.0, 1e6, 5.0),  // headroom 2
            mk(2, 300.0, 1e6, 30.0), // headroom 27
            mk(3, 300.0, 1e6, 30.0), // headroom 27
        ];
        let idle = allocate(SchedulerKind::ProportionalShare, 31.0, NOW, &mut streams);
        // min-flow 9, spare 22: stream 1 saturates at +2, remaining 20
        // splits 10/10.
        assert_eq!(rates(&streams), vec![5.0, 13.0, 13.0]);
        assert!(idle.abs() < 1e-9);
    }

    #[test]
    fn proportional_share_with_excess_spare_saturates_everyone() {
        let mut streams = vec![mk(1, 300.0, 1e6, 10.0), mk(2, 300.0, 1e6, 10.0)];
        let idle = allocate(SchedulerKind::ProportionalShare, 100.0, NOW, &mut streams);
        assert_eq!(rates(&streams), vec![10.0, 10.0]);
        assert!((idle - 80.0).abs() < 1e-9);
    }

    #[test]
    fn allocation_conserves_capacity() {
        for kind in SchedulerKind::ALL {
            let mut streams: Vec<Stream> = (0..20)
                .map(|i| mk(i, 100.0 + 37.0 * i as f64, (i % 3) as f64 * 500.0, 30.0))
                .collect();
            let idle = allocate(kind, 100.0, NOW, &mut streams);
            let total: f64 = streams.iter().map(|s| s.rate()).sum();
            assert!(
                (total + idle - 100.0).abs() < 1e-6,
                "{kind:?}: {total} + {idle} != 100"
            );
            for s in &streams {
                assert!(s.rate() >= s.view_rate - 1e-12, "{kind:?} broke min-flow");
                assert!(
                    s.rate() <= s.client.receive_cap_mbps + 1e-12,
                    "{kind:?} broke receive cap"
                );
            }
        }
    }

    #[test]
    fn empty_server_is_all_idle() {
        let mut streams: Vec<Stream> = Vec::new();
        for kind in SchedulerKind::ALL {
            assert_eq!(allocate(kind, 100.0, NOW, &mut streams), 100.0);
        }
    }

    #[test]
    fn eftf_tie_break_is_by_id() {
        // Identical projected finishes: lower id wins the spare.
        let mut streams = vec![mk(2, 300.0, 1e6, 30.0), mk(1, 300.0, 1e6, 30.0)];
        allocate(SchedulerKind::Eftf, 33.0, NOW, &mut streams);
        // spare = 27 → id 1 takes it all (up to cap).
        assert_eq!(streams[1].rate(), 30.0);
        assert_eq!(streams[0].rate(), 3.0);
    }

    #[test]
    fn scheduler_names_are_stable() {
        assert_eq!(SchedulerKind::Eftf.name(), "eftf");
        assert_eq!(SchedulerKind::NoWorkahead.name(), "none");
    }

    mod waterfill_props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Conservation and cap-respect of the waterfill under random
            /// headrooms: everything handed out is accounted for
            /// (`given + idle == spare`), nobody exceeds their receive
            /// cap, and the fill is exact — `given == min(spare, Σ h_i)`.
            #[test]
            fn waterfill_conserves_and_respects_caps(
                spare in 0.0f64..200.0,
                caps in proptest::collection::vec(0.0f64..50.0, 1..12),
            ) {
                let mut streams: Vec<Stream> = caps
                    .iter()
                    .enumerate()
                    .map(|(i, &h)| mk(i as u64, 300.0, 1e9, 3.0 + h))
                    .collect();
                // Start from the minimum flow, as `allocate` does.
                for s in &mut streams {
                    s.set_rate(s.view_rate);
                }
                let candidates: Vec<usize> = (0..streams.len()).collect();
                let given = waterfill(spare, NOW, &mut streams, &candidates);
                let total_headroom: f64 = caps.iter().sum();

                // Conservation: the distributed total matches the per-
                // stream rate increases, and given + idle == spare.
                let distributed: f64 =
                    streams.iter().map(|s| s.rate() - s.view_rate).sum();
                prop_assert!((distributed - given).abs() < 1e-9);
                let idle = spare - given;
                prop_assert!(idle >= -1e-9, "gave out more than spare");
                prop_assert!(
                    (given - spare.min(total_headroom)).abs() < 1e-6,
                    "inexact fill: given {given}, spare {spare}, \
                     headroom {total_headroom}"
                );
                for (s, &h) in streams.iter().zip(&caps) {
                    prop_assert!(
                        s.rate() <= 3.0 + h + 1e-9,
                        "receive cap violated: {} > {}",
                        s.rate(),
                        3.0 + h
                    );
                    prop_assert!(s.rate() >= 3.0 - 1e-12, "min flow violated");
                }
            }
        }
    }
}
