//! The semi-continuous transmission engine (the paper's core mechanism).
//!
//! In *continuous* transmission a video is streamed at exactly the view
//! bandwidth `b_view` for its whole duration. In **semi-continuous**
//! transmission (§3) the server may run *ahead* of the playback point,
//! parking data in the client's staging buffer; streams that finish early
//! free server bandwidth for later arrivals, smoothing fluctuations in the
//! Poisson arrival process.
//!
//! The paper restricts attention to **minimum-flow** algorithms: every
//! unfinished stream always receives at least `b_view`, which makes the
//! admission decision trivial (a server can hold `⌊b_server/b_view⌋`
//! unfinished streams) and guarantees starvation-free playback. Spare
//! bandwidth is distributed by **EFTF** — Earliest Finishing Time First
//! (Fig. 2) — which is optimal among minimum-flow algorithms when client
//! receive bandwidth is unbounded (Theorem 1; see the property tests in
//! `tests/` for an empirical check).
//!
//! * [`stream`] — the state of one active stream: bytes sent, playback
//!   position, staging-buffer occupancy, projected finish time.
//! * [`alloc`] — bandwidth allocation policies ([`SchedulerKind`]): EFTF
//!   plus the ablation baselines (latest-finish-first, proportional share,
//!   and no-workahead = classic continuous transmission).
//! * [`engine`] — [`ServerEngine`]: one data server advancing its streams
//!   between events, predicting its next event (completion / buffer-full),
//!   and accounting transmitted megabits for the utilization metric.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alloc;
pub mod engine;
pub mod stream;

pub use alloc::{allocate, allocate_incremental, AllocScratch, SchedulerKind};
pub use engine::{EngineEvent, ServerEngine};
pub use stream::{Stream, StreamId};

/// Tolerance for data-volume comparisons, in megabits (≈ one bit).
pub const EPS_MB: f64 = 1e-6;

/// Tolerance for time comparisons, in seconds.
pub const EPS_SECS: f64 = 1e-9;
