//! Property tests for the transmission engine: allocation invariants over
//! arbitrary stream populations, and a random-walk soak of a full server
//! engine with invariant checking at every event.

use proptest::prelude::*;
use sct_cluster::ServerId;
use sct_media::{ClientProfile, VideoId};
use sct_simcore::{Rng, SimTime};
use sct_transmission::{
    allocate, allocate_incremental, AllocScratch, SchedulerKind, ServerEngine, Stream, StreamId,
    EPS_MB,
};

/// Description of one synthetic stream for the allocator properties.
#[derive(Clone, Debug)]
struct StreamSpec {
    size_mb: f64,
    staging_cap: f64,
    receive_cap_over_view: f64,
    progress: f64,
    paused: bool,
}

fn stream_spec() -> impl Strategy<Value = StreamSpec> {
    (
        30.0f64..3000.0,
        prop_oneof![Just(0.0), 1.0f64..2000.0, Just(f64::INFINITY)],
        1.0f64..20.0,
        0.0f64..0.95,
        prop::bool::ANY,
    )
        .prop_map(
            |(size_mb, staging_cap, receive_cap_over_view, progress, paused)| StreamSpec {
                size_mb,
                staging_cap,
                receive_cap_over_view,
                progress,
                paused,
            },
        )
}

const VIEW: f64 = 3.0;

/// Materialises the specs into streams advanced to `at`, with `progress`
/// of each object already sent (at the view rate, so the playhead and the
/// data agree).
fn build_streams(specs: &[StreamSpec], at: SimTime) -> Vec<Stream> {
    let mut streams: Vec<Stream> = specs
        .iter()
        .enumerate()
        .map(|(i, sp)| {
            Stream::new(
                StreamId(i as u64),
                VideoId(i as u32),
                sp.size_mb,
                VIEW,
                ClientProfile::new(sp.staging_cap, sp.receive_cap_over_view * VIEW),
                SimTime::ZERO,
            )
        })
        .collect();
    // March every stream to `at` at the view rate; limit progress so no
    // stream is finished.
    allocate(SchedulerKind::NoWorkahead, 1e9, SimTime::ZERO, &mut streams);
    for (s, sp) in streams.iter_mut().zip(specs) {
        let t = (sp.progress * sp.size_mb / VIEW).min(at.as_secs());
        s.advance_to(SimTime::from_secs(t));
        s.advance_to(at); // rate may still be set; zero the gap below
    }
    streams
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// For every scheduler: capacity conservation, minimum flow for
    /// playing streams, receive caps respected, and full buffers excluded
    /// from workahead.
    #[test]
    fn allocation_invariants(
        specs in prop::collection::vec(stream_spec(), 1..40),
        spare_slots in 0.0f64..40.0,
    ) {
        // Build unpaused first (Stream::new starts playing), then pause.
        let now = SimTime::from_secs(1.0);
        let mut base = build_streams(&specs, now);
        for (s, sp) in base.iter_mut().zip(&specs) {
            if sp.paused {
                s.pause(now);
            }
        }
        let committed: f64 = base.iter().map(|_| VIEW).sum();
        let capacity = committed + spare_slots * VIEW;
        for kind in SchedulerKind::ALL {
            let mut streams = base.clone();
            let idle = allocate(kind, capacity, now, &mut streams);
            let total: f64 = streams.iter().map(|s| s.rate()).sum();
            let n = streams.len() as f64;
            prop_assert!(
                total + idle <= capacity + EPS_MB * (n + 1.0),
                "{kind:?} overcommitted: {total} + {idle} > {capacity}"
            );
            for s in &streams {
                if s.is_paused() {
                    // Paused streams have no minimum; and a paused+full
                    // stream must receive nothing.
                    if s.buffer_full(now) {
                        prop_assert!(s.rate() <= EPS_MB);
                    }
                } else {
                    prop_assert!(
                        s.rate() >= VIEW - EPS_MB,
                        "{kind:?} broke min-flow: rate {}",
                        s.rate()
                    );
                }
                prop_assert!(
                    s.rate() <= s.client.receive_cap_mbps + EPS_MB,
                    "{kind:?} broke receive cap"
                );
                if s.buffer_full(now) && !s.is_paused() {
                    prop_assert!(
                        s.rate() <= VIEW + EPS_MB,
                        "{kind:?} gave workahead to a full buffer"
                    );
                }
            }
            // EFTF and LFF allocate greedily: if any eligible stream still
            // has headroom, no bandwidth may sit idle.
            if idle > EPS_MB * (n + 1.0)
                && matches!(kind, SchedulerKind::Eftf | SchedulerKind::LatestFinishFirst)
            {
                for s in &streams {
                    if !s.buffer_full(now) {
                        prop_assert!(
                            s.rate() >= s.client.receive_cap_mbps - EPS_MB * (n + 1.0),
                            "{kind:?} left {idle} idle while a stream had headroom"
                        );
                    }
                }
            }
        }
    }

    /// Random-walk soak: a server takes random admissions at random times
    /// and processes its own events; every step must satisfy the engine
    /// invariants, and total transmitted data must equal the sum of stream
    /// progress.
    #[test]
    fn engine_random_walk(seed in any::<u64>(), slots in 2usize..20) {
        let mut rng = Rng::new(seed);
        let capacity = slots as f64 * VIEW;
        let mut engine = ServerEngine::new(ServerId(0), capacity, SchedulerKind::Eftf);
        let mut clock = SimTime::ZERO;
        let mut next_id = 0u64;
        let mut reaped_mb = 0.0f64;
        for _ in 0..60 {
            let arrival = clock + rng.range_f64(0.0, 120.0);
            // Drain engine events up to the arrival.
            while let Some((when, _)) = engine.next_event_after(clock) {
                if when > arrival {
                    break;
                }
                engine.advance_to(when);
                reaped_mb += engine
                    .reap_finished(when)
                    .iter()
                    .map(|s| s.sent_mb())
                    .sum::<f64>();
                engine.reschedule(when);
                engine.check_invariants();
                clock = when;
            }
            engine.advance_to(arrival);
            reaped_mb += engine
                .reap_finished(arrival)
                .iter()
                .map(|s| s.sent_mb())
                .sum::<f64>();
            clock = arrival;
            if engine.can_admit(VIEW) {
                let size = rng.range_f64(30.0, 600.0);
                let cap = if rng.chance(0.3) {
                    0.0
                } else {
                    rng.range_f64(10.0, 500.0)
                };
                engine.admit(
                    Stream::new(
                        StreamId(next_id),
                        VideoId(next_id as u32),
                        size,
                        VIEW,
                        ClientProfile::new(cap, 30.0),
                        arrival,
                    ),
                    arrival,
                );
                next_id += 1;
            } else {
                engine.reschedule(arrival);
            }
            engine.check_invariants();
        }
        // Conservation: transmitted equals reaped plus in-flight progress.
        let in_flight: f64 = engine.streams().iter().map(|s| s.sent_mb()).sum();
        prop_assert!(
            (engine.transmitted_mb() - (reaped_mb + in_flight)).abs()
                < 1e-6 * (1.0 + engine.transmitted_mb()),
            "conservation violated: {} vs {} + {}",
            engine.transmitted_mb(),
            reaped_mb,
            in_flight
        );
    }

    /// Incremental repair vs the full allocator: a random event walk
    /// (arrivals, departures, pauses, resumes, time advances) over a
    /// persistent stream population, with ONE scratch surviving the whole
    /// walk — so the cached spare order crosses every kind of mutation,
    /// including `swap_remove` index churn. After every event the
    /// incremental path must produce bit-identical rate vectors and idle
    /// bandwidth to the full sort, for every scheduler.
    #[test]
    fn incremental_allocation_matches_full(seed in any::<u64>()) {
        let mut rng = Rng::new(seed);
        let capacity = 32.0 * VIEW;
        for kind in SchedulerKind::ALL {
            let mut scratch = AllocScratch::default();
            let mut streams: Vec<Stream> = Vec::new();
            let mut now = SimTime::ZERO;
            let mut next_id = 0u64;
            for _ in 0..80 {
                // Advance sim time; reap anything that finished en route.
                now += rng.range_f64(0.0, 15.0);
                for s in streams.iter_mut() {
                    s.advance_to(now);
                }
                streams.retain(|s| !s.is_finished());
                // One random structural event.
                let committed: f64 = streams
                    .iter()
                    .filter(|s| !s.is_paused())
                    .map(|s| s.view_rate)
                    .sum();
                match rng.below(4) {
                    0 | 3 if committed + VIEW <= capacity && streams.len() < 30 => {
                        let staging = if rng.chance(0.3) {
                            0.0
                        } else {
                            rng.range_f64(1.0, 500.0)
                        };
                        streams.push(Stream::new(
                            StreamId(next_id),
                            VideoId(next_id as u32),
                            rng.range_f64(30.0, 600.0),
                            VIEW,
                            ClientProfile::new(staging, rng.range_f64(VIEW, 10.0 * VIEW)),
                            now,
                        ));
                        next_id += 1;
                    }
                    1 if !streams.is_empty() => {
                        // Same index churn as the engine's reap path.
                        let i = rng.below(streams.len());
                        streams.swap_remove(i);
                    }
                    2 if !streams.is_empty() => {
                        let i = rng.below(streams.len());
                        if streams[i].is_paused() {
                            streams[i].resume(now);
                        } else {
                            streams[i].pause(now);
                        }
                    }
                    _ => {}
                }
                let mut full = streams.clone();
                let idle_inc =
                    allocate_incremental(kind, capacity, now, &mut streams, &mut scratch);
                let idle_full = allocate(kind, capacity, now, &mut full);
                prop_assert_eq!(
                    idle_inc.to_bits(),
                    idle_full.to_bits(),
                    "{:?}: idle diverged: {} vs {}",
                    kind,
                    idle_inc,
                    idle_full
                );
                for (inc, reference) in streams.iter().zip(&full) {
                    prop_assert_eq!(
                        inc.rate().to_bits(),
                        reference.rate().to_bits(),
                        "{:?} stream {:?} diverged: {} vs {}",
                        kind,
                        inc.id,
                        inc.rate(),
                        reference.rate()
                    );
                }
            }
        }
    }

    /// Migration mid-flight preserves stream progress exactly: the same
    /// schedule split across two engines transmits the same data.
    #[test]
    fn migration_preserves_progress(
        size in 100.0f64..1000.0,
        split_frac in 0.1f64..0.9,
    ) {
        let client = ClientProfile::new(f64::INFINITY, 30.0);
        let mk = || Stream::new(StreamId(1), VideoId(0), size, VIEW, client, SimTime::ZERO);
        // Reference: one engine all the way.
        let mut a = ServerEngine::new(ServerId(0), 90.0, SchedulerKind::Eftf);
        a.admit(mk(), SimTime::ZERO);
        let done_ref = a.next_event_after(SimTime::ZERO).unwrap().0;
        // Split: move the stream at split_frac of its transfer.
        let mut b1 = ServerEngine::new(ServerId(0), 90.0, SchedulerKind::Eftf);
        let mut b2 = ServerEngine::new(ServerId(1), 90.0, SchedulerKind::Eftf);
        b1.admit(mk(), SimTime::ZERO);
        let mid = SimTime::from_secs(done_ref.as_secs() * split_frac);
        b1.advance_to(mid);
        let moved = b1.remove_stream(StreamId(1), mid).unwrap();
        b2.advance_to(mid);
        b2.admit(moved, mid);
        let done_split = b2.next_event_after(mid).unwrap().0;
        prop_assert!(
            (done_split.as_secs() - done_ref.as_secs()).abs() < 1e-6,
            "migration changed the completion time: {done_split} vs {done_ref}"
        );
    }
}
