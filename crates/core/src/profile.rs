//! Self-profiling of the event loop's wall-clock time.
//!
//! The ROADMAP's north star is a simulator "as fast as the hardware
//! allows", but until now the bench trajectory only tracked the oracle —
//! the production loop had no regression floor and no way to say *where*
//! a trial's wall time went. The [`LoopProfiler`] fixes that: a cheap,
//! always-on set of phase timers the loop charges as it works:
//!
//! * **dispatch** — one window per popped event, covering its handler
//!   and the state publication (everything below nests inside it);
//! * **alloc** — allocator recompute: engine integration
//!   (`advance_to`) plus schedule recomputation (`reschedule`);
//! * **wake** — wake-event queue pushes from the re-arm site;
//! * **probe** — the per-event [`crate::metrics::StateView`]
//!   publication (the `SimEvent` fan-out rides inside dispatch: timing
//!   each emission cost more than the fan-out itself).
//!
//! Timers use [`Instant`], which Linux services from the vDSO — a
//! monotonic clock read without a syscall — so the hot path stays
//! allocation- and syscall-free (the profiler is a fixed array of
//! [`Cell`] counters; interior mutability keeps `&self` access usable
//! alongside the loop's `&mut` engine borrows). The profiler observes
//! wall time only and feeds nothing back: simulated outcomes are
//! bit-identical with or without anyone reading the report.
//!
//! Surfaced as `sctsim run --profile` and recorded per scheduler ×
//! migration by the `bench_simloop` bench into `results/BENCH_sim.json`.

use serde::{Deserialize, Serialize};
use std::cell::Cell;
use std::time::Instant;

/// The loop phases the profiler distinguishes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase {
    /// Whole-event handler window (parent of the rest).
    Dispatch,
    /// Engine integration + schedule recompute.
    Alloc,
    /// Wake-queue pushes from the re-arm site.
    Wake,
    /// Per-event state publication to the attached probes.
    Probe,
    /// Sharded loop only: barrier work between runs — electing the next
    /// shard and recomputing the cross-shard horizon. Zero on the
    /// monolithic (`shards = 1`) fast path.
    Barrier,
}

const N_PHASES: usize = 5;

#[derive(Default)]
struct PhaseCell {
    nanos: Cell<u64>,
    calls: Cell<u64>,
}

/// Monotonic phase counters for one trial's event loop. Create with
/// [`LoopProfiler::new`] when the loop starts; reduce with
/// [`LoopProfiler::report`].
pub struct LoopProfiler {
    start: Instant,
    phases: [PhaseCell; N_PHASES],
}

impl Default for LoopProfiler {
    fn default() -> Self {
        Self::new()
    }
}

impl LoopProfiler {
    /// Starts the wall clock.
    pub fn new() -> Self {
        LoopProfiler {
            start: Instant::now(),
            phases: Default::default(),
        }
    }

    /// A phase-start timestamp (vDSO read, no syscall on Linux).
    #[inline]
    pub fn clock() -> Instant {
        Instant::now()
    }

    /// Charges the time since `since` to `phase`.
    #[inline]
    pub fn add(&self, phase: Phase, since: Instant) {
        let cell = &self.phases[phase as usize];
        cell.nanos
            .set(cell.nanos.get() + since.elapsed().as_nanos() as u64);
        cell.calls.set(cell.calls.get() + 1);
    }

    /// Charges the window `[start, end]` to `phase`. Lets adjacent phases
    /// share one boundary timestamp instead of each reading the clock
    /// twice — the hot loop's windows meet end-to-start, so every shared
    /// boundary saves a clock read per event.
    #[inline]
    pub fn add_between(&self, phase: Phase, start: Instant, end: Instant) {
        let cell = &self.phases[phase as usize];
        cell.nanos
            .set(cell.nanos.get() + end.duration_since(start).as_nanos() as u64);
        cell.calls.set(cell.calls.get() + 1);
    }

    /// Fans `event` out to every probe. Deliberately not timed: a clock
    /// pair per emission cost more than the fan-out itself on the hot
    /// path, so the fan-out is charged to the surrounding dispatch
    /// window and [`Phase::Probe`] covers the per-event state
    /// publication (where probes do their real work).
    #[inline]
    pub(crate) fn emit(
        &self,
        probes: &mut [&mut dyn crate::events::Probe],
        now: sct_simcore::SimTime,
        event: &crate::events::SimEvent,
    ) {
        let _ = self;
        crate::events::emit(probes, now, event);
    }

    /// Folds another profiler's phase counters into this one. The
    /// parallel epoch path gives each worker burst a fresh profiler
    /// (the cells are not `Sync`) and absorbs it into the owning
    /// shard's profiler after the join; wall time stays this profiler's
    /// own (absorbed work happened inside this profiler's lifetime).
    pub fn absorb(&self, other: &LoopProfiler) {
        for (a, b) in self.phases.iter().zip(&other.phases) {
            a.nanos.set(a.nanos.get() + b.nanos.get());
            a.calls.set(a.calls.get() + b.calls.get());
        }
    }

    /// Reduces the counters to a serialisable report. The event count is
    /// the number of dispatch windows (one per live event).
    pub fn report(&self) -> LoopProfile {
        let wall_secs = self.start.elapsed().as_secs_f64();
        let stat = |p: Phase| {
            let cell = &self.phases[p as usize];
            PhaseStat {
                secs: cell.nanos.get() as f64 * 1e-9,
                calls: cell.calls.get(),
            }
        };
        let dispatch = stat(Phase::Dispatch);
        let events = dispatch.calls;
        LoopProfile {
            wall_secs,
            events,
            events_per_sec: if wall_secs > 0.0 {
                events as f64 / wall_secs
            } else {
                0.0
            },
            dispatch,
            alloc: stat(Phase::Alloc),
            wake: stat(Phase::Wake),
            probe: stat(Phase::Probe),
            barrier: stat(Phase::Barrier),
        }
    }
}

/// One phase's accumulated wall time and entry count.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct PhaseStat {
    /// Total seconds spent in the phase.
    pub secs: f64,
    /// Times the phase was entered.
    pub calls: u64,
}

/// A trial's wall-clock decomposition (see module docs for the phases).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct LoopProfile {
    /// Wall time from loop start to report, seconds.
    pub wall_secs: f64,
    /// Live events dispatched.
    pub events: u64,
    /// Throughput: `events / wall_secs`.
    pub events_per_sec: f64,
    /// Whole-handler windows (alloc/wake/probe nest inside).
    pub dispatch: PhaseStat,
    /// Engine integration + schedule recompute.
    pub alloc: PhaseStat,
    /// Wake-queue pushes.
    pub wake: PhaseStat,
    /// Per-event state publication to the attached probes.
    pub probe: PhaseStat,
    /// Sharded-loop barrier work (shard election + horizon recompute);
    /// zero when `shards = 1`.
    pub barrier: PhaseStat,
}

impl LoopProfile {
    /// Handler time not explained by the instrumented sub-phases: pure
    /// dispatch logic (event decode, counters, branch selection).
    /// Barrier time sits *between* dispatch windows and is excluded.
    pub fn self_secs(&self) -> f64 {
        (self.dispatch.secs - self.alloc.secs - self.wake.secs - self.probe.secs).max(0.0)
    }

    /// Reduces per-shard profiles to one trial-wide profile: phase times
    /// and counts sum (the shards multiplex one thread, so their busy
    /// times are disjoint) while the wall clock — every shard profiler
    /// spans the whole loop — is the maximum.
    pub fn merge(shards: &[LoopProfile]) -> LoopProfile {
        let add = |f: fn(&LoopProfile) -> PhaseStat| PhaseStat {
            secs: shards.iter().map(|p| f(p).secs).sum(),
            calls: shards.iter().map(|p| f(p).calls).sum(),
        };
        let wall_secs = shards.iter().map(|p| p.wall_secs).fold(0.0, f64::max);
        let events: u64 = shards.iter().map(|p| p.events).sum();
        LoopProfile {
            wall_secs,
            events,
            events_per_sec: if wall_secs > 0.0 {
                events as f64 / wall_secs
            } else {
                0.0
            },
            dispatch: add(|p| p.dispatch),
            alloc: add(|p| p.alloc),
            wake: add(|p| p.wake),
            probe: add(|p| p.probe),
            barrier: add(|p| p.barrier),
        }
    }

    /// Converts to the `sct-analysis` wire form, for attaching to a
    /// [`sct_analysis::MetricsSnapshot`] (`sctsim report` renders it).
    pub fn snapshot(&self) -> sct_analysis::snapshot::ProfileSnapshot {
        let phase = |name: &str, s: &PhaseStat| sct_analysis::snapshot::ProfilePhase {
            name: name.to_string(),
            secs: s.secs,
            calls: s.calls,
        };
        sct_analysis::snapshot::ProfileSnapshot {
            wall_secs: self.wall_secs,
            events: self.events,
            events_per_sec: self.events_per_sec,
            phases: vec![
                phase("dispatch", &self.dispatch),
                phase("alloc", &self.alloc),
                phase("wake", &self.wake),
                phase("probe", &self.probe),
                phase("barrier", &self.barrier),
            ],
        }
    }

    /// A fixed-width text rendering for terminal output.
    pub fn to_text(&self) -> String {
        let mut out = format!(
            "loop profile: {} events in {:.3} s ({:.0} events/s)\n",
            self.events, self.wall_secs, self.events_per_sec
        );
        let row = |name: &str, s: &PhaseStat| {
            format!("  {name:<10} {:>10.6} s  {:>9} calls\n", s.secs, s.calls)
        };
        out.push_str(&row("dispatch", &self.dispatch));
        out.push_str(&row("alloc", &self.alloc));
        out.push_str(&row("wake", &self.wake));
        out.push_str(&row("probe", &self.probe));
        if self.barrier.calls > 0 {
            out.push_str(&row("barrier", &self.barrier));
        }
        out.push_str(&format!("  {:<10} {:>10.6} s\n", "self", self.self_secs()));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phases_accumulate_time_and_calls() {
        let prof = LoopProfiler::new();
        for _ in 0..3 {
            let t0 = LoopProfiler::clock();
            std::hint::black_box(4u64 + 4);
            prof.add(Phase::Dispatch, t0);
        }
        let t0 = LoopProfiler::clock();
        prof.add(Phase::Alloc, t0);
        let report = prof.report();
        assert_eq!(report.events, 3);
        assert_eq!(report.dispatch.calls, 3);
        assert_eq!(report.alloc.calls, 1);
        assert_eq!(report.wake.calls, 0);
        assert!(report.wall_secs >= report.dispatch.secs);
        assert!(report.events_per_sec > 0.0);
    }

    #[test]
    fn self_time_never_goes_negative() {
        let profile = LoopProfile {
            wall_secs: 1.0,
            events: 10,
            events_per_sec: 10.0,
            dispatch: PhaseStat {
                secs: 0.1,
                calls: 10,
            },
            alloc: PhaseStat {
                secs: 0.2,
                calls: 10,
            },
            wake: PhaseStat {
                secs: 0.0,
                calls: 0,
            },
            probe: PhaseStat {
                secs: 0.0,
                calls: 0,
            },
            barrier: PhaseStat {
                secs: 0.0,
                calls: 0,
            },
        };
        assert_eq!(profile.self_secs(), 0.0);
    }

    #[test]
    fn merge_sums_phases_and_keeps_max_wall() {
        let stat = |secs: f64, calls: u64| PhaseStat { secs, calls };
        let a = LoopProfile {
            wall_secs: 2.0,
            events: 10,
            events_per_sec: 5.0,
            dispatch: stat(0.5, 10),
            alloc: stat(0.2, 10),
            wake: stat(0.1, 10),
            probe: stat(0.05, 10),
            barrier: stat(0.01, 4),
        };
        let b = LoopProfile {
            wall_secs: 1.5,
            events: 6,
            events_per_sec: 4.0,
            dispatch: stat(0.25, 6),
            alloc: stat(0.1, 6),
            wake: stat(0.05, 6),
            probe: stat(0.02, 6),
            barrier: stat(0.02, 3),
        };
        let m = LoopProfile::merge(&[a, b]);
        assert_eq!(m.wall_secs, 2.0);
        assert_eq!(m.events, 16);
        assert_eq!(m.events_per_sec, 8.0);
        assert_eq!(m.dispatch.calls, 16);
        assert!((m.dispatch.secs - 0.75).abs() < 1e-12);
        assert_eq!(m.barrier.calls, 7);
        assert!((m.barrier.secs - 0.03).abs() < 1e-12);
        let text = m.to_text();
        assert!(text.contains("barrier"), "{text}");
    }

    #[test]
    fn merge_of_empty_slice_is_all_zeros() {
        let m = LoopProfile::merge(&[]);
        assert_eq!(m.wall_secs, 0.0);
        assert_eq!(m.events, 0);
        assert_eq!(m.events_per_sec, 0.0);
        for s in [m.dispatch, m.alloc, m.wake, m.probe, m.barrier] {
            assert_eq!(s.secs, 0.0);
            assert_eq!(s.calls, 0);
        }
    }

    #[test]
    fn merge_of_singleton_is_identity() {
        let stat = |secs: f64, calls: u64| PhaseStat { secs, calls };
        let a = LoopProfile {
            wall_secs: 2.0,
            events: 10,
            events_per_sec: 5.0,
            dispatch: stat(0.5, 10),
            alloc: stat(0.2, 10),
            wake: stat(0.1, 10),
            probe: stat(0.05, 10),
            barrier: stat(0.0, 0),
        };
        // events_per_sec is recomputed from consistent inputs, so a
        // singleton merge reproduces the profile exactly.
        assert_eq!(LoopProfile::merge(&[a]), a);
    }

    #[test]
    fn snapshot_carries_every_phase_in_order() {
        let stat = |secs: f64, calls: u64| PhaseStat { secs, calls };
        let p = LoopProfile {
            wall_secs: 1.0,
            events: 4,
            events_per_sec: 4.0,
            dispatch: stat(0.4, 4),
            alloc: stat(0.3, 4),
            wake: stat(0.2, 4),
            probe: stat(0.1, 4),
            barrier: stat(0.05, 2),
        };
        let snap = p.snapshot();
        assert_eq!(snap.wall_secs, 1.0);
        assert_eq!(snap.events, 4);
        let names: Vec<&str> = snap.phases.iter().map(|ph| ph.name.as_str()).collect();
        assert_eq!(names, ["dispatch", "alloc", "wake", "probe", "barrier"]);
        assert_eq!(snap.phases[4].calls, 2);
        assert_eq!(snap.phases[0].secs, 0.4);
    }

    #[test]
    fn report_round_trips_and_renders() {
        let prof = LoopProfiler::new();
        let t0 = LoopProfiler::clock();
        prof.add(Phase::Probe, t0);
        let report = prof.report();
        let json = serde_json::to_string(&report).unwrap();
        let back: LoopProfile = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
        let text = report.to_text();
        assert!(text.contains("events/s"), "{text}");
        assert!(text.contains("dispatch"), "{text}");
        assert!(text.contains("probe"), "{text}");
    }
}
