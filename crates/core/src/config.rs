//! Simulation configuration.
//!
//! A [`SimConfig`] pins down *everything* a trial depends on; two runs with
//! equal configs (including the seed) produce bit-identical outcomes. The
//! builder starts from the paper's defaults and lets experiments override
//! the axis they sweep.

use sct_admission::{
    AssignmentPolicy, EvacuationPolicy, MigrationPolicy, ReplicationSpec, WaitlistSpec,
};
use sct_cluster::PlacementStrategy;
use sct_media::ClientProfile;
use sct_simcore::SimTime;
use sct_transmission::SchedulerKind;
use sct_workload::{HeterogeneityKind, SystemSpec};
use serde::{Deserialize, Serialize};

/// How much client staging buffer each request gets.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum StagingSpec {
    /// A fraction of the catalog's average video size (the paper's §4.3
    /// parameterisation; 0.0 disables staging entirely).
    FractionOfAvgVideo(f64),
    /// An absolute buffer in megabits.
    AbsoluteMb(f64),
    /// Unlimited client storage (Theorem 1 regime).
    Unbounded,
}

impl StagingSpec {
    /// Resolves to a concrete buffer size given the catalog's average
    /// video size.
    pub fn capacity_mb(&self, avg_video_size_mb: f64) -> f64 {
        match *self {
            StagingSpec::FractionOfAvgVideo(f) => f * avg_video_size_mb,
            StagingSpec::AbsoluteMb(mb) => mb,
            StagingSpec::Unbounded => f64::INFINITY,
        }
    }
}

/// Server failure model (fault-tolerance extension): every server
/// independently alternates exponential up-times (mean `mtbf_hours`) and
/// exponential down-times (mean `repair_hours`). On failure its active
/// streams are emergency-evacuated via DRM (or dropped).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct FailureSpec {
    /// Mean time between failures per server, hours.
    pub mtbf_hours: f64,
    /// Mean repair time per server, hours.
    pub repair_hours: f64,
}

impl FailureSpec {
    /// Creates a failure model; both means must be positive.
    pub fn new(mtbf_hours: f64, repair_hours: f64) -> Self {
        assert!(mtbf_hours > 0.0 && repair_hours > 0.0);
        FailureSpec {
            mtbf_hours,
            repair_hours,
        }
    }

    /// Steady-state fraction of time a server is up.
    pub fn availability(&self) -> f64 {
        self.mtbf_hours / (self.mtbf_hours + self.repair_hours)
    }
}

/// Client interactivity model (extension; §6 lists "interactivity in
/// semi-continuous transmission" as future work): each accepted request
/// independently pauses playback at most once, at a uniformly random point
/// of its video, for a uniformly random duration.
///
/// Paused streams keep their server slot but stop consuming; with staging,
/// transmission keeps filling the client buffer and can even complete
/// during the pause, releasing the slot early — the semi-continuous
/// answer to VCR functions.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct PauseSpec {
    /// Probability that a request pauses once during playback.
    pub probability: f64,
    /// Minimum pause duration, seconds.
    pub min_pause_secs: f64,
    /// Maximum pause duration, seconds.
    pub max_pause_secs: f64,
}

impl PauseSpec {
    /// Creates a pause model; requires `0 ≤ probability ≤ 1` and a valid
    /// positive duration range.
    pub fn new(probability: f64, min_pause_secs: f64, max_pause_secs: f64) -> Self {
        assert!((0.0..=1.0).contains(&probability));
        assert!(0.0 < min_pause_secs && min_pause_secs <= max_pause_secs);
        PauseSpec {
            probability,
            min_pause_secs,
            max_pause_secs,
        }
    }
}

/// Diurnal load model (extension): the Poisson arrival rate swings
/// sinusoidally around its calibrated mean —
/// `λ(t) = λ̄ (1 + amplitude · sin(2π t / period))` — a stylised day/night
/// demand cycle. The mean offered load stays at 100 %.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct DiurnalSpec {
    /// Swing amplitude in [0, 1] (1 ⇒ load varies 0–200 % of mean).
    pub amplitude: f64,
    /// Cycle length in hours (24 for a literal day).
    pub period_hours: f64,
}

impl DiurnalSpec {
    /// Creates the model; `amplitude ∈ [0, 1]`, positive period.
    pub fn new(amplitude: f64, period_hours: f64) -> Self {
        assert!((0.0..=1.0).contains(&amplitude));
        assert!(period_hours > 0.0);
        DiurnalSpec {
            amplitude,
            period_hours,
        }
    }
}

/// One complete experimental setup.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// System parameters (servers, catalog shape, rates).
    pub system: SystemSpec,
    /// Zipf demand-uniformity parameter θ (1 = uniform, negative = very
    /// skewed).
    pub theta: f64,
    /// Replica placement strategy.
    pub placement: PlacementStrategy,
    /// Assignment rule among eligible holders.
    pub assignment: AssignmentPolicy,
    /// Dynamic-request-migration policy.
    pub migration: MigrationPolicy,
    /// Failure-evacuation policy (strict drop vs best-effort restart).
    pub evacuation: EvacuationPolicy,
    /// Spare-bandwidth scheduler on every server.
    pub scheduler: SchedulerKind,
    /// Client staging buffer size.
    pub staging: StagingSpec,
    /// Client receive cap in Mb/s (`f64::INFINITY` to lift it).
    pub receive_cap_mbps: f64,
    /// Simulated duration.
    pub duration: SimTime,
    /// Initial warm-up excluded from the utilization metric.
    pub warmup: SimTime,
    /// Optional cluster heterogeneity (kind, spread ∈ [0, 1)).
    pub heterogeneity: Option<(HeterogeneityKind, f64)>,
    /// Optional server failure/repair process.
    pub failures: Option<FailureSpec>,
    /// Optional client pause/resume behaviour.
    pub interactivity: Option<PauseSpec>,
    /// Optional diurnal (sinusoidal) arrival-rate modulation.
    pub diurnal: Option<DiurnalSpec>,
    /// Optional dynamic replication on rejection.
    pub replication: Option<ReplicationSpec>,
    /// Optional admission wait queue (viewers tolerate a short delay).
    pub waitlist: Option<WaitlistSpec>,
    /// Sampling interval (seconds) for the windowed-utilization time
    /// series; `None` disables sampling.
    pub sample_interval_secs: Option<f64>,
    /// Track per-video arrival/rejection counts (small extra memory).
    pub track_per_video: bool,
    /// Event-loop shards the cluster is partitioned into (1 = the
    /// monolithic loop). Outcomes are identical for every value; shards
    /// change batching and accounting, never behaviour.
    pub shards: usize,
    /// Worker threads for epoch bursts of the sharded loop (1 = keep the
    /// classic single-threaded barrier loop). Outcomes are bit-identical
    /// for every value; threads change wall-clock only.
    pub threads: usize,
    /// Minimum events pending across the elected shards before an epoch
    /// burst is offloaded to the thread pool; smaller epochs run inline
    /// (spawning threads for a handful of events costs more than it
    /// saves). Irrelevant to outcomes.
    pub offload_min_events: usize,
    /// Root seed for all randomness in the trial.
    pub seed: u64,
    /// Run (expensive) invariant checks while simulating.
    pub check_invariants: bool,
}

fn default_threads() -> usize {
    1
}

fn default_offload_min_events() -> usize {
    256
}

impl SimConfig {
    /// Starts a builder from paper defaults for `system`.
    pub fn builder(system: SystemSpec) -> SimConfigBuilder {
        SimConfigBuilder::new(system)
    }

    /// Whether this config's *features* admit the parallel epoch path:
    /// more than one worker thread requested and no scenario extension
    /// that routes non-`Wake` events to worker shards or reaches across
    /// shards mid-burst (failures, interactivity, waitlists, dynamic
    /// replication). The loop additionally requires `shards > 1` after
    /// clamping and that no attached probe consumes state views; when
    /// any condition fails it silently falls back to the classic
    /// single-threaded barrier loop — outcomes are identical either way.
    pub fn parallel_eligible(&self) -> bool {
        self.threads > 1
            && self.failures.is_none()
            && self.interactivity.is_none()
            && self.waitlist.is_none()
            && self.replication.is_none()
    }

    /// The client profile this config gives every request, resolved
    /// against the catalog's average video size.
    pub fn client_profile(&self, avg_video_size_mb: f64) -> ClientProfile {
        ClientProfile::new(
            self.staging.capacity_mb(avg_video_size_mb),
            self.receive_cap_mbps,
        )
    }
}

/// Builder for [`SimConfig`]. Defaults: θ = 0.271 (the literature's usual
/// skew), even placement (2.2 copies), least-loaded assignment, no
/// migration, EFTF, 20 % staging, the system's receive cap, 50 simulated
/// hours, 1 hour warm-up, homogeneous cluster, seed 0, no invariant
/// checks.
#[derive(Clone, Debug)]
pub struct SimConfigBuilder {
    cfg: SimConfig,
}

impl SimConfigBuilder {
    /// Creates the builder with paper defaults.
    pub fn new(system: SystemSpec) -> Self {
        let receive_cap = system.client_receive_cap_mbps;
        SimConfigBuilder {
            cfg: SimConfig {
                system,
                theta: 0.271,
                placement: PlacementStrategy::even_paper(),
                assignment: AssignmentPolicy::LeastLoaded,
                migration: MigrationPolicy::disabled(),
                evacuation: EvacuationPolicy::default(),
                scheduler: SchedulerKind::Eftf,
                staging: StagingSpec::FractionOfAvgVideo(0.2),
                receive_cap_mbps: receive_cap,
                duration: SimTime::from_hours(50.0),
                warmup: SimTime::from_hours(1.0),
                heterogeneity: None,
                failures: None,
                interactivity: None,
                diurnal: None,
                replication: None,
                waitlist: None,
                sample_interval_secs: None,
                track_per_video: false,
                shards: 1,
                threads: default_threads(),
                offload_min_events: default_offload_min_events(),
                seed: 0,
                check_invariants: false,
            },
        }
    }

    /// Sets the Zipf θ.
    pub fn theta(mut self, theta: f64) -> Self {
        self.cfg.theta = theta;
        self
    }

    /// Sets the placement strategy.
    pub fn placement(mut self, p: PlacementStrategy) -> Self {
        self.cfg.placement = p;
        self
    }

    /// Sets the assignment policy.
    pub fn assignment(mut self, a: AssignmentPolicy) -> Self {
        self.cfg.assignment = a;
        self
    }

    /// Sets the migration policy.
    pub fn migration(mut self, m: MigrationPolicy) -> Self {
        self.cfg.migration = m;
        self
    }

    /// Enables (or disables) the best-effort evacuation restart: streams
    /// that cannot hand off seamlessly when their server fails are
    /// restarted from the playback point on another capable holder
    /// instead of being dropped. Off by default (paper-faithful).
    pub fn evacuation_restart(mut self, on: bool) -> Self {
        self.cfg.evacuation = if on {
            EvacuationPolicy::best_effort()
        } else {
            EvacuationPolicy::strict()
        };
        self
    }

    /// Sets the spare-bandwidth scheduler.
    pub fn scheduler(mut self, s: SchedulerKind) -> Self {
        self.cfg.scheduler = s;
        self
    }

    /// Sets the staging buffer as a fraction of the average video size.
    pub fn staging_fraction(mut self, f: f64) -> Self {
        self.cfg.staging = StagingSpec::FractionOfAvgVideo(f);
        self
    }

    /// Sets the staging spec directly.
    pub fn staging(mut self, s: StagingSpec) -> Self {
        self.cfg.staging = s;
        self
    }

    /// Sets the client receive cap (Mb/s).
    pub fn receive_cap(mut self, mbps: f64) -> Self {
        self.cfg.receive_cap_mbps = mbps;
        self
    }

    /// Sets the simulated duration in hours.
    pub fn duration_hours(mut self, h: f64) -> Self {
        self.cfg.duration = SimTime::from_hours(h);
        self
    }

    /// Sets the warm-up (excluded from metrics) in hours.
    pub fn warmup_hours(mut self, h: f64) -> Self {
        self.cfg.warmup = SimTime::from_hours(h);
        self
    }

    /// Makes the cluster heterogeneous.
    pub fn heterogeneity(mut self, kind: HeterogeneityKind, spread: f64) -> Self {
        self.cfg.heterogeneity = Some((kind, spread));
        self
    }

    /// Enables the server failure/repair process.
    pub fn failures(mut self, mtbf_hours: f64, repair_hours: f64) -> Self {
        self.cfg.failures = Some(FailureSpec::new(mtbf_hours, repair_hours));
        self
    }

    /// Enables client pause/resume behaviour.
    pub fn interactivity(
        mut self,
        probability: f64,
        min_pause_secs: f64,
        max_pause_secs: f64,
    ) -> Self {
        self.cfg.interactivity = Some(PauseSpec::new(probability, min_pause_secs, max_pause_secs));
        self
    }

    /// Enables diurnal arrival-rate modulation.
    pub fn diurnal(mut self, amplitude: f64, period_hours: f64) -> Self {
        self.cfg.diurnal = Some(DiurnalSpec::new(amplitude, period_hours));
        self
    }

    /// Enables dynamic replication on rejection.
    pub fn replication(mut self, spec: ReplicationSpec) -> Self {
        self.cfg.replication = Some(spec);
        self
    }

    /// Queues rejected requests for up to `max_wait_secs` (capacity
    /// `max_length`) instead of dropping them.
    pub fn waitlist(mut self, max_wait_secs: f64, max_length: usize) -> Self {
        self.cfg.waitlist = Some(WaitlistSpec::new(max_wait_secs, max_length));
        self
    }

    /// Sets a fully custom waitlist spec (e.g. with multicast batching).
    pub fn waitlist_spec(mut self, spec: WaitlistSpec) -> Self {
        self.cfg.waitlist = Some(spec);
        self
    }

    /// Samples cluster utilization every `secs` seconds into the outcome's
    /// time series (used by the smoothing analysis).
    pub fn sample_interval_secs(mut self, secs: f64) -> Self {
        assert!(secs > 0.0);
        self.cfg.sample_interval_secs = Some(secs);
        self
    }

    /// Records per-video arrival/rejection counts.
    pub fn track_per_video(mut self, on: bool) -> Self {
        self.cfg.track_per_video = on;
        self
    }

    /// Partitions the event loop into `n` shards (1 = monolithic). The
    /// shard map clamps `n` to the server count; outcomes do not depend
    /// on it.
    pub fn shards(mut self, n: usize) -> Self {
        self.cfg.shards = n;
        self
    }

    /// Dispatches epoch bursts of the sharded loop on `n` worker threads
    /// (1 = the classic single-threaded loop). Outcomes do not depend on
    /// it; see [`SimConfig::parallel_eligible`] for when it engages.
    pub fn threads(mut self, n: usize) -> Self {
        self.cfg.threads = n;
        self
    }

    /// Sets the minimum pending events before an epoch burst is
    /// offloaded to the thread pool (0 = always offload; tests use this
    /// to force real threads onto tiny scenarios).
    pub fn offload_min_events(mut self, n: usize) -> Self {
        self.cfg.offload_min_events = n;
        self
    }

    /// Sets the seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.seed = seed;
        self
    }

    /// Applies a Fig. 6 policy (placement + migration + staging).
    pub fn policy(mut self, p: crate::policies::Policy) -> Self {
        self.cfg.placement = p.placement();
        self.cfg.migration = p.migration();
        self.cfg.staging = StagingSpec::FractionOfAvgVideo(p.staging_fraction());
        self
    }

    /// Enables expensive invariant checking (tests).
    pub fn check_invariants(mut self, on: bool) -> Self {
        self.cfg.check_invariants = on;
        self
    }

    /// Finalises the config (validates the knobs).
    pub fn build(self) -> SimConfig {
        let c = &self.cfg;
        assert!(c.theta.is_finite(), "theta must be finite");
        assert!(c.duration > SimTime::ZERO, "duration must be positive");
        assert!(
            c.warmup < c.duration,
            "warm-up must end before the run does"
        );
        assert!(
            c.receive_cap_mbps >= c.system.view_rate_mbps,
            "clients must receive at least the view rate"
        );
        if let Some((_, spread)) = c.heterogeneity {
            assert!((0.0..1.0).contains(&spread), "spread must be in [0,1)");
        }
        assert!(c.shards >= 1, "at least one shard");
        assert!(c.threads >= 1, "at least one thread");
        self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_are_paper_like() {
        let c = SimConfig::builder(SystemSpec::small_paper()).build();
        assert_eq!(c.theta, 0.271);
        assert_eq!(c.scheduler, SchedulerKind::Eftf);
        assert!(!c.migration.enabled);
        assert_eq!(c.receive_cap_mbps, 30.0);
        assert_eq!(c.staging, StagingSpec::FractionOfAvgVideo(0.2));
    }

    #[test]
    fn staging_resolution() {
        assert_eq!(
            StagingSpec::FractionOfAvgVideo(0.2).capacity_mb(5400.0),
            1080.0
        );
        assert_eq!(StagingSpec::AbsoluteMb(99.0).capacity_mb(5400.0), 99.0);
        assert!(StagingSpec::Unbounded.capacity_mb(1.0).is_infinite());
    }

    #[test]
    fn client_profile_combines_staging_and_cap() {
        let c = SimConfig::builder(SystemSpec::small_paper())
            .staging_fraction(0.5)
            .receive_cap(12.0)
            .build();
        let p = c.client_profile(1000.0);
        assert_eq!(p.staging_capacity_mb, 500.0);
        assert_eq!(p.receive_cap_mbps, 12.0);
    }

    #[test]
    fn equal_configs_compare_equal() {
        let a = SimConfig::builder(SystemSpec::small_paper())
            .seed(7)
            .build();
        let b = SimConfig::builder(SystemSpec::small_paper())
            .seed(7)
            .build();
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "warm-up must end before")]
    fn warmup_longer_than_run_rejected() {
        SimConfig::builder(SystemSpec::tiny_test())
            .duration_hours(1.0)
            .warmup_hours(2.0)
            .build();
    }

    #[test]
    #[should_panic(expected = "at least the view rate")]
    fn receive_cap_below_view_rate_rejected() {
        SimConfig::builder(SystemSpec::tiny_test())
            .receive_cap(1.0)
            .build();
    }
}
