//! Telemetry: mergeable histograms, exact time-weighted gauges, and the
//! probe that feeds them.
//!
//! The simulation's distributional quantities — wait times, staging
//! occupancy, per-server load — are not recoverable from the scalar means
//! in [`crate::simulation::SimOutcome`]. This module adds a metrics layer
//! on top of the PR-2 probe interface:
//!
//! * [`Histogram`] — a streaming log-bucketed histogram whose bucket
//!   boundaries are derived from the float's *bit pattern* (no `ln`, no
//!   platform-dependent libm), so two runs bucket identically everywhere.
//!   Merging histograms adds bucket counts keywise, which makes
//!   multi-trial aggregation *exact*: merging per-trial histograms equals
//!   the histogram of the pooled samples, bucket for bucket.
//! * [`TimeWeightedGauge`] — an exact integral of a piecewise-linear
//!   quantity. The simulation only changes rates inside event handlers,
//!   so every integrand of interest (committed bandwidth, waitlist depth,
//!   active streams, staged megabits) is linear between events; sampling
//!   the value *and its slope* at each event boundary and integrating
//!   `v·dt + ½·s·dt²` reproduces the true integral with no sampling
//!   error. The warm-up boundary is not an event; segments straddling it
//!   are clipped analytically.
//! * [`StateView`] — the narrow read-only window onto world state the
//!   loop exposes to probes at each event boundary, projecting lazy
//!   engine clocks forward to the event time.
//! * [`TelemetryProbe`] — subscribes to both streams and instruments the
//!   quantities the paper's evaluation cares about; its
//!   [`TelemetryProbe::finish`] folds everything into a
//!   [`MetricsRegistry`].
//! * [`MetricsRegistry`] — named counters/gauges/histograms, mergeable
//!   across trials, exportable as an [`sct_analysis::MetricsSnapshot`].
//!
//! Like every probe, the telemetry layer observes and never steers: the
//! golden-snapshot tests pass with a [`TelemetryProbe`] attached.

use crate::config::SimConfig;
use crate::events::{AdmitPath, Probe, SimEvent};
use sct_analysis::snapshot::{
    BucketSnapshot, CounterSnapshot, GaugeSnapshot, HistogramSnapshot, MetricsSnapshot,
};
use sct_simcore::SimTime;
use sct_transmission::{ServerEngine, Stream};
use std::collections::BTreeMap;

/// Sub-octave cutpoints `2^(i/8)` for `i = 0..8`, as correctly-rounded
/// f64 literals. Eight buckets per octave bounds the relative quantile
/// error at `2^(1/8) − 1 ≈ 9 %`.
const SUB_CUTS: [f64; 8] = [
    1.0,
    1.090_507_732_665_257_7,
    1.189_207_115_002_721,
    1.296_839_554_651_009_6,
    std::f64::consts::SQRT_2,
    1.542_210_825_407_940_7,
    1.681_792_830_507_429,
    1.834_008_086_409_342,
];

/// `2^(1/16)`: multiplying a bucket's lower bound by this yields its
/// geometric midpoint, the bucket's representative value.
const GEO_MID: f64 = 1.044_273_782_427_413_8;

/// The log bucket a positive finite value falls into. Pure bit
/// arithmetic plus float *comparisons* — deterministic on every platform.
fn bucket_key(v: f64) -> i64 {
    debug_assert!(v > 0.0 && v.is_finite());
    let bits = v.to_bits();
    let biased = ((bits >> 52) & 0x7ff) as i64;
    let (exp, mantissa) = if biased == 0 {
        // Subnormals collapse into the bottom octave.
        (-1023i64, 1.0)
    } else {
        let m = f64::from_bits((bits & 0x000f_ffff_ffff_ffff) | (1023u64 << 52));
        (biased - 1023, m)
    };
    let mut sub = 0i64;
    for i in (1..8).rev() {
        if mantissa >= SUB_CUTS[i] {
            sub = i as i64;
            break;
        }
    }
    exp * 8 + sub
}

/// The lower bound of a bucket, reconstructed from its key (the exact
/// inverse of [`bucket_key`]'s rounding-down).
fn bucket_lower(key: i64) -> f64 {
    let exp = key.div_euclid(8).clamp(-1022, 1023);
    let sub = key.rem_euclid(8) as usize;
    f64::from_bits(((exp + 1023) as u64) << 52) * SUB_CUTS[sub]
}

/// A deterministic streaming log-bucketed histogram.
///
/// Positive samples land in buckets of relative width `2^(1/8)`; samples
/// `≤ 0` are counted in a dedicated class (zero wait times are real data,
/// but a log scale cannot hold them). Quantiles report a bucket's
/// geometric midpoint clamped to the observed `[min, max]`, so they
/// depend only on state that merges exactly — quantiles computed from a
/// merged histogram equal quantiles of the pooled samples' histogram.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Histogram {
    buckets: BTreeMap<i64, u64>,
    nonpositive: u64,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: BTreeMap::new(),
            nonpositive: 0,
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one sample. Panics on non-finite input: every instrumented
    /// quantity is a finite simulation observable.
    pub fn record(&mut self, v: f64) {
        assert!(v.is_finite(), "histogram sample must be finite: {v}");
        if v > 0.0 {
            *self.buckets.entry(bucket_key(v)).or_insert(0) += 1;
        } else {
            self.nonpositive += 1;
        }
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean of the recorded samples (0 when empty). Note the mean is the
    /// one aggregate that merges only approximately (float addition
    /// reassociates); bucket counts, min, max, and quantiles merge
    /// exactly.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Smallest sample (0 when empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest sample (0 when empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// The `q`-quantile (`q ∈ [0, 1]`): the representative value of the
    /// bucket holding the sample of rank `⌈q·n⌉`. Within `2^(1/16)` of a
    /// true order statistic; 0 when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = self.nonpositive;
        if rank <= cum {
            // All non-positive samples sit below every bucket; the class
            // representative is the observed minimum.
            return self.min;
        }
        for (&key, &n) in &self.buckets {
            cum += n;
            if rank <= cum {
                let rep = bucket_lower(key) * GEO_MID;
                return rep.clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Adds `other`'s samples into `self`: bucket counts add keywise, so
    /// the merge is exact (see the type-level docs).
    pub fn merge(&mut self, other: &Histogram) {
        for (&key, &n) in &other.buckets {
            *self.buckets.entry(key).or_insert(0) += n;
        }
        self.nonpositive += other.nonpositive;
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// The non-empty buckets in key order (for export).
    pub fn buckets(&self) -> impl Iterator<Item = (i64, u64)> + '_ {
        self.buckets.iter().map(|(&k, &n)| (k, n))
    }

    /// Samples `≤ 0`, held outside the log buckets.
    pub fn nonpositive(&self) -> u64 {
        self.nonpositive
    }

    fn snapshot(&self, name: &str) -> HistogramSnapshot {
        HistogramSnapshot {
            name: name.to_string(),
            count: self.count,
            nonpositive: self.nonpositive,
            sum: self.sum,
            min: self.min(),
            max: self.max(),
            p50: self.quantile(0.50),
            p90: self.quantile(0.90),
            p99: self.quantile(0.99),
            buckets: self
                .buckets()
                .map(|(key, count)| BucketSnapshot { key, count })
                .collect(),
        }
    }
}

/// An exact time-weighted gauge over the measurement window
/// `[window_start, end]`.
///
/// Feed it `(now, value, slope)` at every event boundary — the value just
/// after the handler ran and the rate at which it will change until the
/// next event. Because the simulation's integrands are piecewise linear
/// *between* events (rates only change inside handlers), integrating
/// `v·dt + ½·slope·dt²` per segment is exact; jumps at the boundaries are
/// captured by re-observing. Segments straddling `window_start` are
/// clipped analytically (the warm-up boundary is not an event).
#[derive(Clone, Debug, PartialEq)]
pub struct TimeWeightedGauge {
    window_start: SimTime,
    last_t: SimTime,
    last_v: f64,
    last_slope: f64,
    integral: f64,
    span: f64,
    min: f64,
    max: f64,
}

impl TimeWeightedGauge {
    /// Creates a gauge measuring from `window_start`, with the integrand
    /// implicitly 0 from time 0 (the world starts empty).
    pub fn new(window_start: SimTime) -> Self {
        TimeWeightedGauge {
            window_start,
            last_t: SimTime::ZERO,
            last_v: 0.0,
            last_slope: 0.0,
            integral: 0.0,
            span: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Integrates the pending segment `[last_t, now]` (clipped to the
    /// window) under the stored value/slope.
    fn advance(&mut self, now: SimTime) {
        let t0 = self.last_t.max(self.window_start);
        if now > t0 {
            // Offsets from last_t, where the stored value/slope are exact.
            let a = t0 - self.last_t;
            let b = now - self.last_t;
            self.integral += self.last_v * (b - a) + 0.5 * self.last_slope * (b * b - a * a);
            let va = self.last_v + self.last_slope * a;
            let vb = self.last_v + self.last_slope * b;
            self.min = self.min.min(va.min(vb));
            self.max = self.max.max(va.max(vb));
        }
    }

    /// Observes the integrand at an event boundary: `value` holds from
    /// `now` and changes at `slope` per second until the next observation
    /// (use 0 for piecewise-constant integrands).
    pub fn observe(&mut self, now: SimTime, value: f64, slope: f64) {
        debug_assert!(now >= self.last_t, "gauge time went backwards");
        self.advance(now);
        self.last_t = self.last_t.max(now);
        self.last_v = value;
        self.last_slope = slope;
    }

    /// Closes the window at `end`, extending the last segment to it. Call
    /// exactly once, after the run.
    pub fn finalize(&mut self, end: SimTime) {
        self.advance(end);
        self.last_t = self.last_t.max(end);
        self.span += (end - self.window_start).max(0.0);
    }

    /// `∫ value dt` over the (finalized) window, value-seconds.
    pub fn integral(&self) -> f64 {
        self.integral
    }

    /// Measured seconds (summed across merged trials).
    pub fn span_secs(&self) -> f64 {
        self.span
    }

    /// Time-weighted mean over the window (0 before finalizing).
    pub fn mean(&self) -> f64 {
        if self.span > 0.0 {
            self.integral / self.span
        } else {
            0.0
        }
    }

    /// Smallest value inside the window (0 when the window is empty).
    pub fn min(&self) -> f64 {
        if self.min.is_finite() {
            self.min
        } else {
            0.0
        }
    }

    /// Largest value inside the window (0 when the window is empty).
    pub fn max(&self) -> f64 {
        if self.max.is_finite() {
            self.max
        } else {
            0.0
        }
    }

    /// Merges another (finalized) gauge of the same quantity from a
    /// different trial: integrals and spans add, so the merged mean is the
    /// pooled time-weighted mean.
    pub fn merge(&mut self, other: &TimeWeightedGauge) {
        self.integral += other.integral;
        self.span += other.span;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    fn snapshot(&self, name: &str) -> GaugeSnapshot {
        GaugeSnapshot {
            name: name.to_string(),
            mean: self.mean(),
            min: self.min(),
            max: self.max(),
            integral: self.integral,
            span_secs: self.span,
        }
    }
}

/// A read-only window onto simulation state, handed to probes at each
/// event boundary (after the handler ran). Engines integrate lazily, so
/// every accessor projects stream state forward from the engine's local
/// clock to the event time — rates are constant in between, so the
/// projection is exact.
pub struct StateView<'a> {
    now: SimTime,
    engines: &'a [ServerEngine],
    waitlist_depth: usize,
}

/// Megabits of `s` sitting in its client's staging buffer at `now`,
/// projecting the (possibly stale) transmission state forward at the
/// current allocated rate.
fn projected_staged_mb(engine: &ServerEngine, s: &Stream, now: SimTime) -> f64 {
    let dt = (now - engine.clock()).max(0.0);
    let sent = (s.sent_mb() + s.rate() * dt).min(s.size_mb);
    (sent - s.viewed_mb(now)).max(0.0)
}

impl<'a> StateView<'a> {
    pub(crate) fn new(now: SimTime, engines: &'a [ServerEngine], waitlist_depth: usize) -> Self {
        StateView {
            now,
            engines,
            waitlist_depth,
        }
    }

    /// The event time this view is valid at.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of servers in the cluster.
    pub fn n_servers(&self) -> usize {
        self.engines.len()
    }

    /// A server's outbound capacity, Mb/s.
    pub fn capacity_mbps(&self, server: usize) -> f64 {
        self.engines[server].capacity_mbps()
    }

    /// `true` while the server is up.
    pub fn is_online(&self, server: usize) -> bool {
        self.engines[server].is_online()
    }

    /// A server's minimum-flow commitment (Σ view rates), Mb/s.
    pub fn committed_mbps(&self, server: usize) -> f64 {
        self.engines[server].committed_mbps()
    }

    /// A server's currently allocated transmission rate (Σ stream rates),
    /// Mb/s — the integrand of the utilization metric. Reads the engine's
    /// mutation-maintained aggregate, so probes pay O(1) per server per
    /// state view instead of re-summing every stream.
    pub fn allocated_mbps(&self, server: usize) -> f64 {
        self.engines[server].allocated_mbps()
    }

    /// Unfinished streams on a server (viewer streams and replica
    /// copies).
    pub fn active_streams(&self, server: usize) -> usize {
        self.engines[server].active_count()
    }

    /// Unfinished streams across the cluster.
    pub fn total_active_streams(&self) -> usize {
        self.engines.iter().map(ServerEngine::active_count).sum()
    }

    /// Requests currently queued in the waitlist.
    pub fn waitlist_depth(&self) -> usize {
        self.waitlist_depth
    }

    /// Aggregate staged megabits across all *viewer* streams, and its
    /// slope in Mb/s (fill rate minus drain rate), both exact at `now`.
    pub fn staged_totals(&self) -> (f64, f64) {
        let mut staged = 0.0;
        let mut slope = 0.0;
        for e in self.engines {
            let dt = (self.now - e.clock()).max(0.0);
            for s in e.streams() {
                if s.is_copy() {
                    continue;
                }
                let sent = (s.sent_mb() + s.rate() * dt).min(s.size_mb);
                staged += (sent - s.viewed_mb(self.now)).max(0.0);
                if sent < s.size_mb {
                    slope += s.rate();
                }
                if !s.is_paused() && s.viewed_mb(self.now) < s.size_mb {
                    slope -= s.view_rate;
                }
            }
        }
        (staged, slope)
    }

    /// Staged megabits of one stream on one server, or `None` if the
    /// server does not hold it.
    pub fn stream_staged_mb(&self, server: usize, stream: u64) -> Option<f64> {
        let e = self.engines.get(server)?;
        let s = e.streams().iter().find(|s| s.id.0 == stream)?;
        Some(projected_staged_mb(e, s, self.now))
    }
}

/// Named counters, gauges, and histograms — one trial's telemetry, or
/// several trials merged exactly.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsRegistry {
    trials: u32,
    measured_secs: f64,
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, TimeWeightedGauge>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// Creates an empty registry covering `trials` trials of
    /// `measured_secs` each.
    pub fn new(trials: u32, measured_secs: f64) -> Self {
        MetricsRegistry {
            trials,
            measured_secs,
            ..Default::default()
        }
    }

    /// Adds `delta` to the named counter (creating it at 0).
    pub fn add_counter(&mut self, name: &str, delta: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Inserts a (finalized) gauge under `name`, merging if present.
    pub fn insert_gauge(&mut self, name: &str, gauge: TimeWeightedGauge) {
        match self.gauges.entry(name.to_string()) {
            std::collections::btree_map::Entry::Vacant(e) => {
                e.insert(gauge);
            }
            std::collections::btree_map::Entry::Occupied(mut e) => e.get_mut().merge(&gauge),
        }
    }

    /// Inserts a histogram under `name`, merging if present.
    pub fn insert_histogram(&mut self, name: &str, hist: Histogram) {
        match self.histograms.entry(name.to_string()) {
            std::collections::btree_map::Entry::Vacant(e) => {
                e.insert(hist);
            }
            std::collections::btree_map::Entry::Occupied(mut e) => e.get_mut().merge(&hist),
        }
    }

    /// A counter's value (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// A gauge by name.
    pub fn gauge(&self, name: &str) -> Option<&TimeWeightedGauge> {
        self.gauges.get(name)
    }

    /// A histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Trials merged into this registry.
    pub fn trials(&self) -> u32 {
        self.trials
    }

    /// Merges another trial's registry: counters add, histograms merge
    /// bucketwise, gauge integrals and spans add. Exact except for float
    /// sums (see [`Histogram::mean`]).
    pub fn merge(&mut self, other: MetricsRegistry) {
        self.trials += other.trials;
        debug_assert!(
            (self.measured_secs - other.measured_secs).abs() < 1e-9,
            "merging registries with different measurement windows"
        );
        for (name, v) in other.counters {
            *self.counters.entry(name).or_insert(0) += v;
        }
        for (name, g) in other.gauges {
            self.insert_gauge(&name, g);
        }
        for (name, h) in other.histograms {
            self.insert_histogram(&name, h);
        }
    }

    /// Exports the registry in the `sct-analysis` wire schema.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            trials: self.trials,
            measured_secs: self.measured_secs,
            counters: self
                .counters
                .iter()
                .map(|(name, &value)| CounterSnapshot {
                    name: name.clone(),
                    value,
                })
                .collect(),
            gauges: self
                .gauges
                .iter()
                .map(|(name, g)| g.snapshot(name))
                .collect(),
            histograms: self
                .histograms
                .iter()
                .map(|(name, h)| h.snapshot(name))
                .collect(),
            profile: None,
        }
    }
}

/// The telemetry probe: instruments the distributional quantities the
/// paper's evaluation cares about.
///
/// * `waitlist_wait_secs` (histogram) — queueing delay of served waiters.
/// * `admitted_direct` / `admitted_drm` / `admitted_chained` /
///   `rejected` / `completions` (counters) — the admission path mix.
/// * `migration_staging_margin_mb` (histogram) — staged megabits a DRM
///   hand-off victim carries onto its new server: the playback slack that
///   absorbs the hand-off latency.
/// * `server_utilization/<i>` (gauges) — allocated rate over capacity per
///   server; the time-weighted mean reproduces the epilogue's
///   `per_server_utilization` exactly. `cluster_utilization` is the
///   capacity-weighted whole-cluster gauge.
/// * `server_committed_share/<i>` (gauges) — minimum-flow commitment over
///   capacity (slot occupancy).
/// * `waitlist_depth`, `active_streams`, `staged_mb` (gauges) — queue
///   length, stream population, and aggregate staging-buffer occupancy.
/// * `per_server_utilization` (histogram) — one sample per server per
///   trial, for the cross-server load distribution.
pub struct TelemetryProbe {
    warmup: SimTime,
    end: SimTime,
    admitted_direct: u64,
    admitted_drm: u64,
    admitted_chained: u64,
    rejected: u64,
    completions: u64,
    waitlist_wait: Histogram,
    staging_margin: Histogram,
    /// DRM hand-offs narrated at the current instant, `(stream, to)`;
    /// resolved against the state view that follows the same event.
    pending_margins: Vec<(u64, u16)>,
    per_server_util: Vec<TimeWeightedGauge>,
    per_server_committed: Vec<TimeWeightedGauge>,
    cluster_util: TimeWeightedGauge,
    waitlist_depth: TimeWeightedGauge,
    active_streams: TimeWeightedGauge,
    staged_mb: TimeWeightedGauge,
}

impl TelemetryProbe {
    /// Creates the probe for one trial of `config`.
    pub fn new(config: &SimConfig) -> Self {
        let warmup = config.warmup;
        TelemetryProbe {
            warmup,
            end: config.duration,
            admitted_direct: 0,
            admitted_drm: 0,
            admitted_chained: 0,
            rejected: 0,
            completions: 0,
            waitlist_wait: Histogram::new(),
            staging_margin: Histogram::new(),
            pending_margins: Vec::new(),
            per_server_util: Vec::new(),
            per_server_committed: Vec::new(),
            cluster_util: TimeWeightedGauge::new(warmup),
            waitlist_depth: TimeWeightedGauge::new(warmup),
            active_streams: TimeWeightedGauge::new(warmup),
            staged_mb: TimeWeightedGauge::new(warmup),
        }
    }

    /// Finalizes every gauge at the horizon and folds the probe into a
    /// single-trial [`MetricsRegistry`].
    pub fn finish(mut self) -> MetricsRegistry {
        let end = self.end;
        let mut reg = MetricsRegistry::new(1, end - self.warmup);
        reg.add_counter("admitted_direct", self.admitted_direct);
        reg.add_counter("admitted_drm", self.admitted_drm);
        reg.add_counter("admitted_chained", self.admitted_chained);
        reg.add_counter("rejected", self.rejected);
        reg.add_counter("completions", self.completions);
        let mut per_server = Histogram::new();
        for (i, mut g) in self.per_server_util.drain(..).enumerate() {
            g.finalize(end);
            per_server.record(g.mean());
            reg.insert_gauge(&format!("server_utilization/{i}"), g);
        }
        for (i, mut g) in self.per_server_committed.drain(..).enumerate() {
            g.finalize(end);
            reg.insert_gauge(&format!("server_committed_share/{i}"), g);
        }
        for (name, mut g) in [
            ("cluster_utilization", self.cluster_util),
            ("waitlist_depth", self.waitlist_depth),
            ("active_streams", self.active_streams),
            ("staged_mb", self.staged_mb),
        ] {
            g.finalize(end);
            reg.insert_gauge(name, g);
        }
        reg.insert_histogram("waitlist_wait_secs", self.waitlist_wait);
        reg.insert_histogram("migration_staging_margin_mb", self.staging_margin);
        reg.insert_histogram("per_server_utilization", per_server);
        reg
    }
}

impl Probe for TelemetryProbe {
    fn on_event(&mut self, _now: SimTime, event: &SimEvent) {
        match *event {
            SimEvent::Admitted { path, .. } => match path {
                AdmitPath::Direct => self.admitted_direct += 1,
                AdmitPath::Migrated => self.admitted_drm += 1,
                AdmitPath::Chained => self.admitted_chained += 1,
            },
            SimEvent::Rejected { .. } => self.rejected += 1,
            SimEvent::Completed { .. } => self.completions += 1,
            SimEvent::WaitlistServed { waited_secs, .. } => {
                self.waitlist_wait.record(waited_secs);
            }
            SimEvent::Migrated {
                stream,
                to,
                emergency: false,
                ..
            } => self.pending_margins.push((stream, to)),
            _ => {}
        }
    }

    fn on_state(&mut self, now: SimTime, view: &StateView) {
        if self.per_server_util.is_empty() {
            self.per_server_util = (0..view.n_servers())
                .map(|_| TimeWeightedGauge::new(self.warmup))
                .collect();
            self.per_server_committed = (0..view.n_servers())
                .map(|_| TimeWeightedGauge::new(self.warmup))
                .collect();
        }
        // The hand-offs this event narrated happen-before this view.
        for (stream, to) in self.pending_margins.drain(..) {
            if let Some(margin) = view.stream_staged_mb(to as usize, stream) {
                self.staging_margin.record(margin);
            }
        }
        let mut total_alloc = 0.0;
        let mut total_cap = 0.0;
        for i in 0..view.n_servers() {
            let alloc = view.allocated_mbps(i);
            let cap = view.capacity_mbps(i);
            total_alloc += alloc;
            total_cap += cap;
            self.per_server_util[i].observe(now, alloc / cap, 0.0);
            self.per_server_committed[i].observe(now, view.committed_mbps(i) / cap, 0.0);
        }
        self.cluster_util.observe(now, total_alloc / total_cap, 0.0);
        self.waitlist_depth
            .observe(now, view.waitlist_depth() as f64, 0.0);
        self.active_streams
            .observe(now, view.total_active_streams() as f64, 0.0);
        let (staged, slope) = view.staged_totals();
        self.staged_mb.observe(now, staged, slope);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn bucket_keys_are_monotone_and_octave_aligned() {
        // Powers of two open fresh octaves.
        assert_eq!(bucket_key(1.0), 0);
        assert_eq!(bucket_key(2.0), 8);
        assert_eq!(bucket_key(4.0), 16);
        assert_eq!(bucket_key(0.5), -8);
        // The key function is monotone over a log-spaced sweep.
        let mut last = bucket_key(1e-12);
        let mut v = 1e-12;
        while v < 1e12 {
            v *= 1.5;
            let k = bucket_key(v);
            assert!(k >= last, "key must be monotone at {v}");
            last = k;
        }
    }

    #[test]
    fn bucket_lower_inverts_bucket_key() {
        for &v in &[1e-9, 0.37, 1.0, 1.05, 2.0, 3.0, 7.5, 1234.5, 9.9e8] {
            let key = bucket_key(v);
            let lo = bucket_lower(key);
            assert!(lo <= v, "lower bound {lo} must not exceed {v}");
            assert!(
                v < lo * SUB_CUTS[1] * 1.000_000_1,
                "{v} must sit inside one sub-octave of {lo}"
            );
            assert_eq!(bucket_key(lo), key, "lower bound lands in its bucket");
        }
    }

    #[test]
    fn histogram_quantiles_bound_relative_error() {
        let mut h = Histogram::new();
        let samples: Vec<f64> = (1..=1000).map(|i| i as f64 * 0.73).collect();
        for &s in &samples {
            h.record(s);
        }
        assert_eq!(h.count(), 1000);
        for (q, idx) in [(0.5, 499), (0.9, 899), (0.99, 989)] {
            let exact = samples[idx];
            let est = h.quantile(q);
            assert!((est / exact - 1.0).abs() < 0.095, "q={q}: {est} vs {exact}");
        }
        assert_eq!(h.quantile(0.0), h.quantile(1e-9));
        assert!((h.quantile(1.0) - h.max()).abs() <= h.max() * 0.095);
    }

    #[test]
    fn histogram_handles_zero_and_negative_samples() {
        let mut h = Histogram::new();
        h.record(0.0);
        h.record(-2.5);
        h.record(10.0);
        assert_eq!(h.nonpositive(), 2);
        assert_eq!(h.count(), 3);
        assert_eq!(h.min(), -2.5);
        // Rank 1 and 2 fall in the non-positive class → its representative
        // is the minimum.
        assert_eq!(h.quantile(0.3), -2.5);
        assert_eq!(h.quantile(0.6), -2.5);
        assert!(h.quantile(0.99) > 9.0);
    }

    #[test]
    fn single_sample_quantiles_are_exact() {
        let mut h = Histogram::new();
        h.record(42.17);
        // min == max == the sample clamps every representative.
        assert_eq!(h.quantile(0.5), 42.17);
        assert_eq!(h.quantile(0.99), 42.17);
    }

    #[test]
    fn empty_histogram_exports_zeros() {
        let h = Histogram::new();
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), 0.0);
        assert_eq!(h.max(), 0.0);
        assert_eq!(h.quantile(0.5), 0.0);
        let snap = h.snapshot("empty");
        assert_eq!(snap.count, 0);
        assert!(snap.buckets.is_empty());
    }

    #[test]
    fn merging_empty_histograms_is_inert() {
        // empty ∪ empty stays empty (the ±∞ min/max sentinels must not
        // leak through the merge into the exported zeros).
        let mut both = Histogram::new();
        both.merge(&Histogram::new());
        assert!(both.is_empty());
        assert_eq!(both.min(), 0.0);
        assert_eq!(both.max(), 0.0);
        assert_eq!(both.quantile(0.5), 0.0);

        // non-empty ∪ empty and empty ∪ non-empty are both identity.
        let mut filled = Histogram::new();
        filled.record(3.0);
        filled.record(8.5);
        let reference = filled.clone();
        filled.merge(&Histogram::new());
        assert_eq!(filled, reference);
        let mut from_empty = Histogram::new();
        from_empty.merge(&reference);
        assert_eq!(from_empty.count(), 2);
        assert_eq!(from_empty.min(), 3.0);
        assert_eq!(from_empty.max(), 8.5);
        assert_eq!(
            from_empty.buckets().collect::<Vec<_>>(),
            reference.buckets().collect::<Vec<_>>()
        );
    }

    #[test]
    fn octave_boundaries_land_in_the_opening_bucket() {
        // A sample exactly on a bucket's lower bound belongs to that
        // bucket, not the one below (the half-open [lo, hi) contract).
        for key in [-16, -8, -1, 0, 1, 8, 16, 40] {
            let lo = bucket_lower(key);
            assert_eq!(bucket_key(lo), key, "lower bound of key {key}");
            let mut h = Histogram::new();
            h.record(lo);
            assert_eq!(h.buckets().collect::<Vec<_>>(), vec![(key, 1)]);
        }
        // Two samples straddling a boundary occupy adjacent buckets.
        let mut h = Histogram::new();
        let boundary = bucket_lower(8); // 2.0: the octave break
        h.record(boundary);
        h.record(boundary - 1e-12);
        let buckets: Vec<_> = h.buckets().collect();
        assert_eq!(buckets.len(), 2);
        assert_eq!(buckets[1].0 - buckets[0].0, 1);
    }

    #[test]
    fn extreme_magnitudes_stay_bucketed_and_clamped() {
        // The log-bucket key covers the full finite f64 range: no panic,
        // no overflow, and quantiles stay inside [min, max] even when the
        // geometric bucket representative would not.
        let mut h = Histogram::new();
        for v in [f64::MIN_POSITIVE, 1e-300, 1.0, 1e300, f64::MAX] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.min(), f64::MIN_POSITIVE);
        assert_eq!(h.max(), f64::MAX);
        for q in [0.0, 0.2, 0.5, 0.9, 1.0] {
            let est = h.quantile(q);
            assert!(
                (f64::MIN_POSITIVE..=f64::MAX).contains(&est),
                "q={q} escaped [min, max]: {est}"
            );
            assert!(est.is_finite());
        }
        // The top quantile is the bucket representative: within one
        // sub-octave bucket width of the true maximum, never above it.
        let top = h.quantile(1.0);
        assert!(top <= f64::MAX && top >= f64::MAX / 2f64.powf(1.0 / 8.0));
        // Merging two extreme-valued histograms keeps every aggregate
        // finite and exact.
        let mut other = Histogram::new();
        other.record(f64::MAX);
        h.merge(&other);
        assert_eq!(h.count(), 6);
        assert_eq!(h.max(), f64::MAX);
    }

    proptest! {
        /// The tentpole's merge guarantee: merging per-trial histograms
        /// equals the histogram of the pooled samples, bucket for bucket
        /// (and in min/max/count/quantiles, which derive from them).
        #[test]
        fn merging_trial_histograms_equals_pooled_histogram(
            trials in prop::collection::vec(
                prop::collection::vec(0.0f64..1.0e6, 0..40),
                1..6,
            )
        ) {
            let mut merged = Histogram::new();
            let mut pooled = Histogram::new();
            for trial in &trials {
                let mut h = Histogram::new();
                for &v in trial {
                    h.record(v);
                    pooled.record(v);
                }
                merged.merge(&h);
            }
            prop_assert_eq!(merged.count(), pooled.count());
            prop_assert_eq!(merged.nonpositive(), pooled.nonpositive());
            prop_assert_eq!(
                merged.buckets().collect::<Vec<_>>(),
                pooled.buckets().collect::<Vec<_>>()
            );
            prop_assert_eq!(merged.min(), pooled.min());
            prop_assert_eq!(merged.max(), pooled.max());
            for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
                prop_assert_eq!(merged.quantile(q), pooled.quantile(q));
            }
        }

        /// Bucketing never misplaces a sample: the bucket's bounds contain it.
        #[test]
        fn every_positive_sample_lands_inside_its_bucket(v in 1.0e-300f64..1.0e300) {
            let key = bucket_key(v);
            let lo = bucket_lower(key);
            let hi = bucket_lower(key + 1);
            prop_assert!(lo <= v && v < hi, "{} not in [{}, {})", v, lo, hi);
        }
    }

    #[test]
    fn gauge_integrates_piecewise_constant_exactly() {
        let mut g = TimeWeightedGauge::new(SimTime::ZERO);
        g.observe(SimTime::from_secs(0.0), 2.0, 0.0);
        g.observe(SimTime::from_secs(10.0), 4.0, 0.0);
        g.finalize(SimTime::from_secs(30.0));
        // 2·10 + 4·20 = 100 over 30 s.
        assert_eq!(g.integral(), 100.0);
        assert!((g.mean() - 100.0 / 30.0).abs() < 1e-15);
        assert_eq!(g.min(), 2.0);
        assert_eq!(g.max(), 4.0);
    }

    #[test]
    fn gauge_integrates_slopes_and_jumps_exactly() {
        let mut g = TimeWeightedGauge::new(SimTime::ZERO);
        // Rises 0→10 over [0,10), jumps to 3, falls to 1 over [10,12].
        g.observe(SimTime::from_secs(0.0), 0.0, 1.0);
        g.observe(SimTime::from_secs(10.0), 3.0, -1.0);
        g.finalize(SimTime::from_secs(12.0));
        // ∫ = 50 + (3+1)/2·2 = 54.
        assert_eq!(g.integral(), 54.0);
        assert_eq!(g.max(), 10.0);
        assert_eq!(g.min(), 0.0);
    }

    #[test]
    fn gauge_clips_the_warmup_boundary_analytically() {
        let mut g = TimeWeightedGauge::new(SimTime::from_secs(5.0));
        // v(t) = t over [0, 10): only [5, 10) counts → ∫ t dt = 37.5.
        g.observe(SimTime::from_secs(0.0), 0.0, 1.0);
        g.observe(SimTime::from_secs(10.0), 7.0, 0.0);
        g.finalize(SimTime::from_secs(20.0));
        assert_eq!(g.integral(), 37.5 + 70.0);
        assert_eq!(g.span_secs(), 15.0);
        // The pre-warm-up peak (v→5⁻) is outside the window; min inside is 5.
        assert_eq!(g.min(), 5.0);
        assert_eq!(g.max(), 10.0);
    }

    #[test]
    fn gauge_merge_pools_time_weighted_means() {
        let mut a = TimeWeightedGauge::new(SimTime::ZERO);
        a.observe(SimTime::ZERO, 1.0, 0.0);
        a.finalize(SimTime::from_secs(10.0));
        let mut b = TimeWeightedGauge::new(SimTime::ZERO);
        b.observe(SimTime::ZERO, 4.0, 0.0);
        b.finalize(SimTime::from_secs(30.0));
        a.merge(&b);
        // (1·10 + 4·30) / 40 = 3.25.
        assert_eq!(a.mean(), 3.25);
        assert_eq!(a.span_secs(), 40.0);
    }

    #[test]
    fn registry_merge_adds_counters_and_pools_metrics() {
        let mut r1 = MetricsRegistry::new(1, 100.0);
        r1.add_counter("rejected", 3);
        let mut h1 = Histogram::new();
        h1.record(1.0);
        r1.insert_histogram("wait", h1);
        let mut g1 = TimeWeightedGauge::new(SimTime::ZERO);
        g1.observe(SimTime::ZERO, 2.0, 0.0);
        g1.finalize(SimTime::from_secs(100.0));
        r1.insert_gauge("depth", g1);

        let mut r2 = MetricsRegistry::new(1, 100.0);
        r2.add_counter("rejected", 4);
        let mut h2 = Histogram::new();
        h2.record(8.0);
        r2.insert_histogram("wait", h2);
        let mut g2 = TimeWeightedGauge::new(SimTime::ZERO);
        g2.observe(SimTime::ZERO, 4.0, 0.0);
        g2.finalize(SimTime::from_secs(100.0));
        r2.insert_gauge("depth", g2);

        r1.merge(r2);
        assert_eq!(r1.trials(), 2);
        assert_eq!(r1.counter("rejected"), 7);
        assert_eq!(r1.histogram("wait").unwrap().count(), 2);
        assert_eq!(r1.gauge("depth").unwrap().mean(), 3.0);

        let snap = r1.snapshot();
        assert_eq!(snap.trials, 2);
        assert_eq!(snap.counter("rejected"), Some(7));
        assert_eq!(snap.histogram("wait").unwrap().count, 2);
        assert_eq!(snap.gauge("depth").unwrap().mean, 3.0);
    }
}
