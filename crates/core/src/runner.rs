//! Deterministic parallel trial execution.
//!
//! Each paper data point averages several independent trials (5 in the
//! paper). Trials differ only in their derived seed, so they can run on
//! separate threads with no shared mutable state; results are collected in
//! trial order, making the parallel run bit-identical to a sequential one.

use crate::config::SimConfig;
use crate::simulation::{SimOutcome, Simulation};
use sct_simcore::rng::splitmix64;
use sct_simcore::Summary;
use serde::{Deserialize, Serialize};

/// How many trials to run and how to derive their seeds.
///
/// ```
/// use sct_core::runner::TrialPlan;
/// let plan = TrialPlan::paper(42);
/// assert_eq!(plan.trials, 5);                   // the paper's 5 trials
/// assert_ne!(plan.seed(0), plan.seed(1));       // independent trial seeds
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrialPlan {
    /// Number of independent trials.
    pub trials: u32,
    /// Base seed; trial `i` runs with `derive_seed(base_seed, i)`.
    pub base_seed: u64,
}

impl TrialPlan {
    /// A plan with the given trial count and base seed.
    pub fn new(trials: u32, base_seed: u64) -> Self {
        assert!(trials > 0, "at least one trial");
        TrialPlan { trials, base_seed }
    }

    /// The paper's setup: 5 trials.
    pub fn paper(base_seed: u64) -> Self {
        Self::new(5, base_seed)
    }

    /// The seed of trial `i`.
    pub fn seed(&self, i: u32) -> u64 {
        derive_seed(self.base_seed, i)
    }
}

/// Mixes a base seed and trial index into an independent trial seed.
pub fn derive_seed(base_seed: u64, trial: u32) -> u64 {
    let mut s = base_seed ^ 0x7261_6E64_5F76_6F64; // "rand_vod"
    let a = splitmix64(&mut s);
    let mut s2 = a ^ (trial as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    splitmix64(&mut s2)
}

/// Runs `plan.trials` independent trials of `config` (the config's own
/// seed is replaced by each trial's derived seed), in parallel across the
/// machine's cores. Results are returned in trial order.
pub fn run_trials(config: &SimConfig, plan: TrialPlan) -> Vec<SimOutcome> {
    let n = plan.trials as usize;
    let mut outcomes: Vec<Option<SimOutcome>> = vec![None; n];
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(n);
    if threads <= 1 || n == 1 {
        for (i, slot) in outcomes.iter_mut().enumerate() {
            let mut cfg = config.clone();
            cfg.seed = plan.seed(i as u32);
            *slot = Some(Simulation::run(&cfg));
        }
    } else {
        std::thread::scope(|scope| {
            let chunk_size = n.div_ceil(threads);
            for (chunk_idx, chunk) in outcomes.chunks_mut(chunk_size).enumerate() {
                let start = chunk_idx * chunk_size;
                scope.spawn(move || {
                    for (j, slot) in chunk.iter_mut().enumerate() {
                        let mut cfg: SimConfig = config.clone();
                        cfg.seed = plan.seed((start + j) as u32);
                        *slot = Some(Simulation::run(&cfg));
                    }
                });
            }
        });
    }
    outcomes
        .into_iter()
        .map(|o| o.expect("trial ran"))
        .collect()
}

/// Summarises the utilization of a set of trial outcomes.
pub fn utilization_summary(outcomes: &[SimOutcome]) -> Summary {
    Summary::of(&outcomes.iter().map(|o| o.utilization).collect::<Vec<f64>>())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sct_workload::SystemSpec;

    fn quick() -> SimConfig {
        SimConfig::builder(SystemSpec::tiny_test())
            .duration_hours(2.0)
            .warmup_hours(0.25)
            .build()
    }

    #[test]
    fn derived_seeds_are_distinct() {
        let plan = TrialPlan::new(16, 99);
        let mut seeds: Vec<u64> = (0..16).map(|i| plan.seed(i)).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 16);
        // And differ across base seeds.
        assert_ne!(TrialPlan::new(1, 1).seed(0), TrialPlan::new(1, 2).seed(0));
    }

    #[test]
    fn parallel_equals_sequential() {
        let cfg = quick();
        let plan = TrialPlan::new(4, 7);
        let par = run_trials(&cfg, plan);
        // Sequential reference.
        let seq: Vec<_> = (0..4)
            .map(|i| {
                let mut c = cfg.clone();
                c.seed = plan.seed(i);
                Simulation::run(&c)
            })
            .collect();
        assert_eq!(par, seq);
    }

    #[test]
    fn summary_aggregates_all_trials() {
        let out = run_trials(&quick(), TrialPlan::new(3, 5));
        let s = utilization_summary(&out);
        assert_eq!(s.n, 3);
        assert!(s.mean > 0.0 && s.mean <= 1.0);
        assert!(s.min <= s.mean && s.mean <= s.max);
    }

    #[test]
    fn paper_plan_is_five_trials() {
        assert_eq!(TrialPlan::paper(0).trials, 5);
    }
}
