//! The discrete-event simulation loop.
//!
//! One trial wires together:
//!
//! ```text
//! RequestGenerator ──arrival──▶ Controller ──admit──▶ ServerEngine (×N)
//!        ▲                          │                      │
//!        └── next arrival           └── DRM among holders  └── wake events
//! ```
//!
//! The loop is event-sourced: a `SimWorld` pops queue entries and
//! dispatches each `Event` variant to its own handler method. Handlers
//! mutate world state and *narrate* what happened as typed [`SimEvent`]
//! records delivered to every attached [`Probe`]. All `SimOutcome`
//! accounting of discrete occurrences lives in the built-in
//! [`MetricsProbe`]; quantities that are integrals of engine state
//! (utilization, goodput) are computed by the epilogue from the engines
//! themselves.
//!
//! Two event kinds dominate the queue:
//!
//! * **Arrival** — the next Poisson request. Handling it may admit a
//!   stream (possibly migrating a victim), then schedules the following
//!   arrival.
//! * **Wake { server, generation }** — the time at which a server's state
//!   changes on its own: a stream completes or a staging buffer fills.
//!   Each server keeps a generation counter; wakes scheduled before the
//!   server's last reallocation are stale and ignored, so the queue never
//!   needs deletions. The `WakeScheduler` owns this idiom — it is the
//!   only place a wake is ever (re-)armed.
//!
//! Between events every stream's `sent` grows linearly at its allocated
//! rate, so engines integrate state exactly (no time-stepping error).
//!
//! # Sharded loop
//!
//! With `SimConfig::shards > 1` the queue is partitioned by a
//! [`ShardMap`]: server-owned events (wakes, failures, repairs) live on
//! the shard owning their server, pause/resume events on the shard of
//! the admitting server, and controller-plane events (arrivals, samples,
//! waitlist expiries, tertiary copy completions) on shard 0. Shards
//! advance under the conservative barrier of
//! [`sct_simcore::ShardedQueue`]; because the merged pop order equals
//! the single-queue order, outcomes are identical for every shard count
//! (and `shards = 1` is the exact pre-sharding loop). With
//! `SimConfig::threads > 1` on an eligible config (see
//! [`SimConfig::parallel_eligible`]) the loop additionally runs
//! *epochs*: every worker shard whose head lies below the plane's head
//! is elected at once and its burst executes on a scoped worker thread
//! against a private [`WorkerQueue`], with emissions buffered and
//! replayed at the barrier in global order — bit-identical outcomes for
//! every thread count (see `SimWorld::run_epoch` and
//! `sct_simcore::parallel`). The four causal-edge interactions that
//! *span* shards — DRM displacement, chain-2 inner hops, cluster-sourced
//! replication copies, evacuation rescues — are surfaced on the explicit
//! cross-shard channel as [`SimEvent::CrossShard`] records; probe output
//! needs no reordering at barriers since events are already globally
//! ordered.

use crate::config::SimConfig;
use crate::events::{AdmitPath, MetricsProbe, Probe, SimEvent};
use crate::exec::{BurstObs, EpochObs, ExecRecorder, ExecStats, RunObs};
use crate::profile::{LoopProfile, LoopProfiler, Phase};
use sct_admission::{
    Admission, AdmissionStats, Controller, CopyLaunch, Relocation, ReplicationManager,
    ReplicationStats, Waitlist, WaitlistStats,
};
use sct_cluster::{ClusterSpec, ReplicaMap, ServerId, ShardMap};
use sct_media::{Catalog, ClientProfile};
use sct_simcore::{Exponential, Rng, ShardedQueue, SimTime, WorkerQueue, ZipfLike};
use sct_transmission::{ServerEngine, Stream, StreamId};
use sct_workload::{calibrated_rate, RequestGenerator};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::time::Instant;

/// Event payloads for the global queue.
#[derive(Clone, Copy, Debug)]
enum Event {
    /// The generator's next request arrives.
    Arrival,
    /// A server predicted a state change (completion / buffer-full).
    Wake { server: u16, generation: u64 },
    /// A server fails (fault-tolerance extension).
    ServerDown(u16),
    /// A failed server comes back online.
    ServerUp(u16),
    /// A client pauses playback (interactivity extension).
    PauseStream(u64),
    /// A client resumes playback.
    ResumeStream(u64),
    /// A tertiary-storage replica copy finishes (dynamic replication).
    CopyDone(u64),
    /// Periodic utilization sample (time-series analysis).
    Sample,
    /// Check the wait queue for timed-out viewers.
    WaitlistExpiry,
}

/// Results of one trial.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SimOutcome {
    /// Megabits sent within the measurement window divided by the maximum
    /// the cluster could send in it — the paper's utilization metric.
    pub utilization: f64,
    /// Per-server utilization over the same window.
    pub per_server_utilization: Vec<f64>,
    /// Admission counters (arrivals, acceptances, rejections, migrations).
    pub stats: AdmissionStats,
    /// Streams that finished transmission.
    pub completions: u64,
    /// Total events processed (arrivals + live wakes).
    pub events_processed: u64,
    /// Length of the measurement window, hours.
    pub measured_hours: f64,
    /// Replicas the placement created.
    pub total_copies: u64,
    /// Server failures that occurred (0 without a failure model).
    pub server_failures: u64,
    /// Pauses actually applied to live streams (0 without interactivity).
    pub pauses_applied: u64,
    /// Dynamic replication activity (zeros without a replication spec).
    pub replication: ReplicationStats,
    /// Utilization net of replication traffic — the share of capacity that
    /// carried *viewer* data. Equal to `utilization` without replication.
    pub goodput: f64,
    /// Wait-queue activity (zeros without a waitlist).
    pub waitlist: WaitlistStats,
    /// Windowed utilization samples (one per `sample_interval_secs`),
    /// empty when sampling is disabled. Window i covers
    /// `[warmup + i·Δ, warmup + (i+1)·Δ)`.
    pub window_utilization: Vec<f64>,
    /// Arrivals per video id (empty unless `track_per_video`).
    pub per_video_arrivals: Vec<u32>,
    /// Rejections per video id (empty unless `track_per_video`). Counted
    /// at arrival time: with a waitlist enabled, a request that is first
    /// queued and later served still appears here, so these sum to the
    /// *pre-reconciliation* rejection count.
    pub per_video_rejections: Vec<u32>,
}

impl SimOutcome {
    /// Fraction of arrivals accepted.
    pub fn acceptance_ratio(&self) -> f64 {
        self.stats.acceptance_ratio()
    }
}

/// The one place wake events are armed. Owns the sharded queue, the
/// shard map, and the horizon, and encapsulates the
/// advance/reschedule/generation/push idiom that every handler needs
/// after touching an engine's schedule.
struct WakeScheduler {
    queue: ShardedQueue<Event>,
    /// Static server→shard partition (single-shard when `shards = 1`).
    map: ShardMap,
    end: SimTime,
}

impl WakeScheduler {
    /// The shard an event is dispatched on: server-owned events go to
    /// their server's shard, everything else to the controller plane
    /// (shard 0). Pause/resume are routed explicitly by the caller via
    /// [`WakeScheduler::push_at_on`] — they follow the admitting server.
    fn shard_for(&self, ev: &Event) -> usize {
        match *ev {
            Event::Wake { server, .. } | Event::ServerDown(server) | Event::ServerUp(server) => {
                self.map.shard_of(ServerId(server))
            }
            _ => 0,
        }
    }

    /// Enqueues `ev` at `t` unless it falls past the horizon.
    fn push_at(&mut self, t: SimTime, ev: Event) {
        if t <= self.end {
            let shard = self.shard_for(&ev);
            self.queue.push(shard, t, ev);
        }
    }

    /// Enqueues on an explicit shard (pause/resume events follow their
    /// stream's admitting server, which only the caller knows).
    fn push_at_on(&mut self, shard: usize, t: SimTime, ev: Event) {
        if t <= self.end {
            self.queue.push(shard, t, ev);
        }
    }

    /// Re-arms `engine`'s wake after its schedule changed: optionally
    /// integrate to `now` first, recompute the next self-transition, and
    /// enqueue a generation-stamped wake for it. `check` runs the
    /// engine's invariant audit afterwards (debug configs). The
    /// integrate/recompute work is charged to the profiler's alloc
    /// phase, the queue push to its wake phase.
    fn rearm(
        &mut self,
        engine: &mut ServerEngine,
        now: SimTime,
        advance: bool,
        check: bool,
        prof: &LoopProfiler,
    ) {
        let t0 = LoopProfiler::clock();
        if advance {
            engine.advance_to(now);
        }
        let wake = engine.reschedule(now);
        if let Some(wake) = wake {
            if wake <= self.end {
                // Alloc and wake-push windows share the boundary read.
                let t1 = LoopProfiler::clock();
                prof.add_between(Phase::Alloc, t0, t1);
                self.queue.push(
                    self.map.shard_of(engine.id()),
                    wake,
                    Event::Wake {
                        server: engine.id().0,
                        generation: engine.generation(),
                    },
                );
                prof.add(Phase::Wake, t1);
            } else {
                prof.add(Phase::Alloc, t0);
            }
        } else {
            prof.add(Phase::Alloc, t0);
        }
        if check {
            engine.check_invariants();
        }
    }

    /// Arms the next wake for an engine whose schedule is already current
    /// at `now`. Admission paths run the allocator inside
    /// [`ServerEngine::admit`], so the post-admission re-arm reuses the
    /// wake time that reschedule computed ([`ServerEngine::last_wake`]) —
    /// re-running the (unchanged) allocation and the stream scan here
    /// would double the hot arrival path's allocator work for a
    /// bit-identical result.
    fn arm(&mut self, engine: &ServerEngine, now: SimTime, check: bool, prof: &LoopProfiler) {
        debug_assert_eq!(
            engine.last_wake(),
            engine.next_event_after(now).map(|(t, _)| t),
            "arm() without a fresh reschedule on {}",
            engine.id()
        );
        if let Some(wake) = engine.last_wake() {
            if wake <= self.end {
                let t1 = LoopProfiler::clock();
                self.queue.push(
                    self.map.shard_of(engine.id()),
                    wake,
                    Event::Wake {
                        server: engine.id().0,
                        generation: engine.generation(),
                    },
                );
                prof.add(Phase::Wake, t1);
            }
        }
        if check {
            engine.check_invariants();
        }
    }
}

/// All mutable state of one trial. Built by [`SimWorld::new`], driven by
/// [`SimWorld::run_loop`], reduced to a [`SimOutcome`] by
/// [`SimWorld::finish`].
struct SimWorld<'a> {
    config: &'a SimConfig,
    catalog: Catalog,
    cluster: ClusterSpec,
    replica_map: ReplicaMap,
    total_copies: u64,
    replication: Option<ReplicationManager>,
    waitlist: Option<Waitlist>,
    generator: RequestGenerator,
    client: ClientProfile,
    view_rate: f64,
    engines: Vec<ServerEngine>,
    controller: Controller,
    sched: WakeScheduler,
    admission_rng: Rng,
    failure_rng: Rng,
    failure_dists: Option<(Exponential, Exponential)>,
    pause_rng: Rng,
    /// Pause/resume location hints: stream id → last known server.
    /// Maintained only when interactivity is configured (nothing reads it
    /// otherwise); entries are pruned when their stream completes or is
    /// dropped, so the map is bounded by the streams concurrently in the
    /// engines, not by total arrivals.
    loc_hint: HashMap<u64, u16>,
    next_stream_id: u64,
    events_processed: u64,
    last_time: SimTime,
    last_sample_mb: f64,
    sample_index: u32,
    /// Always-on wall-clock phase timers, one per shard (a single entry
    /// on the monolithic loop); handlers charge
    /// `profs[cur_shard]`. See [`crate::profile`].
    profs: Vec<LoopProfiler>,
    /// The shard whose run is currently executing events.
    cur_shard: usize,
    /// Reusable worker shells for the parallel epoch path, indexed by
    /// shard (shard 0's shell is never loaded — it is the plane). Kept
    /// across epochs so the steady state allocates nothing.
    epoch_workers: Vec<WorkerQueue<Event, (u32, u32)>>,
    /// Per-shard scratch buffers for the `SimEvent`s a burst emits;
    /// burst logs reference `(lo, hi)` ranges into them and the barrier
    /// replays the ranges in global order.
    epoch_emissions: Vec<Vec<SimEvent>>,
    /// Parallel epochs executed (tests assert the path engaged).
    epochs_run: u64,
    /// Bursts dispatched to worker threads vs run inline on the
    /// coordinator, and classic (plane/fallback) runs — always counted
    /// (integer adds), surfaced by `--profile` through [`ExecStats`].
    bursts_offloaded: u64,
    bursts_inline: u64,
    classic_runs: u64,
    /// Opt-in execution-plane recorder (see [`crate::exec`]). All reads
    /// it triggers are wall-clock only and gated on `is_some()`, per
    /// epoch/run — never per event — so the virtual-time outcome is
    /// bit-identical with recording on.
    exec: Option<&'a mut ExecRecorder>,
    /// Recorder scratch, reused across epochs so a recorded epoch
    /// allocates nothing in steady state: per-elected-shard pending
    /// counts at election, per-burst (worker slot, wall window,
    /// foreign-push count) read before `end_epoch` drains them, and the
    /// assembled burst observations handed to the recorder.
    exec_pending: Vec<u64>,
    exec_burst_meta: Vec<(u32, (Instant, Instant), u64)>,
    exec_bursts: Vec<BurstObs>,
}

impl<'a> SimWorld<'a> {
    /// Builds the world: catalog, cluster, placement, engines, policies,
    /// and the initial event queue (first arrival, failure phases, first
    /// sample tick).
    fn new(config: &'a SimConfig) -> Self {
        // Independent randomness streams so that, e.g., changing the
        // placement cannot perturb the arrival sequence.
        let root = Rng::new(config.seed);
        let mut catalog_rng = root.fork(1);
        let mut placement_rng = root.fork(2);
        let mut cluster_rng = root.fork(3);
        let admission_rng = root.fork(4);

        let catalog = config.system.catalog(&mut catalog_rng);
        let cluster: ClusterSpec = match config.heterogeneity {
            None => config.system.cluster(),
            Some((kind, spread)) => {
                config
                    .system
                    .heterogeneous_cluster(kind, spread, &mut cluster_rng)
            }
        };
        let popularity = ZipfLike::new(catalog.len(), config.theta);
        let replica_map =
            config
                .placement
                .place(&catalog, &cluster, popularity.probs(), &mut placement_rng);
        let total_copies = replica_map.total_copies();
        let replication = config.replication.map(ReplicationManager::new);
        let waitlist = config.waitlist.map(Waitlist::new);

        let rate = calibrated_rate(cluster.total_bandwidth_mbps(), &catalog, popularity.probs());
        let generator = match config.diurnal {
            None => RequestGenerator::new(rate, &popularity, &root),
            Some(d) => RequestGenerator::new_diurnal(
                rate,
                d.amplitude,
                d.period_hours * 3600.0,
                &popularity,
                &root,
            ),
        };

        let client = config.client_profile(catalog.avg_size_mb());
        let view_rate = config.system.view_rate_mbps;

        let engines: Vec<ServerEngine> = cluster
            .ids()
            .map(|id| {
                let mut e =
                    ServerEngine::new(id, cluster.server(id).bandwidth_mbps, config.scheduler);
                e.set_measure_start(config.warmup);
                e
            })
            .collect();
        let mut controller = Controller::new(config.assignment, config.migration);
        controller.evacuation = config.evacuation;

        let shard_map = ShardMap::new(engines.len(), config.shards);
        let n_shards = shard_map.n_shards();
        let mut sched = WakeScheduler {
            queue: ShardedQueue::new(n_shards, 1024),
            map: shard_map,
            end: config.duration,
        };
        sched.push_at(generator.peek_time(), Event::Arrival);

        // Failure process: each server alternates exponential up/down
        // phases, seeded independently of everything else.
        let mut failure_rng = root.fork(5);
        let failure_dists = config.failures.map(|f| {
            (
                Exponential::new(1.0 / (f.mtbf_hours * 3600.0)),
                Exponential::new(1.0 / (f.repair_hours * 3600.0)),
            )
        });
        if let Some((up_time, _)) = &failure_dists {
            for s in 0..engines.len() as u16 {
                let t = SimTime::ZERO + up_time.sample(&mut failure_rng);
                sched.push_at(t, Event::ServerDown(s));
            }
        }

        // Interactivity: pause decisions are drawn at admission from an
        // independent stream; pause/resume events carry the stream id and
        // are resolved against the location-hint map (streams move on
        // migration and vanish on completion, so a stale hint falls back
        // to a scan).
        let pause_rng = root.fork(6);

        // Windowed-utilization sampling starts after the warm-up.
        if let Some(dt) = config.sample_interval_secs {
            sched.push_at(config.warmup + dt, Event::Sample);
        }

        SimWorld {
            config,
            catalog,
            cluster,
            replica_map,
            total_copies,
            replication,
            waitlist,
            generator,
            client,
            view_rate,
            engines,
            controller,
            sched,
            admission_rng,
            failure_rng,
            failure_dists,
            pause_rng,
            loc_hint: HashMap::new(),
            next_stream_id: 0,
            events_processed: 0,
            last_time: SimTime::ZERO,
            last_sample_mb: 0.0,
            sample_index: 0,
            profs: (0..n_shards).map(|_| LoopProfiler::new()).collect(),
            cur_shard: 0,
            epoch_workers: (0..n_shards).map(|_| WorkerQueue::new()).collect(),
            epoch_emissions: (0..n_shards).map(|_| Vec::new()).collect(),
            epochs_run: 0,
            bursts_offloaded: 0,
            bursts_inline: 0,
            classic_runs: 0,
            exec: None,
            exec_pending: Vec::new(),
            exec_burst_meta: Vec::new(),
            exec_bursts: Vec::new(),
        }
    }

    /// Execution-plane counters for `--profile` output.
    fn exec_stats(&self) -> ExecStats {
        ExecStats {
            epochs_run: self.epochs_run,
            bursts_offloaded: self.bursts_offloaded,
            bursts_inline: self.bursts_inline,
            classic_runs: self.classic_runs,
        }
    }

    /// Pops and dispatches events until every shard drains. Execution
    /// alternates barriers (shard election + horizon, charged to
    /// [`Phase::Barrier`] on the elected shard) and runs that drain the
    /// elected shard up to its cross-shard horizon; with one shard the
    /// barrier is vacuous and a single run drains the whole queue.
    /// Staleness of wakes is decided here, before the event counts as
    /// processed.
    fn run_loop(&mut self, probes: &mut [&mut dyn Probe]) {
        let multi = self.sched.queue.n_shards() > 1;
        // Parallel epochs engage only when the config's features keep
        // worker shards self-contained (wake events only, no mid-burst
        // global state) *and* no attached probe consumes state views —
        // otherwise every run below falls through to the classic
        // single-threaded protocol, which handles everything.
        let par =
            multi && self.config.parallel_eligible() && probes.iter().all(|p| !p.uses_state());
        loop {
            // Drain every electable epoch before (and between) classic
            // runs; the classic run that follows is then a plane run,
            // since the epochs left no worker head below the plane's.
            if par {
                while self.run_epoch(probes) {}
            }
            // Recorder timestamps are kept apart from `tb`: the
            // profiler's barrier charge stays gated on `multi`, so the
            // monolithic profile is unchanged with recording on.
            let t_elect = self.exec.as_ref().map(|_| LoopProfiler::clock());
            let tb = if multi {
                Some(LoopProfiler::clock())
            } else {
                None
            };
            let Some(token) = self.sched.queue.begin_run() else {
                break;
            };
            let shard = token.shard();
            self.cur_shard = shard;
            let pending_at_elect = self
                .exec
                .as_ref()
                .map(|_| self.sched.queue.shard_len(shard) as u64);
            // Election snapshot for the run summary (virtual time only,
            // so the summary stream stays deterministic). `multi` only:
            // the monolithic loop has no barrier to observe.
            let election = if multi {
                self.sched.queue.run_head().map(|(head, _)| {
                    let slack = self.sched.queue.run_horizon().map(|(h, _)| h - head);
                    (head, slack)
                })
            } else {
                None
            };
            if let Some(tb) = tb {
                self.profs[shard].add(Phase::Barrier, tb);
            }
            let t_elect_end = self.exec.as_ref().map(|_| LoopProfiler::clock());
            let events_before = self.events_processed;
            while let Some(entry) = self.sched.queue.pop_run(&token) {
                let now = entry.time;
                debug_assert!(now >= self.last_time, "event order violated");
                self.last_time = now;
                if let Event::Wake { server, generation } = entry.payload {
                    if generation != self.engines[server as usize].generation() {
                        continue; // superseded by a later reallocation
                    }
                }
                self.events_processed += 1;
                let t0 = LoopProfiler::clock();
                match entry.payload {
                    Event::Arrival => self.on_arrival(now, probes),
                    Event::Wake { server, .. } => self.on_wake(now, server, probes),
                    Event::ServerDown(server) => self.on_server_down(now, server, probes),
                    Event::ServerUp(server) => self.on_server_up(now, server, probes),
                    Event::CopyDone(id) => self.on_copy_done(now, id, probes),
                    Event::WaitlistExpiry => self.on_waitlist_expiry(now, probes),
                    Event::Sample => self.on_sample(now, probes),
                    Event::PauseStream(id) => self.on_pause_resume(now, id, true, probes),
                    Event::ResumeStream(id) => self.on_pause_resume(now, id, false, probes),
                }
                // The publish window ends where the dispatch window does,
                // so the two phases share the closing timestamp (one
                // clock read saved per event).
                let t1 = LoopProfiler::clock();
                self.publish_state(now, probes);
                let t2 = LoopProfiler::clock();
                self.profs[self.cur_shard].add_between(Phase::Probe, t1, t2);
                self.profs[self.cur_shard].add_between(Phase::Dispatch, t0, t2);
            }
            if let Some((start, slack)) = election {
                let summary = crate::events::RunSummary {
                    shard: shard as u16,
                    n_shards: self.sched.queue.n_shards() as u16,
                    start,
                    slack_secs: slack,
                    events: self.events_processed - events_before,
                    stalled: self.sched.queue.shard_len(shard) > 0,
                };
                let ts = LoopProfiler::clock();
                crate::events::emit_run(probes, &summary);
                self.profs[shard].add(Phase::Barrier, ts);
            }
            if self.exec.is_some() {
                let end = LoopProfiler::clock();
                let slack_secs = election.as_ref().and_then(|(_, slack)| *slack);
                let stalled = self.sched.queue.shard_len(shard) > 0;
                let events = self.events_processed - events_before;
                if let Some(rec) = self.exec.as_mut() {
                    rec.push_run(RunObs {
                        shard: shard as u32,
                        elect_start: t_elect.expect("recorder timestamps set together"),
                        elect_end: t_elect_end.expect("recorder timestamps set together"),
                        end,
                        events,
                        pending: pending_at_elect.expect("recorder timestamps set together"),
                        slack_secs,
                        stalled,
                    });
                }
            }
            self.classic_runs += 1;
            self.sched.queue.end_run(token);
        }
    }

    /// Attempts one parallel epoch: elects every worker shard whose head
    /// lies below the plane's head, runs their bursts — inline, or
    /// chunked over scoped worker threads when enough events are pending
    /// to amortize the spawns — and merges the burst logs at the barrier
    /// in global `(time, seq)` order, replaying each event's buffered
    /// emissions at its merged turn. Returns `false` when no shard is
    /// electable; the caller then falls back to a classic (plane) run.
    ///
    /// Eligibility (checked by the caller) guarantees worker shards hold
    /// only `Wake` events, whose handling touches exactly one engine and
    /// re-arms on its own shard — so a burst needs nothing beyond its
    /// [`WorkerCtx`], and the merged outcome is bit-identical to the
    /// sequential loop for any thread count (see
    /// `sct_simcore::parallel` for the full argument).
    fn run_epoch(&mut self, probes: &mut [&mut dyn Probe]) -> bool {
        let tb = LoopProfiler::clock();
        let Some(token) = self.sched.queue.begin_epoch(0) else {
            return false;
        };
        let n = token.n_elected();
        let n_shards = self.sched.queue.n_shards();
        let pending: usize = (0..n)
            .map(|i| self.sched.queue.shard_len(token.shard(i)))
            .sum();
        // Per-elected-shard pending counts, recorder only (the queues
        // detach into the worker shells below, so read them here).
        if self.exec.is_some() {
            self.exec_pending.clear();
            for i in 0..n {
                let len = self.sched.queue.shard_len(token.shard(i)) as u64;
                self.exec_pending.push(len);
            }
        }

        // Partition `engines` into one disjoint slice per elected shard
        // (shard server ranges are contiguous and ascending, so a single
        // left-to-right sweep splits them off), and arm each shard's
        // reusable worker shell with its detached queue.
        let mut ctxs: Vec<Option<WorkerCtx<'_>>> = (0..n).map(|_| None).collect();
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_unstable_by_key(|&i| token.shard(i));
        let mut rest: &mut [ServerEngine] = &mut self.engines;
        let mut offset = 0usize;
        for &i in &order {
            let shard = token.shard(i);
            let range = self.sched.map.servers_of(shard);
            let tail = rest.split_at_mut(range.start - offset).1;
            let (mine, tail) = tail.split_at_mut(range.end - range.start);
            rest = tail;
            offset = range.end;
            let mut w = std::mem::take(&mut self.epoch_workers[shard]);
            self.sched.queue.load_worker(&token, i, &mut w);
            ctxs[i] = Some(WorkerCtx {
                w,
                engines: mine,
                base: range.start,
                emissions: std::mem::take(&mut self.epoch_emissions[shard]),
                prof: LoopProfiler::new(),
                window: (tb, tb),
                end: self.sched.end,
                check: self.config.check_invariants,
            });
        }
        let mut ctxs: Vec<WorkerCtx<'_>> = ctxs.into_iter().map(Option::unwrap).collect();
        self.profs[0].add(Phase::Barrier, tb);
        let t_elect_end = self.exec.as_ref().map(|_| LoopProfiler::clock());

        // Burst phase. Small epochs run inline: spawning threads for a
        // handful of events costs more than it saves, and thread count
        // never affects the outcome — only which thread runs a burst.
        let threads = self.config.threads.min(n);
        let offloaded = threads >= 2 && pending >= self.config.offload_min_events;
        let chunk = if offloaded {
            n.div_ceil(threads)
        } else {
            n.max(1)
        };
        if offloaded {
            std::thread::scope(|s| {
                let mut chunks = ctxs.chunks_mut(chunk);
                let first = chunks.next();
                let handles: Vec<_> = chunks
                    .map(|c| {
                        s.spawn(move || {
                            for ctx in c {
                                worker_burst(ctx);
                            }
                        })
                    })
                    .collect();
                if let Some(c) = first {
                    for ctx in c {
                        worker_burst(ctx);
                    }
                }
                for h in handles {
                    h.join().expect("worker burst panicked");
                }
            });
        } else {
            for ctx in &mut ctxs {
                worker_burst(ctx);
            }
        }

        if offloaded {
            self.bursts_offloaded += n as u64;
        } else {
            self.bursts_inline += n as u64;
        }

        // Barrier: fold the burst profilers into their shards' timers,
        // then merge the logs in global order, replaying emissions.
        let tm = LoopProfiler::clock();
        let meta: Vec<(usize, (SimTime, u64))> =
            (0..n).map(|i| (token.shard(i), token.head(i))).collect();
        let horizon = token.horizon();
        let mut shells: Vec<WorkerQueue<Event, (u32, u32)>> = Vec::with_capacity(n);
        let mut emissions: Vec<Vec<SimEvent>> = Vec::with_capacity(n);
        // Per-burst recorder scratch: worker slot, wall window, and the
        // foreign-push count — all of which are gone after `end_epoch`
        // (the shells' foreign buffers drain at the merge).
        self.exec_burst_meta.clear();
        for (i, ctx) in ctxs.into_iter().enumerate() {
            if self.exec.is_some() {
                let worker = if offloaded { (i / chunk) as u32 } else { 0 };
                self.exec_burst_meta
                    .push((worker, ctx.window, ctx.w.foreign_pushes() as u64));
            }
            self.profs[ctx.w.shard()].absorb(&ctx.prof);
            shells.push(ctx.w);
            emissions.push(ctx.emissions);
        }
        let mut idx_of = vec![usize::MAX; n_shards];
        for (i, &(shard, _)) in meta.iter().enumerate() {
            idx_of[shard] = i;
        }
        let mut last_time = self.last_time;
        let mut n_events = 0u64;
        {
            let mut worker_refs: Vec<&mut WorkerQueue<Event, (u32, u32)>> =
                shells.iter_mut().collect();
            self.sched
                .queue
                .end_epoch(token, &mut worker_refs, |shard, time, &(lo, hi)| {
                    debug_assert!(time >= last_time, "event order violated");
                    last_time = time;
                    n_events += 1;
                    for ev in &emissions[idx_of[shard]][lo as usize..hi as usize] {
                        crate::events::emit(probes, time, ev);
                    }
                });
        }
        self.last_time = last_time;
        self.events_processed += n_events;
        self.epochs_run += 1;
        self.profs[0].add(Phase::Barrier, tm);
        let t_merge_end = self.exec.as_ref().map(|_| LoopProfiler::clock());

        // One run summary per burst, in elected (head-key) order — the
        // order the sequential protocol would first elect each shard.
        for (i, &(shard, head)) in meta.iter().enumerate() {
            let summary = crate::events::RunSummary {
                shard: shard as u16,
                n_shards: n_shards as u16,
                start: head.0,
                slack_secs: horizon.map(|h| h.0 - head.0),
                events: shells[i].events(),
                stalled: shells[i].stalled(),
            };
            let ts = LoopProfiler::clock();
            crate::events::emit_run(probes, &summary);
            self.profs[shard].add(Phase::Barrier, ts);
        }
        // Burst stall flags are only valid now: `end_epoch` recomputes
        // them when it folds unconsumed pushes back into the shards.
        if self.exec.is_some() {
            self.exec_bursts.clear();
            for (i, &(shard, head)) in meta.iter().enumerate() {
                let (worker, window, foreign) = self.exec_burst_meta[i];
                self.exec_bursts.push(BurstObs {
                    shard: shard as u32,
                    worker,
                    start: window.0,
                    end: window.1,
                    events: shells[i].events(),
                    pending: self.exec_pending[i],
                    foreign_pushes: foreign,
                    slack_secs: horizon.map(|h| h.0 - head.0),
                    stalled: shells[i].stalled(),
                });
            }
        }
        for (shell, mut emis) in shells.into_iter().zip(emissions) {
            let shard = shell.shard();
            emis.clear();
            self.epoch_emissions[shard] = emis;
            self.epoch_workers[shard] = shell;
        }
        if let Some(rec) = self.exec.as_mut() {
            rec.push_epoch(
                EpochObs {
                    elect_start: tb,
                    elect_end: t_elect_end.expect("recorder timestamps set together"),
                    merge_start: tm,
                    merge_end: t_merge_end.expect("recorder timestamps set together"),
                    reattach_end: LoopProfiler::clock(),
                    pending: pending as u64,
                    offloaded,
                    threads_used: if offloaded { threads as u32 } else { 1 },
                },
                &self.exec_bursts,
            );
        }
        true
    }

    /// Surfaces the cross-shard slice of `relocs` on the explicit
    /// channel: one [`SimEvent::CrossShard`] per relocation whose
    /// endpoints live on different shards. A no-op on the monolithic
    /// loop, so `shards = 1` traces are bit-identical to the
    /// pre-sharding ones.
    fn emit_cross_shard(&self, relocs: &[Relocation], now: SimTime, probes: &mut [&mut dyn Probe]) {
        if self.sched.queue.n_shards() <= 1 {
            return;
        }
        for r in relocs {
            let from_shard = self.sched.map.shard_of(r.from);
            let to_shard = self.sched.map.shard_of(r.to);
            if from_shard == to_shard {
                continue;
            }
            self.profs[self.cur_shard].emit(
                probes,
                now,
                &SimEvent::CrossShard {
                    stream: r.stream.0,
                    from: r.from.0,
                    to: r.to.0,
                    from_shard: from_shard as u16,
                    to_shard: to_shard as u16,
                    edge: r.kind.into(),
                },
            );
        }
    }

    /// Offers every probe a read-only view of world state at the event
    /// boundary just processed. Rates only change inside handlers, so the
    /// state between two published views is exactly linear — which is what
    /// makes the telemetry gauges exact (see `crate::metrics`). The caller
    /// charges this to [`Phase::Probe`].
    fn publish_state(&self, now: SimTime, probes: &mut [&mut dyn Probe]) {
        let view = crate::metrics::StateView::new(
            now,
            &self.engines,
            self.waitlist.as_ref().map_or(0, Waitlist::len),
        );
        for p in probes.iter_mut() {
            p.on_state(now, &view);
        }
    }

    /// One Poisson arrival: admission decision (direct / DRM / chain /
    /// reject), waitlist and replication fallbacks for rejections, pause
    /// scheduling for acceptances, wake re-arming, next arrival.
    fn on_arrival(&mut self, now: SimTime, probes: &mut [&mut dyn Probe]) {
        let req = self.generator.next_request();
        debug_assert!(req.at == now);
        let video = self.catalog.video(req.video);
        let stream = Stream::new(
            StreamId(self.next_stream_id),
            req.video,
            video.size_mb(),
            self.view_rate,
            self.client,
            now,
        );
        self.next_stream_id += 1;
        let length_secs = video.size_mb() / self.view_rate;
        let stream_id = self.next_stream_id - 1;
        let size_mb = video.size_mb();
        let (admission, touched) = self.controller.admit(
            stream,
            &mut self.engines,
            &self.replica_map,
            now,
            &mut self.admission_rng,
        );
        let track_hints = self.config.interactivity.is_some();
        let vid = req.video.index() as u32;
        match admission {
            Admission::Direct { server } => {
                if track_hints {
                    self.loc_hint.insert(stream_id, server.0);
                }
                self.profs[self.cur_shard].emit(
                    probes,
                    now,
                    &SimEvent::Admitted {
                        stream: stream_id,
                        video: vid,
                        server: server.0,
                        path: AdmitPath::Direct,
                    },
                );
            }
            Admission::WithMigration { server, victim, to } => {
                if track_hints {
                    self.loc_hint.insert(stream_id, server.0);
                    self.loc_hint.insert(victim.0, to.0);
                }
                self.profs[self.cur_shard].emit(
                    probes,
                    now,
                    &SimEvent::Admitted {
                        stream: stream_id,
                        video: vid,
                        server: server.0,
                        path: AdmitPath::Migrated,
                    },
                );
                self.profs[self.cur_shard].emit(
                    probes,
                    now,
                    &SimEvent::Migrated {
                        stream: victim.0,
                        from: server.0,
                        to: to.0,
                        emergency: false,
                    },
                );
            }
            Admission::WithChain {
                server,
                first,
                second,
            } => {
                if track_hints {
                    self.loc_hint.insert(stream_id, server.0);
                    self.loc_hint.insert(first.0 .0, first.1 .0);
                    self.loc_hint.insert(second.0 .0, second.1 .0);
                }
                self.profs[self.cur_shard].emit(
                    probes,
                    now,
                    &SimEvent::Admitted {
                        stream: stream_id,
                        video: vid,
                        server: server.0,
                        path: AdmitPath::Chained,
                    },
                );
                self.profs[self.cur_shard].emit(
                    probes,
                    now,
                    &SimEvent::Migrated {
                        stream: first.0 .0,
                        from: server.0,
                        to: first.1 .0,
                        emergency: false,
                    },
                );
                self.profs[self.cur_shard].emit(
                    probes,
                    now,
                    &SimEvent::Migrated {
                        stream: second.0 .0,
                        from: first.1 .0,
                        to: second.1 .0,
                        emergency: false,
                    },
                );
            }
            Admission::Rejected => {
                self.profs[self.cur_shard].emit(
                    probes,
                    now,
                    &SimEvent::Rejected {
                        stream: stream_id,
                        video: vid,
                    },
                );
            }
        }
        self.emit_cross_shard(&admission.relocations(), now, probes);
        if !admission.accepted() {
            if let Some(wl) = self.waitlist.as_mut() {
                if let Some(expires) = wl.enqueue(
                    StreamId(stream_id),
                    req.video,
                    size_mb,
                    self.view_rate,
                    self.client,
                    now,
                ) {
                    self.sched.push_at(expires, Event::WaitlistExpiry);
                    self.profs[self.cur_shard].emit(
                        probes,
                        now,
                        &SimEvent::WaitlistQueued {
                            stream: stream_id,
                            video: vid,
                        },
                    );
                }
            }
            let mut copy_reloc: Option<Relocation> = None;
            if let Some(mgr) = self.replication.as_mut() {
                match mgr.maybe_replicate(
                    req.video,
                    size_mb,
                    &mut self.next_stream_id,
                    &mut self.engines,
                    &self.replica_map,
                    &self.cluster,
                    now,
                ) {
                    Some(CopyLaunch::FromServer { source, stream }) => {
                        copy_reloc = mgr
                            .in_flight()
                            .iter()
                            .find(|p| p.stream == stream)
                            .and_then(|p| p.relocation());
                        self.sched.arm(
                            &self.engines[source.index()],
                            now,
                            false,
                            &self.profs[self.cur_shard],
                        );
                        self.profs[self.cur_shard].emit(
                            probes,
                            now,
                            &SimEvent::CopyStarted {
                                copy: stream.0,
                                video: vid,
                                tertiary: false,
                            },
                        );
                    }
                    Some(CopyLaunch::FromTertiary {
                        token,
                        done_in_secs,
                    }) => {
                        // Copies still in flight at the end of the run
                        // simply never materialise.
                        self.sched
                            .push_at(now + done_in_secs, Event::CopyDone(token.0));
                        self.profs[self.cur_shard].emit(
                            probes,
                            now,
                            &SimEvent::CopyStarted {
                                copy: token.0,
                                video: vid,
                                tertiary: true,
                            },
                        );
                    }
                    None => {}
                }
            }
            if let Some(r) = copy_reloc {
                self.emit_cross_shard(&[r], now, probes);
            }
        }
        if let Some(admit_server) = admission.server() {
            if let Some(ps) = self.config.interactivity {
                if self.pause_rng.chance(ps.probability) {
                    let at = now + self.pause_rng.range_f64(0.0, length_secs);
                    let dur = self
                        .pause_rng
                        .range_f64(ps.min_pause_secs, ps.max_pause_secs);
                    if at <= self.sched.end {
                        // Pause/resume follow the admitting server's
                        // shard; the handler's scan fallback still covers
                        // streams that migrated after admission.
                        let shard = self.sched.map.shard_of(admit_server);
                        self.sched
                            .push_at_on(shard, at, Event::PauseStream(stream_id));
                        self.sched
                            .push_at_on(shard, at + dur, Event::ResumeStream(stream_id));
                    }
                }
            }
        }
        for sid in touched {
            self.sched.arm(
                &self.engines[sid.index()],
                now,
                self.config.check_invariants,
                &self.profs[self.cur_shard],
            );
        }
        self.sched
            .push_at(self.generator.peek_time(), Event::Arrival);
    }

    /// A live wake: integrate the server, reap finished streams, feed the
    /// waitlist with any freed slots, and re-arm.
    fn on_wake(&mut self, now: SimTime, server: u16, probes: &mut [&mut dyn Probe]) {
        let t0 = LoopProfiler::clock();
        let e = &mut self.engines[server as usize];
        e.advance_to(now);
        self.profs[self.cur_shard].add(Phase::Alloc, t0);
        let e = &mut self.engines[server as usize];
        let mut slots_freed = false;
        for done in e.reap_finished(now) {
            slots_freed = true;
            if done.is_copy() {
                let installed = self
                    .replication
                    .as_mut()
                    .and_then(|mgr| mgr.on_copy_finished(done.id, &mut self.replica_map))
                    .is_some();
                self.profs[self.cur_shard].emit(
                    probes,
                    now,
                    &SimEvent::CopyDone {
                        copy: done.id.0,
                        installed,
                    },
                );
            } else {
                self.loc_hint.remove(&done.id.0);
                self.profs[self.cur_shard].emit(
                    probes,
                    now,
                    &SimEvent::Completed {
                        stream: done.id.0,
                        server,
                    },
                );
            }
        }
        if slots_freed {
            self.serve_from_waitlist(now, probes);
        }
        self.sched.rearm(
            &mut self.engines[server as usize],
            now,
            false,
            self.config.check_invariants,
            &self.profs[self.cur_shard],
        );
    }

    /// Expires impatient waiters, then retries the queue against freed
    /// slots, re-arming every server that took a stream. Shared by the
    /// wake and repair paths.
    fn serve_from_waitlist(&mut self, now: SimTime, probes: &mut [&mut dyn Probe]) {
        let Some(wl) = self.waitlist.as_mut() else {
            return;
        };
        let expired = wl.expire(now);
        if expired > 0 {
            self.profs[self.cur_shard].emit(
                probes,
                now,
                &SimEvent::WaitlistExpired {
                    count: expired as u32,
                },
            );
        }
        let outcome = wl.try_serve(&mut self.engines, &self.replica_map, now);
        for w in &outcome.served {
            self.profs[self.cur_shard].emit(
                probes,
                now,
                &SimEvent::WaitlistServed {
                    stream: w.id.0,
                    video: w.video.index() as u32,
                    server: w.server.0,
                    batched: w.batched,
                    waited_secs: w.waited_secs,
                },
            );
        }
        for sid in outcome.touched {
            self.sched.arm(
                &self.engines[sid.index()],
                now,
                false,
                &self.profs[self.cur_shard],
            );
        }
    }

    /// A server fails: abort its copies, evacuate what DRM can save, drop
    /// the rest, and schedule the repair.
    fn on_server_down(&mut self, now: SimTime, server: u16, probes: &mut [&mut dyn Probe]) {
        let taken = self.engines[server as usize].fail(now);
        if let Some(mgr) = self.replication.as_mut() {
            mgr.on_server_failed(ServerId(server));
        }
        let evac = self.controller.evacuate(
            taken,
            ServerId(server),
            &mut self.engines,
            &self.replica_map,
            now,
        );
        self.profs[self.cur_shard].emit(
            probes,
            now,
            &SimEvent::ServerDown {
                server,
                relocated: (evac.relocated.len() + evac.restarted.len()) as u32,
                dropped: evac.dropped.len() as u32,
            },
        );
        // Best-effort restarts are relocations too (just non-seamless),
        // so they share the emergency-migration event; the stats split
        // them out via `restarted_on_failure`.
        for &(stream, to) in evac.relocated.iter().chain(&evac.restarted) {
            self.profs[self.cur_shard].emit(
                probes,
                now,
                &SimEvent::Migrated {
                    stream: stream.0,
                    from: server,
                    to: to.0,
                    emergency: true,
                },
            );
        }
        self.emit_cross_shard(&evac.relocations(ServerId(server)), now, probes);
        for stream in &evac.dropped {
            self.loc_hint.remove(&stream.0);
        }
        for sid in evac.touched {
            self.sched.arm(
                &self.engines[sid.index()],
                now,
                self.config.check_invariants,
                &self.profs[self.cur_shard],
            );
        }
        let repair = self
            .failure_dists
            .as_ref()
            .expect("failure event without a failure model")
            .1
            .sample(&mut self.failure_rng);
        self.sched.push_at(now + repair, Event::ServerUp(server));
    }

    /// A failed server returns (empty): give the waitlist first claim on
    /// the fresh capacity and schedule the next failure.
    fn on_server_up(&mut self, now: SimTime, server: u16, probes: &mut [&mut dyn Probe]) {
        self.engines[server as usize].repair(now);
        self.profs[self.cur_shard].emit(probes, now, &SimEvent::ServerUp { server });
        self.serve_from_waitlist(now, probes);
        let up_time = self
            .failure_dists
            .as_ref()
            .expect("repair event without a failure model")
            .0
            .sample(&mut self.failure_rng);
        self.sched.push_at(now + up_time, Event::ServerDown(server));
    }

    /// A tertiary-sourced copy completes (the target may have failed
    /// mid-copy, in which case nothing installs).
    fn on_copy_done(&mut self, now: SimTime, id: u64, probes: &mut [&mut dyn Probe]) {
        if let Some(mgr) = self.replication.as_mut() {
            let installed = mgr
                .on_copy_finished(StreamId(id), &mut self.replica_map)
                .is_some();
            self.profs[self.cur_shard].emit(
                probes,
                now,
                &SimEvent::CopyDone {
                    copy: id,
                    installed,
                },
            );
        }
    }

    /// A waiter's patience deadline: purge the expired prefix.
    fn on_waitlist_expiry(&mut self, now: SimTime, probes: &mut [&mut dyn Probe]) {
        if let Some(wl) = self.waitlist.as_mut() {
            let expired = wl.expire(now);
            if expired > 0 {
                self.profs[self.cur_shard].emit(
                    probes,
                    now,
                    &SimEvent::WaitlistExpired {
                        count: expired as u32,
                    },
                );
            }
        }
    }

    /// Periodic utilization sample: integrate everyone, difference the
    /// measured megabits against the previous tick.
    fn on_sample(&mut self, now: SimTime, probes: &mut [&mut dyn Probe]) {
        let dt = self
            .config
            .sample_interval_secs
            .expect("sample event without sampling enabled");
        let t0 = LoopProfiler::clock();
        for e in self.engines.iter_mut() {
            e.advance_to(now);
        }
        self.profs[self.cur_shard].add(Phase::Alloc, t0);
        let total: f64 = self.engines.iter().map(|e| e.measured_mb()).sum();
        let utilization =
            (total - self.last_sample_mb) / (self.cluster.total_bandwidth_mbps() * dt);
        self.profs[self.cur_shard].emit(
            probes,
            now,
            &SimEvent::WindowSample {
                index: self.sample_index,
                utilization,
            },
        );
        self.sample_index += 1;
        self.last_sample_mb = total;
        self.sched.push_at(now + dt, Event::Sample);
    }

    /// A pause or resume lands: resolve the stream via the location hint
    /// (falling back to a scan — it may have migrated), apply, re-arm.
    fn on_pause_resume(
        &mut self,
        now: SimTime,
        id: u64,
        paused: bool,
        probes: &mut [&mut dyn Probe],
    ) {
        let sid = StreamId(id);
        let mut found = None;
        if let Some(&hint) = self.loc_hint.get(&id) {
            if self.engines[hint as usize].set_paused(sid, paused, now) {
                found = Some(hint);
            }
        }
        if found.is_none() {
            for e in self.engines.iter_mut() {
                let eid = e.id().0;
                if e.set_paused(sid, paused, now) {
                    self.loc_hint.insert(id, eid);
                    found = Some(eid);
                    break;
                }
            }
        }
        if let Some(server) = found {
            self.profs[self.cur_shard].emit(
                probes,
                now,
                &if paused {
                    SimEvent::Paused { stream: id, server }
                } else {
                    SimEvent::Resumed { stream: id, server }
                },
            );
            self.sched.rearm(
                &mut self.engines[server as usize],
                now,
                false,
                self.config.check_invariants,
                &self.profs[self.cur_shard],
            );
        } else {
            // Stream finished (or was dropped) before the pause point — a
            // client-side no-op.
            self.loc_hint.remove(&id);
        }
    }

    /// Integrates the tail of every engine to the horizon and reduces the
    /// world plus the accumulated metrics to a [`SimOutcome`].
    fn finish(mut self, metrics: MetricsProbe) -> SimOutcome {
        let end = self.sched.end;
        for e in &mut self.engines {
            e.advance_to(end);
            if self.config.check_invariants {
                e.check_invariants();
            }
        }

        let measured_secs = end - self.config.warmup;
        let per_server_utilization: Vec<f64> = self
            .engines
            .iter()
            .map(|e| e.measured_mb() / (e.capacity_mbps() * measured_secs))
            .collect();
        let total_sent: f64 = self.engines.iter().map(|e| e.measured_mb()).sum();
        let utilization = total_sent / (self.cluster.total_bandwidth_mbps() * measured_secs);
        self.controller.stats.check();

        // Goodput nets out replication traffic that consumed *server*
        // bandwidth: completed cluster-sourced copies plus the transmitted
        // part of still-running engine copies. Tertiary-sourced copies ride
        // the tertiary drive and do not reduce goodput. A copy overlapping
        // the warm-up window is attributed entirely to the measurement
        // window — a negligible conservative bias for the durations we run.
        // Waitlist reconciliation: a request served from the queue was
        // counted as rejected at arrival; it ended up accepted.
        let wl_stats = self.waitlist.as_ref().map(|w| w.stats).unwrap_or_default();
        self.controller.stats.rejected -= wl_stats.served;
        self.controller.stats.accepted_direct += wl_stats.served;
        self.controller.stats.accepted_mb += wl_stats.served_mb;
        self.controller.stats.check();

        let rep_stats = self
            .replication
            .as_ref()
            .map(|m| m.stats)
            .unwrap_or_default();
        let mut copy_mb = rep_stats.cluster_copy_mb;
        for e in &self.engines {
            copy_mb += e
                .streams()
                .iter()
                .filter(|s| s.is_copy())
                .map(|s| s.sent_mb())
                .sum::<f64>();
        }
        let goodput = utilization - copy_mb / (self.cluster.total_bandwidth_mbps() * measured_secs);

        SimOutcome {
            utilization,
            per_server_utilization,
            stats: self.controller.stats,
            completions: metrics.completions,
            events_processed: self.events_processed,
            measured_hours: measured_secs / 3600.0,
            total_copies: self.total_copies,
            server_failures: metrics.server_failures,
            pauses_applied: metrics.pauses_applied,
            replication: rep_stats,
            waitlist: wl_stats,
            goodput: goodput.max(0.0),
            window_utilization: metrics.window_utilization,
            per_video_arrivals: metrics.per_video_arrivals,
            per_video_rejections: metrics.per_video_rejections,
        }
    }
}

/// Everything one epoch burst may touch: the elected shard's private
/// queue, its engines, and per-burst emission/profiler scratch. Owning
/// the lot makes the struct `Send`, so a burst can run on any scoped
/// worker thread — or inline — with identical results.
struct WorkerCtx<'e> {
    w: WorkerQueue<Event, (u32, u32)>,
    /// The elected shard's engines (`servers_of(shard)` slice).
    engines: &'e mut [ServerEngine],
    /// Server id of `engines[0]` (the slice is contiguous).
    base: usize,
    /// Events emitted by this burst; log entries carry `(lo, hi)` ranges.
    emissions: Vec<SimEvent>,
    /// Fresh per-burst profiler, absorbed into the shard's at the barrier.
    prof: LoopProfiler,
    /// The burst's wall window, stamped by [`worker_burst`] on entry and
    /// exit (two clock reads per burst — an execution-plane observation
    /// that never feeds back into the run).
    window: (Instant, Instant),
    end: SimTime,
    check: bool,
}

/// Runs one shard's epoch burst to exhaustion. The body mirrors the
/// classic loop's wake path — staleness check, integrate, reap, re-arm
/// — except that emissions are buffered for the barrier instead of
/// reaching probes directly, and the re-armed wake goes to the private
/// queue. Parallel eligibility guarantees the worker shard holds only
/// wake events and that the wake path needs no waitlist, replication,
/// or location-hint state.
fn worker_burst(ctx: &mut WorkerCtx<'_>) {
    let t_start = LoopProfiler::clock();
    while let Some((now, ev)) = ctx.w.pop() {
        let Event::Wake { server, generation } = ev else {
            unreachable!("non-wake event on a worker shard of an eligible config");
        };
        let e = &mut ctx.engines[server as usize - ctx.base];
        if generation != e.generation() {
            ctx.w.discard(); // superseded by a later reallocation
            continue;
        }
        let t0 = LoopProfiler::clock();
        e.advance_to(now);
        ctx.prof.add(Phase::Alloc, t0);
        let lo = ctx.emissions.len() as u32;
        for done in e.reap_finished(now) {
            debug_assert!(!done.is_copy(), "replica copy without replication");
            ctx.emissions.push(SimEvent::Completed {
                stream: done.id.0,
                server,
            });
        }
        let ta = LoopProfiler::clock();
        if let Some(wake) = e.reschedule(now) {
            if wake <= ctx.end {
                let t1 = LoopProfiler::clock();
                ctx.prof.add_between(Phase::Alloc, ta, t1);
                ctx.w.push(
                    wake,
                    Event::Wake {
                        server,
                        generation: e.generation(),
                    },
                );
                ctx.prof.add(Phase::Wake, t1);
            } else {
                ctx.prof.add(Phase::Alloc, ta);
            }
        } else {
            ctx.prof.add(Phase::Alloc, ta);
        }
        if ctx.check {
            e.check_invariants();
        }
        let hi = ctx.emissions.len() as u32;
        let t2 = LoopProfiler::clock();
        ctx.prof.add_between(Phase::Dispatch, t0, t2);
        ctx.w.record((lo, hi));
    }
    ctx.window = (t_start, LoopProfiler::clock());
}

/// Runs trials described by [`SimConfig`].
pub struct Simulation;

impl Simulation {
    /// Runs one complete trial. Deterministic in `config` (including the
    /// seed).
    pub fn run(config: &SimConfig) -> SimOutcome {
        Self::run_with_probes(config, &mut [])
    }

    /// Runs one trial with extra [`Probe`] observers attached alongside
    /// the built-in metrics probe. Probes see every
    /// [`SimEvent`] in simulation-time order and
    /// cannot perturb the run: the returned outcome is bit-identical to
    /// [`Simulation::run`] on the same config.
    pub fn run_with_probes(config: &SimConfig, extra: &mut [&mut dyn Probe]) -> SimOutcome {
        Self::run_profiled(config, extra).0
    }

    /// Like [`Simulation::run_with_probes`], but also returns the event
    /// loop's wall-clock decomposition (see [`crate::profile`]). The
    /// profiler is always on — this merely reads its report — so the
    /// outcome stays bit-identical to the other entry points.
    pub fn run_profiled(
        config: &SimConfig,
        extra: &mut [&mut dyn Probe],
    ) -> (SimOutcome, LoopProfile) {
        let (outcome, merged, _) = Self::run_profiled_sharded(config, extra);
        (outcome, merged)
    }

    /// Like [`Simulation::run_profiled`], but additionally returns the
    /// per-shard profiles the merged report was reduced from (one entry
    /// per event-loop shard, in shard order). With `shards = 1` the slice
    /// has one entry equal to the merged profile minus rounding.
    pub fn run_profiled_sharded(
        config: &SimConfig,
        extra: &mut [&mut dyn Probe],
    ) -> (SimOutcome, LoopProfile, Vec<LoopProfile>) {
        let (outcome, profile, per_shard, _) = Self::run_instrumented(config, extra, None);
        (outcome, profile, per_shard)
    }

    /// Like [`Simulation::run_profiled_sharded`], but optionally attaches
    /// an execution-plane [`ExecRecorder`] (see [`crate::exec`]) and
    /// always returns the loop's [`ExecStats`] counters. The recorder is
    /// wall-clock-only and reads loop state that already exists for the
    /// run summaries, so the outcome — and every probe's output — is
    /// bit-identical with recording on (`tests/parallel_determinism.rs`
    /// enforces this across the golden scenarios and the shard × thread
    /// matrix). Callers turn the filled recorder into a wire trace with
    /// [`ExecRecorder::finish`], passing the returned merged profile.
    pub fn run_instrumented(
        config: &SimConfig,
        extra: &mut [&mut dyn Probe],
        exec: Option<&mut ExecRecorder>,
    ) -> (SimOutcome, LoopProfile, Vec<LoopProfile>, ExecStats) {
        let mut world = SimWorld::new(config);
        world.exec = exec;
        let mut metrics = MetricsProbe::new(world.catalog.len(), config.track_per_video);
        {
            let mut hub: Vec<&mut dyn Probe> = Vec::with_capacity(1 + extra.len());
            hub.push(&mut metrics);
            for p in extra.iter_mut() {
                hub.push(&mut **p);
            }
            world.run_loop(&mut hub);
        }
        let per_shard: Vec<LoopProfile> = world.profs.iter().map(LoopProfiler::report).collect();
        let profile = LoopProfile::merge(&per_shard);
        let stats = world.exec_stats();
        (world.finish(metrics), profile, per_shard, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::StagingSpec;
    use crate::policies::Policy;
    use sct_admission::MigrationPolicy;
    use sct_workload::SystemSpec;

    fn quick_config(seed: u64) -> SimConfig {
        SimConfig::builder(SystemSpec::tiny_test())
            .duration_hours(3.0)
            .warmup_hours(0.25)
            .seed(seed)
            .check_invariants(true)
            .build()
    }

    /// The epoch path must actually engage on an eligible sharded config
    /// (`epochs_run` is internal, so this lives here rather than in the
    /// integration suite) and produce the classic loop's exact outcome.
    #[test]
    fn parallel_epochs_engage_and_match_the_classic_loop() {
        let reference = Simulation::run(&quick_config(42));
        let par_cfg = SimConfig::builder(SystemSpec::tiny_test())
            .duration_hours(3.0)
            .warmup_hours(0.25)
            .seed(42)
            .check_invariants(true)
            .shards(4)
            .threads(2)
            .offload_min_events(0)
            .build();
        assert!(par_cfg.parallel_eligible());
        let mut world = SimWorld::new(&par_cfg);
        let mut metrics = MetricsProbe::new(world.catalog.len(), par_cfg.track_per_video);
        {
            let mut hub: Vec<&mut dyn Probe> = vec![&mut metrics];
            world.run_loop(&mut hub);
        }
        assert!(world.epochs_run > 0, "the parallel path never engaged");
        assert_eq!(world.finish(metrics), reference);
    }

    /// The execution-plane recorder must be invisible to the run (same
    /// outcome with recording on) and its trace must reconcile with the
    /// loop's own counters: every epoch in the trace is an `epochs_run`
    /// tick, burst events plus classic-run events equal the events
    /// processed, and the offload split matches the stats counters.
    #[test]
    fn exec_recorder_is_invisible_and_reconciles() {
        let par_cfg = SimConfig::builder(SystemSpec::tiny_test())
            .duration_hours(3.0)
            .warmup_hours(0.25)
            .seed(42)
            .check_invariants(true)
            .shards(4)
            .threads(2)
            .offload_min_events(0)
            .build();
        let (plain, _, _, plain_stats) = Simulation::run_instrumented(&par_cfg, &mut [], None);
        let mut rec = ExecRecorder::new();
        let (recorded, profile, _, stats) =
            Simulation::run_instrumented(&par_cfg, &mut [], Some(&mut rec));
        assert_eq!(recorded, plain, "recording perturbed the outcome");
        assert_eq!(stats, plain_stats, "recording changed the loop's path");

        let trace = rec.finish(&par_cfg, &profile);
        assert_eq!(trace.epochs_run(), stats.epochs_run);
        assert!(stats.epochs_run > 0, "the parallel path never engaged");
        assert_eq!(trace.bursts_offloaded(), stats.bursts_offloaded);
        assert_eq!(trace.bursts_inline(), stats.bursts_inline);
        assert_eq!(trace.runs.len() as u64, stats.classic_runs);
        assert_eq!(
            trace.total_events(),
            recorded.events_processed,
            "trace events must reconcile with the loop"
        );
        // Phase windows are ordered and the analyzer produces a verdict.
        for e in &trace.epochs {
            assert!(e.elect_start_us <= e.elect_end_us);
            assert!(e.elect_end_us <= e.merge_start_us);
            assert!(e.merge_start_us <= e.merge_end_us);
            assert!(e.merge_end_us <= e.reattach_end_us);
            for b in &e.bursts {
                assert!(b.start_us <= b.end_us);
                assert!(b.start_us >= e.elect_start_us);
            }
        }
        let report = trace.analyze();
        assert!(!report.verdict.is_empty());
        assert!(
            report.profiler_barrier_secs > 0.0,
            "merged barrier phase missing"
        );
    }

    #[test]
    fn outcome_is_well_formed() {
        let out = Simulation::run(&quick_config(1));
        assert!(out.utilization > 0.0 && out.utilization <= 1.0, "{out:?}");
        assert!(out.stats.arrivals > 50, "load calibration: {out:?}");
        assert!(out.completions > 0);
        assert!(out.events_processed >= out.stats.arrivals);
        assert_eq!(out.per_server_utilization.len(), 3);
        for &u in &out.per_server_utilization {
            assert!((0.0..=1.0 + 1e-9).contains(&u));
        }
        assert!((out.measured_hours - 2.75).abs() < 1e-9);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = Simulation::run(&quick_config(42));
        let b = Simulation::run(&quick_config(42));
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = Simulation::run(&quick_config(1));
        let b = Simulation::run(&quick_config(2));
        assert_ne!(a.stats.arrivals, b.stats.arrivals);
    }

    #[test]
    fn probes_do_not_perturb_the_run() {
        // An attached observer must be invisible to the simulation: same
        // seed, same outcome, with or without extra probes.
        struct CountingProbe(u64);
        impl Probe for CountingProbe {
            fn on_event(&mut self, _now: SimTime, _event: &crate::events::SimEvent) {
                self.0 += 1;
            }
        }
        let cfg = SimConfig::builder(SystemSpec::tiny_test())
            .duration_hours(3.0)
            .warmup_hours(0.25)
            .interactivity(0.5, 30.0, 300.0)
            .waitlist(120.0, 20)
            .seed(42)
            .build();
        let plain = Simulation::run(&cfg);
        let mut probe = CountingProbe(0);
        let observed = Simulation::run_with_probes(&cfg, &mut [&mut probe]);
        assert_eq!(plain, observed);
        assert!(
            probe.0 > plain.stats.arrivals,
            "every arrival produces at least one event"
        );
    }

    #[test]
    fn profile_reconciles_with_the_event_count() {
        let cfg = quick_config(42);
        let (out, profile) = Simulation::run_profiled(&cfg, &mut []);
        assert_eq!(out, Simulation::run(&cfg), "profiling must not perturb");
        assert_eq!(profile.events, out.events_processed);
        assert_eq!(profile.dispatch.calls, out.events_processed);
        assert!(profile.wall_secs > 0.0);
        assert!(profile.events_per_sec > 0.0);
        assert!(profile.dispatch.secs <= profile.wall_secs);
        // Sub-phases nest inside dispatch windows.
        assert!(profile.alloc.secs + profile.wake.secs + profile.probe.secs <= profile.wall_secs);
        assert!(profile.alloc.calls > 0, "every trial re-arms engines");
        assert!(profile.wake.calls > 0, "every trial schedules wakes");
        assert!(profile.probe.calls > 0, "every event is published");
    }

    #[test]
    fn loc_hint_stays_bounded_with_interactivity() {
        // The hint map must track only streams that still exist in some
        // engine (live or finished-but-unreaped), not every admission the
        // trial ever made.
        let cfg = SimConfig::builder(SystemSpec::tiny_test())
            .duration_hours(6.0)
            .warmup_hours(0.25)
            .interactivity(0.8, 30.0, 300.0)
            .seed(97)
            .check_invariants(true)
            .build();
        let mut world = SimWorld::new(&cfg);
        let mut metrics = MetricsProbe::new(world.catalog.len(), cfg.track_per_video);
        {
            let mut hub: Vec<&mut dyn Probe> = vec![&mut metrics];
            world.run_loop(&mut hub);
        }
        let in_engines: std::collections::HashSet<u64> = world
            .engines
            .iter()
            .flat_map(|e| e.streams().iter().map(|s| s.id.0))
            .collect();
        assert!(
            world.controller.stats.arrivals > 200,
            "need a long trial for the bound to mean anything: {}",
            world.controller.stats.arrivals
        );
        assert!(
            world.loc_hint.len() <= in_engines.len(),
            "hint map ({}) must not outgrow the resident stream set ({})",
            world.loc_hint.len(),
            in_engines.len()
        );
        for key in world.loc_hint.keys() {
            assert!(
                in_engines.contains(key),
                "hint for stream {key} which no engine still holds"
            );
        }
    }

    #[test]
    fn loc_hint_unused_without_interactivity() {
        let cfg = quick_config(42);
        let mut world = SimWorld::new(&cfg);
        let mut metrics = MetricsProbe::new(world.catalog.len(), cfg.track_per_video);
        {
            let mut hub: Vec<&mut dyn Probe> = vec![&mut metrics];
            world.run_loop(&mut hub);
        }
        assert!(
            world.loc_hint.is_empty(),
            "no interactivity: the hint map must never be populated"
        );
        assert!(world.controller.stats.arrivals > 50);
    }

    #[test]
    fn offered_load_is_calibrated_to_capacity() {
        // Requested megabits per measured second ≈ cluster bandwidth.
        let cfg = SimConfig::builder(SystemSpec::tiny_test())
            .duration_hours(6.0)
            .warmup_hours(0.0)
            .seed(3)
            .build();
        let out = Simulation::run(&cfg);
        let requested_rate = out.stats.requested_mb / (out.measured_hours * 3600.0);
        let capacity = cfg.system.total_bandwidth_mbps();
        assert!(
            (requested_rate - capacity).abs() < capacity * 0.15,
            "offered {requested_rate} vs capacity {capacity}"
        );
    }

    #[test]
    fn migration_does_not_hurt() {
        let base = SimConfig::builder(SystemSpec::tiny_test())
            .duration_hours(4.0)
            .warmup_hours(0.25)
            .theta(0.0)
            .staging(StagingSpec::FractionOfAvgVideo(0.2))
            .seed(7);
        let without = Simulation::run(&base.clone().build());
        let with = Simulation::run(
            &base
                .migration(MigrationPolicy {
                    handoff_latency_secs: 0.0,
                    ..MigrationPolicy::single_hop()
                })
                .build(),
        );
        assert!(
            with.stats.accepted_via_migration > 0,
            "migration should fire"
        );
        assert!(
            with.utilization >= without.utilization - 0.02,
            "with {} vs without {}",
            with.utilization,
            without.utilization
        );
    }

    #[test]
    fn staging_does_not_hurt() {
        let base = SimConfig::builder(SystemSpec::tiny_test())
            .duration_hours(4.0)
            .warmup_hours(0.25)
            .theta(0.5)
            .seed(11);
        let none = Simulation::run(&base.clone().staging_fraction(0.0).build());
        let some = Simulation::run(&base.staging_fraction(0.2).build());
        assert!(
            some.utilization >= none.utilization - 0.02,
            "staged {} vs unstaged {}",
            some.utilization,
            none.utilization
        );
    }

    #[test]
    fn policy_builder_integrates() {
        let cfg = SimConfig::builder(SystemSpec::tiny_test())
            .policy(Policy::P4)
            .duration_hours(2.0)
            .seed(5)
            .build();
        assert!(cfg.migration.enabled);
        let out = Simulation::run(&cfg);
        assert!(out.utilization > 0.3);
    }

    #[test]
    fn conservation_sent_never_exceeds_accepted() {
        let cfg = SimConfig::builder(SystemSpec::tiny_test())
            .duration_hours(3.0)
            .warmup_hours(0.0)
            .seed(13)
            .build();
        let out = Simulation::run(&cfg);
        let capacity_mb = cfg.system.total_bandwidth_mbps() * out.measured_hours * 3600.0;
        let sent_mb = out.utilization * capacity_mb;
        assert!(
            sent_mb <= out.stats.accepted_mb + 1e-3,
            "sent {sent_mb} vs accepted {}",
            out.stats.accepted_mb
        );
    }

    #[test]
    fn failures_fire_and_drm_rescues_streams() {
        let base = SimConfig::builder(SystemSpec::tiny_test())
            .duration_hours(8.0)
            .warmup_hours(0.5)
            .staging_fraction(0.2)
            .seed(31)
            .check_invariants(true);
        // Frequent failures: MTBF 1 h, repair 10 min.
        let without = Simulation::run(&base.clone().failures(1.0, 0.17).build());
        assert!(without.server_failures > 5, "{:?}", without.server_failures);
        assert_eq!(without.stats.relocated_on_failure, 0);
        assert!(without.stats.dropped_on_failure > 0);

        let with = Simulation::run(
            &base
                .migration(MigrationPolicy {
                    handoff_latency_secs: 0.0,
                    ..MigrationPolicy::single_hop()
                })
                .failures(1.0, 0.17)
                .build(),
        );
        assert!(
            with.stats.relocated_on_failure > 0,
            "evacuation never fired"
        );
        // At 100 % offered load on a 3-server cluster the neighbours are
        // mostly full, so only a fraction of victims find a new home — but
        // it must be a real fraction, not a fluke.
        let total_victims = with.stats.relocated_on_failure + with.stats.dropped_on_failure;
        assert!(
            with.stats.relocated_on_failure as f64 >= 0.2 * total_victims as f64,
            "DRM should rescue a meaningful share: {:?}",
            with.stats
        );
    }

    #[test]
    fn failures_reduce_utilization_but_stay_valid() {
        let base = SimConfig::builder(SystemSpec::tiny_test())
            .duration_hours(6.0)
            .warmup_hours(0.5)
            .seed(37)
            .check_invariants(true);
        let healthy = Simulation::run(&base.clone().build());
        let failing = Simulation::run(&base.failures(2.0, 1.0).build());
        assert!(failing.utilization < healthy.utilization);
        assert!(failing.utilization > 0.0 && failing.utilization <= 1.0);
    }

    #[test]
    fn pauses_fire_and_hold_invariants() {
        let base = SimConfig::builder(SystemSpec::tiny_test())
            .duration_hours(6.0)
            .warmup_hours(0.5)
            .staging_fraction(0.2)
            .seed(41)
            .check_invariants(true);
        let calm = Simulation::run(&base.clone().build());
        assert_eq!(calm.pauses_applied, 0);
        let jumpy = Simulation::run(&base.interactivity(0.8, 60.0, 600.0).build());
        assert!(jumpy.pauses_applied > 50, "{}", jumpy.pauses_applied);
        assert!(jumpy.utilization > 0.0 && jumpy.utilization <= 1.0 + 1e-9);
        // Paused slots lengthen effective service: acceptance can only
        // drop relative to the calm run.
        assert!(jumpy.acceptance_ratio() <= calm.acceptance_ratio() + 0.02);
    }

    #[test]
    fn staging_absorbs_pauses() {
        // With generous staging, a paused stream keeps receiving and can
        // finish during the pause, releasing its slot; with no staging the
        // slot is simply wasted for the whole pause.
        let base = SimConfig::builder(SystemSpec::tiny_test())
            .duration_hours(8.0)
            .warmup_hours(0.5)
            .theta(0.5)
            .seed(43)
            .check_invariants(true);
        let unstaged = Simulation::run(
            &base
                .clone()
                .staging_fraction(0.0)
                .interactivity(1.0, 120.0, 600.0)
                .build(),
        );
        let staged = Simulation::run(
            &base
                .staging_fraction(1.0)
                .interactivity(1.0, 120.0, 600.0)
                .build(),
        );
        assert!(
            staged.utilization > unstaged.utilization + 0.02,
            "staged {} vs unstaged {}",
            staged.utilization,
            unstaged.utilization
        );
    }

    #[test]
    fn replication_creates_replicas_under_skew() {
        use sct_admission::ReplicationSpec;
        // Strong skew so the even placement starves and rejections occur.
        let base = SimConfig::builder(SystemSpec::tiny_test())
            .duration_hours(10.0)
            .warmup_hours(0.5)
            .theta(-1.0)
            .seed(53)
            .check_invariants(true);
        let without = Simulation::run(&base.clone().build());
        assert!(without.stats.rejected > 0, "skew must cause rejections");
        assert_eq!(without.replication.replicas_created, 0);
        assert_eq!(without.goodput, without.utilization);

        let with = Simulation::run(
            &base
                .replication(ReplicationSpec {
                    copy_rate_mbps: 15.0,
                    max_concurrent: 2,
                    cooldown_secs: 300.0,
                    source: sct_admission::CopySource::Tertiary,
                })
                .build(),
        );
        assert!(
            with.replication.copies_started > 0,
            "replication never fired"
        );
        assert!(with.replication.replicas_created > 0);
        assert!(
            (with.goodput - with.utilization).abs() < 1e-12,
            "tertiary copies do not consume server bandwidth"
        );
        assert!(with.replication.replication_mb > 0.0);
        assert_eq!(with.replication.cluster_copy_mb, 0.0);
        assert!(
            with.goodput > without.utilization - 0.02,
            "replication should not hurt goodput: {} vs {}",
            with.goodput,
            without.utilization
        );
        // The new replicas should reduce rejections per arrival.
        assert!(
            with.acceptance_ratio() > without.acceptance_ratio(),
            "replication should raise acceptance: {} vs {}",
            with.acceptance_ratio(),
            without.acceptance_ratio()
        );
    }

    #[test]
    fn replication_and_drm_compose() {
        use sct_admission::ReplicationSpec;
        let out = Simulation::run(
            &SimConfig::builder(SystemSpec::tiny_test())
                .duration_hours(8.0)
                .warmup_hours(0.5)
                .theta(-0.5)
                .migration(MigrationPolicy {
                    handoff_latency_secs: 0.0,
                    ..MigrationPolicy::single_hop()
                })
                .replication(ReplicationSpec::default_paper_scale())
                .seed(59)
                .check_invariants(true)
                .build(),
        );
        assert!(out.utilization > 0.0 && out.utilization <= 1.0 + 1e-9);
        out.stats.check();
    }

    #[test]
    fn window_sampling_tiles_the_measurement_window() {
        let cfg = SimConfig::builder(SystemSpec::tiny_test())
            .duration_hours(4.0)
            .warmup_hours(1.0)
            .sample_interval_secs(600.0)
            .seed(61)
            .build();
        let out = Simulation::run(&cfg);
        // 3 measured hours at 10-minute windows → 18 samples.
        assert_eq!(out.window_utilization.len(), 18);
        for &w in &out.window_utilization {
            assert!((0.0..=1.0 + 1e-9).contains(&w), "window {w}");
        }
        // Windows must average to the overall utilization (same data).
        let mean: f64 =
            out.window_utilization.iter().sum::<f64>() / out.window_utilization.len() as f64;
        assert!(
            (mean - out.utilization).abs() < 1e-9,
            "windows {mean} vs total {}",
            out.utilization
        );
    }

    #[test]
    fn staging_lifts_every_utilization_quantile() {
        // The paper\'s §3 smoothing mechanism, observed in the time
        // domain: workahead lets servers sprint to full capacity when
        // demand dips below average (max window → 1.0) and the early
        // completions free slots for the above-average periods (the
        // minimum and 10th-percentile windows rise). Note the *relative*
        // variance need not shrink — the whole distribution shifts up.
        let percentiles = |fraction: f64| {
            let cfg = SimConfig::builder(SystemSpec::tiny_test())
                .duration_hours(12.0)
                .warmup_hours(1.0)
                .theta(1.0)
                .sample_interval_secs(900.0)
                .staging_fraction(fraction)
                .seed(67)
                .build();
            let out = Simulation::run(&cfg);
            let mut w = out.window_utilization;
            w.sort_by(f64::total_cmp);
            (w[0], w[w.len() / 10], w[w.len() - 1])
        };
        let (min0, p10_0, max0) = percentiles(0.0);
        let (min1, p10_1, max1) = percentiles(1.0);
        assert!(min1 > min0 + 0.02, "floor must rise: {min1} vs {min0}");
        assert!(p10_1 > p10_0 + 0.02, "p10 must rise: {p10_1} vs {p10_0}");
        assert!(max1 > max0, "bursts must reach higher: {max1} vs {max0}");
        assert!(max1 > 0.99, "staged servers sprint to full capacity");
    }

    #[test]
    fn per_video_counters_reconcile_with_totals() {
        let cfg = SimConfig::builder(SystemSpec::tiny_test())
            .duration_hours(4.0)
            .theta(-0.5)
            .track_per_video(true)
            .seed(71)
            .build();
        let out = Simulation::run(&cfg);
        assert_eq!(out.per_video_arrivals.len(), cfg.system.n_videos);
        let arrivals: u64 = out.per_video_arrivals.iter().map(|&x| x as u64).sum();
        let rejections: u64 = out.per_video_rejections.iter().map(|&x| x as u64).sum();
        assert_eq!(arrivals, out.stats.arrivals);
        assert_eq!(rejections, out.stats.rejected);
        // Skewed demand: the head video sees the most arrivals.
        let head = out.per_video_arrivals[0];
        let tail = *out.per_video_arrivals.last().unwrap();
        assert!(head > tail, "head {head} vs tail {tail}");
    }

    #[test]
    fn waitlist_recovers_rejections() {
        let base = SimConfig::builder(SystemSpec::tiny_test())
            .duration_hours(8.0)
            .warmup_hours(0.5)
            .theta(0.0)
            .staging_fraction(0.2)
            .seed(73)
            .check_invariants(true);
        let without = Simulation::run(&base.clone().build());
        assert!(without.stats.rejected > 0, "need rejections to recover");
        let with = Simulation::run(&base.waitlist(300.0, 100).build());
        assert!(with.waitlist.enqueued > 0);
        assert!(with.waitlist.served > 0, "waiters must get served");
        assert!(
            with.acceptance_ratio() > without.acceptance_ratio(),
            "waiting must raise acceptance: {} vs {}",
            with.acceptance_ratio(),
            without.acceptance_ratio()
        );
        assert!(with.waitlist.mean_served_wait_secs() > 0.0);
        assert!(with.waitlist.mean_served_wait_secs() <= 300.0 + 1e-9);
        with.stats.check();
        // Conservation: enqueued waiters either got served, expired,
        // or are still waiting at the horizon.
        assert!(with.waitlist.served + with.waitlist.expired <= with.waitlist.enqueued);
    }

    #[test]
    fn waitlist_patience_bounds_service() {
        // With near-zero patience the waitlist cannot help.
        let base = SimConfig::builder(SystemSpec::tiny_test())
            .duration_hours(6.0)
            .warmup_hours(0.5)
            .theta(0.0)
            .seed(79)
            .check_invariants(true);
        let impatient = Simulation::run(&base.clone().waitlist(0.5, 100).build());
        let patient = Simulation::run(&base.waitlist(600.0, 100).build());
        assert!(
            patient.waitlist.served > impatient.waitlist.served,
            "patience must matter: {} vs {}",
            patient.waitlist.served,
            impatient.waitlist.served
        );
    }

    #[test]
    fn multicast_batching_beats_unicast_waiting() {
        use sct_admission::WaitlistSpec;
        // Strong skew: many concurrent waiters for the same hot videos —
        // exactly where batching pays.
        let base = SimConfig::builder(SystemSpec::tiny_test())
            .duration_hours(8.0)
            .warmup_hours(0.5)
            .theta(-1.0)
            .staging_fraction(0.2)
            .seed(83)
            .check_invariants(true);
        let unicast = Simulation::run(
            &base
                .clone()
                .waitlist_spec(WaitlistSpec::new(600.0, 1000))
                .build(),
        );
        let batched = Simulation::run(
            &base
                .waitlist_spec(WaitlistSpec::batching(600.0, 1000))
                .build(),
        );
        assert!(batched.waitlist.batched > 0, "batching never happened");
        assert!(
            batched.acceptance_ratio() >= unicast.acceptance_ratio(),
            "batching must not serve fewer viewers: {} vs {}",
            batched.acceptance_ratio(),
            unicast.acceptance_ratio()
        );
        // A batch admits a whole cohort the moment one slot frees, so the
        // average time-to-play of queued viewers drops.
        assert!(
            batched.waitlist.mean_served_wait_secs() < unicast.waitlist.mean_served_wait_secs(),
            "batching must shorten waits: {} vs {}",
            batched.waitlist.mean_served_wait_secs(),
            unicast.waitlist.mean_served_wait_secs()
        );
        // Multicast viewers receive more data than the servers transmit.
        assert!(batched.stats.accepted_mb > unicast.stats.accepted_mb);
        batched.stats.check();
    }

    #[test]
    fn diurnal_swings_hurt_but_staging_absorbs_some() {
        let base = SimConfig::builder(SystemSpec::tiny_test())
            .duration_hours(12.0)
            .warmup_hours(0.5)
            .theta(0.5)
            .seed(91)
            .check_invariants(true);
        // 3-hour "days" so several cycles fit in the run.
        let flat = Simulation::run(&base.clone().staging_fraction(0.0).build());
        let swing_raw =
            Simulation::run(&base.clone().staging_fraction(0.0).diurnal(1.0, 3.0).build());
        let swing_staged = Simulation::run(&base.staging_fraction(1.0).diurnal(1.0, 3.0).build());
        assert!(
            swing_raw.utilization < flat.utilization - 0.02,
            "full swings must hurt the naive system: {} vs {}",
            swing_raw.utilization,
            flat.utilization
        );
        assert!(
            swing_staged.utilization > swing_raw.utilization + 0.02,
            "staging must absorb part of the swing: {} vs {}",
            swing_staged.utilization,
            swing_raw.utilization
        );
    }

    #[test]
    fn zero_staging_no_migration_still_serves() {
        let cfg = SimConfig::builder(SystemSpec::tiny_test())
            .staging_fraction(0.0)
            .duration_hours(3.0)
            .seed(17)
            .build();
        let out = Simulation::run(&cfg);
        assert!(out.utilization > 0.3, "{}", out.utilization);
        assert_eq!(out.stats.accepted_via_migration, 0);
    }
}
