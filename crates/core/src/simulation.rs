//! The discrete-event simulation loop.
//!
//! One trial wires together:
//!
//! ```text
//! RequestGenerator ──arrival──▶ Controller ──admit──▶ ServerEngine (×N)
//!        ▲                          │                      │
//!        └── next arrival           └── DRM между holders  └── wake events
//! ```
//!
//! Two event kinds flow through a single time-ordered queue:
//!
//! * **Arrival** — the next Poisson request. Handling it may admit a
//!   stream (possibly migrating a victim), then schedules the following
//!   arrival.
//! * **Wake { server, generation }** — the time at which a server's state
//!   changes on its own: a stream completes or a staging buffer fills.
//!   Each server keeps a generation counter; wakes scheduled before the
//!   server's last reallocation are stale and ignored, so the queue never
//!   needs deletions.
//!
//! Between events every stream's `sent` grows linearly at its allocated
//! rate, so engines integrate state exactly (no time-stepping error).

use crate::config::SimConfig;
use sct_admission::{
    AdmissionStats, Controller, ReplicationManager, ReplicationStats, Waitlist, WaitlistStats,
};
use sct_cluster::{ClusterSpec, ServerId};
use sct_simcore::{EventQueue, Exponential, Rng, SimTime, ZipfLike};
use sct_transmission::{ServerEngine, Stream, StreamId};
use sct_workload::{calibrated_rate, RequestGenerator};
use serde::{Deserialize, Serialize};

/// Event payloads for the global queue.
#[derive(Clone, Copy, Debug)]
enum Event {
    /// The generator's next request arrives.
    Arrival,
    /// A server predicted a state change (completion / buffer-full).
    Wake { server: u16, generation: u64 },
    /// A server fails (fault-tolerance extension).
    ServerDown(u16),
    /// A failed server comes back online.
    ServerUp(u16),
    /// A client pauses playback (interactivity extension).
    PauseStream(u64),
    /// A client resumes playback.
    ResumeStream(u64),
    /// A tertiary-storage replica copy finishes (dynamic replication).
    CopyDone(u64),
    /// Periodic utilization sample (time-series analysis).
    Sample,
    /// Check the wait queue for timed-out viewers.
    WaitlistExpiry,
}

/// Results of one trial.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SimOutcome {
    /// Megabits sent within the measurement window divided by the maximum
    /// the cluster could send in it — the paper's utilization metric.
    pub utilization: f64,
    /// Per-server utilization over the same window.
    pub per_server_utilization: Vec<f64>,
    /// Admission counters (arrivals, acceptances, rejections, migrations).
    pub stats: AdmissionStats,
    /// Streams that finished transmission.
    pub completions: u64,
    /// Total events processed (arrivals + live wakes).
    pub events_processed: u64,
    /// Length of the measurement window, hours.
    pub measured_hours: f64,
    /// Replicas the placement created.
    pub total_copies: u64,
    /// Server failures that occurred (0 without a failure model).
    pub server_failures: u64,
    /// Pauses actually applied to live streams (0 without interactivity).
    pub pauses_applied: u64,
    /// Dynamic replication activity (zeros without a replication spec).
    pub replication: ReplicationStats,
    /// Utilization net of replication traffic — the share of capacity that
    /// carried *viewer* data. Equal to `utilization` without replication.
    pub goodput: f64,
    /// Wait-queue activity (zeros without a waitlist).
    pub waitlist: WaitlistStats,
    /// Windowed utilization samples (one per `sample_interval_secs`),
    /// empty when sampling is disabled. Window i covers
    /// `[warmup + i·Δ, warmup + (i+1)·Δ)`.
    pub window_utilization: Vec<f64>,
    /// Arrivals per video id (empty unless `track_per_video`).
    pub per_video_arrivals: Vec<u32>,
    /// Rejections per video id (empty unless `track_per_video`). Counted
    /// at arrival time: with a waitlist enabled, a request that is first
    /// queued and later served still appears here, so these sum to the
    /// *pre-reconciliation* rejection count.
    pub per_video_rejections: Vec<u32>,
}

impl SimOutcome {
    /// Fraction of arrivals accepted.
    pub fn acceptance_ratio(&self) -> f64 {
        self.stats.acceptance_ratio()
    }
}

/// Runs trials described by [`SimConfig`].
pub struct Simulation;

impl Simulation {
    /// Runs one complete trial. Deterministic in `config` (including the
    /// seed).
    pub fn run(config: &SimConfig) -> SimOutcome {
        // Independent randomness streams so that, e.g., changing the
        // placement cannot perturb the arrival sequence.
        let root = Rng::new(config.seed);
        let mut catalog_rng = root.fork(1);
        let mut placement_rng = root.fork(2);
        let mut cluster_rng = root.fork(3);
        let mut admission_rng = root.fork(4);

        let catalog = config.system.catalog(&mut catalog_rng);
        let cluster: ClusterSpec = match config.heterogeneity {
            None => config.system.cluster(),
            Some((kind, spread)) => {
                config
                    .system
                    .heterogeneous_cluster(kind, spread, &mut cluster_rng)
            }
        };
        let popularity = ZipfLike::new(catalog.len(), config.theta);
        let mut replica_map =
            config
                .placement
                .place(&catalog, &cluster, popularity.probs(), &mut placement_rng);
        let total_copies = replica_map.total_copies();
        let mut replication = config.replication.map(ReplicationManager::new);
        let mut waitlist = config.waitlist.map(Waitlist::new);

        let rate = calibrated_rate(cluster.total_bandwidth_mbps(), &catalog, popularity.probs());
        let mut generator = match config.diurnal {
            None => RequestGenerator::new(rate, &popularity, &root),
            Some(d) => RequestGenerator::new_diurnal(
                rate,
                d.amplitude,
                d.period_hours * 3600.0,
                &popularity,
                &root,
            ),
        };

        let client = config.client_profile(catalog.avg_size_mb());
        let view_rate = config.system.view_rate_mbps;

        let mut engines: Vec<ServerEngine> = cluster
            .ids()
            .map(|id| {
                let mut e =
                    ServerEngine::new(id, cluster.server(id).bandwidth_mbps, config.scheduler);
                e.set_measure_start(config.warmup);
                e
            })
            .collect();
        let mut controller = Controller::new(config.assignment, config.migration);

        let end = config.duration;
        let mut queue: EventQueue<Event> = EventQueue::with_capacity(1024);
        if generator.peek_time() <= end {
            queue.push(generator.peek_time(), Event::Arrival);
        }

        // Failure process: each server alternates exponential up/down
        // phases, seeded independently of everything else.
        let mut failure_rng = root.fork(5);
        let failure_dists = config.failures.map(|f| {
            (
                Exponential::new(1.0 / (f.mtbf_hours * 3600.0)),
                Exponential::new(1.0 / (f.repair_hours * 3600.0)),
            )
        });
        if let Some((up_time, _)) = &failure_dists {
            for s in 0..engines.len() as u16 {
                let t = SimTime::ZERO + up_time.sample(&mut failure_rng);
                if t <= end {
                    queue.push(t, Event::ServerDown(s));
                }
            }
        }
        let mut server_failures: u64 = 0;

        // Interactivity: pause decisions are drawn at admission from an
        // independent stream; pause/resume events carry the stream id and
        // are resolved against a location hint (streams move on migration
        // and vanish on completion, so a stale hint falls back to a scan).
        let mut pause_rng = root.fork(6);
        let mut pauses_applied: u64 = 0;
        let mut loc_hint: std::collections::HashMap<u64, u16> = std::collections::HashMap::new();

        let mut next_stream_id: u64 = 0;
        let mut completions: u64 = 0;
        let mut events_processed: u64 = 0;
        let mut last_time = SimTime::ZERO;

        // Windowed-utilization sampling starts after the warm-up.
        let mut window_utilization: Vec<f64> = Vec::new();
        let mut last_sample_mb = 0.0f64;
        if let Some(dt) = config.sample_interval_secs {
            let first = config.warmup + dt;
            if first <= end {
                queue.push(first, Event::Sample);
            }
        }

        // Per-video accounting (cheap: two u32 per catalog entry).
        let (mut pv_arrivals, mut pv_rejections) = if config.track_per_video {
            (vec![0u32; catalog.len()], vec![0u32; catalog.len()])
        } else {
            (Vec::new(), Vec::new())
        };

        while let Some(entry) = queue.pop() {
            let now = entry.time;
            debug_assert!(now >= last_time, "event order violated");
            last_time = now;
            match entry.payload {
                Event::Arrival => {
                    events_processed += 1;
                    let req = generator.next_request();
                    debug_assert!(req.at == now);
                    let video = catalog.video(req.video);
                    let stream = Stream::new(
                        StreamId(next_stream_id),
                        req.video,
                        video.size_mb(),
                        view_rate,
                        client,
                        now,
                    );
                    next_stream_id += 1;
                    if config.track_per_video {
                        pv_arrivals[req.video.index()] += 1;
                    }
                    let length_secs = video.size_mb() / view_rate;
                    let stream_id = next_stream_id - 1;
                    let (admission, touched) = controller.admit(
                        stream,
                        &mut engines,
                        &replica_map,
                        now,
                        &mut admission_rng,
                    );
                    match admission {
                        sct_admission::Admission::Direct { server } => {
                            loc_hint.insert(stream_id, server.0);
                        }
                        sct_admission::Admission::WithMigration { server, victim, to } => {
                            loc_hint.insert(stream_id, server.0);
                            loc_hint.insert(victim.0, to.0);
                        }
                        sct_admission::Admission::WithChain {
                            server,
                            first,
                            second,
                        } => {
                            loc_hint.insert(stream_id, server.0);
                            loc_hint.insert(first.0 .0, first.1 .0);
                            loc_hint.insert(second.0 .0, second.1 .0);
                        }
                        sct_admission::Admission::Rejected => {}
                    }
                    if !admission.accepted() && config.track_per_video {
                        pv_rejections[req.video.index()] += 1;
                    }
                    if !admission.accepted() {
                        if let Some(wl) = waitlist.as_mut() {
                            if let Some(expires) = wl.enqueue(
                                StreamId(stream_id),
                                req.video,
                                video.size_mb(),
                                view_rate,
                                client,
                                now,
                            ) {
                                if expires <= end {
                                    queue.push(expires, Event::WaitlistExpiry);
                                }
                            }
                        }
                        if let Some(mgr) = replication.as_mut() {
                            match mgr.maybe_replicate(
                                req.video,
                                video.size_mb(),
                                &mut next_stream_id,
                                &mut engines,
                                &replica_map,
                                &cluster,
                                now,
                            ) {
                                Some(sct_admission::CopyLaunch::FromServer { source }) => {
                                    let e = &mut engines[source.index()];
                                    if let Some(wake) = e.reschedule(now) {
                                        if wake <= end {
                                            queue.push(
                                                wake,
                                                Event::Wake {
                                                    server: source.0,
                                                    generation: e.generation(),
                                                },
                                            );
                                        }
                                    }
                                }
                                Some(sct_admission::CopyLaunch::FromTertiary {
                                    token,
                                    done_in_secs,
                                }) => {
                                    let t = now + done_in_secs;
                                    if t <= end {
                                        queue.push(t, Event::CopyDone(token.0));
                                    }
                                    // Copies still in flight at the end of
                                    // the run simply never materialise.
                                }
                                None => {}
                            }
                        }
                    }
                    if admission.accepted() {
                        if let Some(ps) = config.interactivity {
                            if pause_rng.chance(ps.probability) {
                                let at = now + pause_rng.range_f64(0.0, length_secs);
                                let dur = pause_rng.range_f64(ps.min_pause_secs, ps.max_pause_secs);
                                if at <= end {
                                    queue.push(at, Event::PauseStream(stream_id));
                                    let resume = at + dur;
                                    if resume <= end {
                                        queue.push(resume, Event::ResumeStream(stream_id));
                                    }
                                }
                            }
                        }
                    }
                    for sid in touched {
                        let e = &mut engines[sid.index()];
                        e.advance_to(now);
                        if let Some(wake) = e.reschedule(now) {
                            if wake <= end {
                                queue.push(
                                    wake,
                                    Event::Wake {
                                        server: sid.0,
                                        generation: e.generation(),
                                    },
                                );
                            }
                        }
                        if config.check_invariants {
                            e.check_invariants();
                        }
                    }
                    if generator.peek_time() <= end {
                        queue.push(generator.peek_time(), Event::Arrival);
                    }
                }
                Event::Wake { server, generation } => {
                    let e = &mut engines[server as usize];
                    if generation != e.generation() {
                        continue; // superseded by a later reallocation
                    }
                    events_processed += 1;
                    e.advance_to(now);
                    let mut slots_freed = false;
                    for done in e.reap_finished(now) {
                        slots_freed = true;
                        if done.is_copy() {
                            if let Some(mgr) = replication.as_mut() {
                                mgr.on_copy_finished(done.id, &mut replica_map);
                            }
                        } else {
                            completions += 1;
                        }
                    }
                    if slots_freed {
                        if let Some(wl) = waitlist.as_mut() {
                            wl.expire(now);
                            for sid in wl.try_serve(&mut engines, &replica_map, now) {
                                let se = &mut engines[sid.index()];
                                if let Some(wake) = se.reschedule(now) {
                                    if wake <= end {
                                        queue.push(
                                            wake,
                                            Event::Wake {
                                                server: sid.0,
                                                generation: se.generation(),
                                            },
                                        );
                                    }
                                }
                            }
                        }
                    }
                    let e = &mut engines[server as usize];
                    if let Some(wake) = e.reschedule(now) {
                        if wake <= end {
                            queue.push(
                                wake,
                                Event::Wake {
                                    server,
                                    generation: e.generation(),
                                },
                            );
                        }
                    }
                    if config.check_invariants {
                        e.check_invariants();
                    }
                }
                Event::ServerDown(server) => {
                    events_processed += 1;
                    server_failures += 1;
                    let taken = engines[server as usize].fail(now);
                    if let Some(mgr) = replication.as_mut() {
                        mgr.on_server_failed(ServerId(server));
                    }
                    let touched = controller.evacuate(
                        taken,
                        ServerId(server),
                        &mut engines,
                        &replica_map,
                        now,
                    );
                    for sid in touched {
                        let e = &mut engines[sid.index()];
                        e.advance_to(now);
                        if let Some(wake) = e.reschedule(now) {
                            if wake <= end {
                                queue.push(
                                    wake,
                                    Event::Wake {
                                        server: sid.0,
                                        generation: e.generation(),
                                    },
                                );
                            }
                        }
                        if config.check_invariants {
                            e.check_invariants();
                        }
                    }
                    let repair = failure_dists
                        .as_ref()
                        .expect("failure event without a failure model")
                        .1
                        .sample(&mut failure_rng);
                    let t = now + repair;
                    if t <= end {
                        queue.push(t, Event::ServerUp(server));
                    }
                }
                Event::ServerUp(server) => {
                    events_processed += 1;
                    engines[server as usize].repair(now);
                    if let Some(wl) = waitlist.as_mut() {
                        wl.expire(now);
                        for sid in wl.try_serve(&mut engines, &replica_map, now) {
                            let se = &mut engines[sid.index()];
                            if let Some(wake) = se.reschedule(now) {
                                if wake <= end {
                                    queue.push(
                                        wake,
                                        Event::Wake {
                                            server: sid.0,
                                            generation: se.generation(),
                                        },
                                    );
                                }
                            }
                        }
                    }
                    let up_time = failure_dists
                        .as_ref()
                        .expect("repair event without a failure model")
                        .0
                        .sample(&mut failure_rng);
                    let t = now + up_time;
                    if t <= end {
                        queue.push(t, Event::ServerDown(server));
                    }
                }
                Event::CopyDone(id) => {
                    events_processed += 1;
                    if let Some(mgr) = replication.as_mut() {
                        // May be None if the target failed mid-copy.
                        mgr.on_copy_finished(StreamId(id), &mut replica_map);
                    }
                }
                Event::WaitlistExpiry => {
                    events_processed += 1;
                    if let Some(wl) = waitlist.as_mut() {
                        wl.expire(now);
                    }
                }
                Event::Sample => {
                    events_processed += 1;
                    let dt = config
                        .sample_interval_secs
                        .expect("sample event without sampling enabled");
                    for e in engines.iter_mut() {
                        e.advance_to(now);
                    }
                    let total: f64 = engines.iter().map(|e| e.measured_mb()).sum();
                    window_utilization
                        .push((total - last_sample_mb) / (cluster.total_bandwidth_mbps() * dt));
                    last_sample_mb = total;
                    let next = now + dt;
                    if next <= end {
                        queue.push(next, Event::Sample);
                    }
                }
                Event::PauseStream(id) | Event::ResumeStream(id) => {
                    events_processed += 1;
                    let paused = matches!(entry.payload, Event::PauseStream(_));
                    let sid = sct_transmission::StreamId(id);
                    // Try the location hint first, then scan (the stream
                    // may have migrated since the hint was written).
                    let mut found = None;
                    if let Some(&hint) = loc_hint.get(&id) {
                        if engines[hint as usize].set_paused(sid, paused, now) {
                            found = Some(hint);
                        }
                    }
                    if found.is_none() {
                        for e in engines.iter_mut() {
                            let eid = e.id().0;
                            if e.set_paused(sid, paused, now) {
                                loc_hint.insert(id, eid);
                                found = Some(eid);
                                break;
                            }
                        }
                    }
                    if let Some(server) = found {
                        if paused {
                            pauses_applied += 1;
                        }
                        let e = &mut engines[server as usize];
                        if let Some(wake) = e.reschedule(now) {
                            if wake <= end {
                                queue.push(
                                    wake,
                                    Event::Wake {
                                        server,
                                        generation: e.generation(),
                                    },
                                );
                            }
                        }
                        if config.check_invariants {
                            e.check_invariants();
                        }
                    } else {
                        // Stream finished (or was dropped) before the
                        // pause point — a client-side no-op.
                        loc_hint.remove(&id);
                    }
                }
            }
        }

        // Integrate the tail of every engine up to the horizon.
        for e in &mut engines {
            e.advance_to(end);
            if config.check_invariants {
                e.check_invariants();
            }
        }

        let measured_secs = end - config.warmup;
        let per_server_utilization: Vec<f64> = engines
            .iter()
            .map(|e| e.measured_mb() / (e.capacity_mbps() * measured_secs))
            .collect();
        let total_sent: f64 = engines.iter().map(|e| e.measured_mb()).sum();
        let utilization = total_sent / (cluster.total_bandwidth_mbps() * measured_secs);
        controller.stats.check();

        // Goodput nets out replication traffic that consumed *server*
        // bandwidth: completed cluster-sourced copies plus the transmitted
        // part of still-running engine copies. Tertiary-sourced copies ride
        // the tertiary drive and do not reduce goodput. A copy overlapping
        // the warm-up window is attributed entirely to the measurement
        // window — a negligible conservative bias for the durations we run.
        // Waitlist reconciliation: a request served from the queue was
        // counted as rejected at arrival; it ended up accepted.
        let wl_stats = waitlist.as_ref().map(|w| w.stats).unwrap_or_default();
        controller.stats.rejected -= wl_stats.served;
        controller.stats.accepted_direct += wl_stats.served;
        controller.stats.accepted_mb += wl_stats.served_mb;
        controller.stats.check();

        let rep_stats = replication.as_ref().map(|m| m.stats).unwrap_or_default();
        let mut copy_mb = rep_stats.cluster_copy_mb;
        for e in &engines {
            copy_mb += e
                .streams()
                .iter()
                .filter(|s| s.is_copy())
                .map(|s| s.sent_mb())
                .sum::<f64>();
        }
        let goodput = utilization - copy_mb / (cluster.total_bandwidth_mbps() * measured_secs);

        SimOutcome {
            utilization,
            per_server_utilization,
            stats: controller.stats,
            completions,
            events_processed,
            measured_hours: measured_secs / 3600.0,
            total_copies,
            server_failures,
            pauses_applied,
            replication: rep_stats,
            waitlist: wl_stats,
            goodput: goodput.max(0.0),
            window_utilization,
            per_video_arrivals: pv_arrivals,
            per_video_rejections: pv_rejections,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::StagingSpec;
    use crate::policies::Policy;
    use sct_admission::MigrationPolicy;
    use sct_workload::SystemSpec;

    fn quick_config(seed: u64) -> SimConfig {
        SimConfig::builder(SystemSpec::tiny_test())
            .duration_hours(3.0)
            .warmup_hours(0.25)
            .seed(seed)
            .check_invariants(true)
            .build()
    }

    #[test]
    fn outcome_is_well_formed() {
        let out = Simulation::run(&quick_config(1));
        assert!(out.utilization > 0.0 && out.utilization <= 1.0, "{out:?}");
        assert!(out.stats.arrivals > 50, "load calibration: {out:?}");
        assert!(out.completions > 0);
        assert!(out.events_processed >= out.stats.arrivals);
        assert_eq!(out.per_server_utilization.len(), 3);
        for &u in &out.per_server_utilization {
            assert!((0.0..=1.0 + 1e-9).contains(&u));
        }
        assert!((out.measured_hours - 2.75).abs() < 1e-9);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = Simulation::run(&quick_config(42));
        let b = Simulation::run(&quick_config(42));
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = Simulation::run(&quick_config(1));
        let b = Simulation::run(&quick_config(2));
        assert_ne!(a.stats.arrivals, b.stats.arrivals);
    }

    #[test]
    fn offered_load_is_calibrated_to_capacity() {
        // Requested megabits per measured second ≈ cluster bandwidth.
        let cfg = SimConfig::builder(SystemSpec::tiny_test())
            .duration_hours(6.0)
            .warmup_hours(0.0)
            .seed(3)
            .build();
        let out = Simulation::run(&cfg);
        let requested_rate = out.stats.requested_mb / (out.measured_hours * 3600.0);
        let capacity = cfg.system.total_bandwidth_mbps();
        assert!(
            (requested_rate - capacity).abs() < capacity * 0.15,
            "offered {requested_rate} vs capacity {capacity}"
        );
    }

    #[test]
    fn migration_does_not_hurt() {
        let base = SimConfig::builder(SystemSpec::tiny_test())
            .duration_hours(4.0)
            .warmup_hours(0.25)
            .theta(0.0)
            .staging(StagingSpec::FractionOfAvgVideo(0.2))
            .seed(7);
        let without = Simulation::run(&base.clone().build());
        let with = Simulation::run(
            &base
                .migration(MigrationPolicy {
                    handoff_latency_secs: 0.0,
                    ..MigrationPolicy::single_hop()
                })
                .build(),
        );
        assert!(
            with.stats.accepted_via_migration > 0,
            "migration should fire"
        );
        assert!(
            with.utilization >= without.utilization - 0.02,
            "with {} vs without {}",
            with.utilization,
            without.utilization
        );
    }

    #[test]
    fn staging_does_not_hurt() {
        let base = SimConfig::builder(SystemSpec::tiny_test())
            .duration_hours(4.0)
            .warmup_hours(0.25)
            .theta(0.5)
            .seed(11);
        let none = Simulation::run(&base.clone().staging_fraction(0.0).build());
        let some = Simulation::run(&base.staging_fraction(0.2).build());
        assert!(
            some.utilization >= none.utilization - 0.02,
            "staged {} vs unstaged {}",
            some.utilization,
            none.utilization
        );
    }

    #[test]
    fn policy_builder_integrates() {
        let cfg = SimConfig::builder(SystemSpec::tiny_test())
            .policy(Policy::P4)
            .duration_hours(2.0)
            .seed(5)
            .build();
        assert!(cfg.migration.enabled);
        let out = Simulation::run(&cfg);
        assert!(out.utilization > 0.3);
    }

    #[test]
    fn conservation_sent_never_exceeds_accepted() {
        let cfg = SimConfig::builder(SystemSpec::tiny_test())
            .duration_hours(3.0)
            .warmup_hours(0.0)
            .seed(13)
            .build();
        let out = Simulation::run(&cfg);
        let capacity_mb = cfg.system.total_bandwidth_mbps() * out.measured_hours * 3600.0;
        let sent_mb = out.utilization * capacity_mb;
        assert!(
            sent_mb <= out.stats.accepted_mb + 1e-3,
            "sent {sent_mb} vs accepted {}",
            out.stats.accepted_mb
        );
    }

    #[test]
    fn failures_fire_and_drm_rescues_streams() {
        let base = SimConfig::builder(SystemSpec::tiny_test())
            .duration_hours(8.0)
            .warmup_hours(0.5)
            .staging_fraction(0.2)
            .seed(31)
            .check_invariants(true);
        // Frequent failures: MTBF 1 h, repair 10 min.
        let without = Simulation::run(&base.clone().failures(1.0, 0.17).build());
        assert!(without.server_failures > 5, "{:?}", without.server_failures);
        assert_eq!(without.stats.relocated_on_failure, 0);
        assert!(without.stats.dropped_on_failure > 0);

        let with = Simulation::run(
            &base
                .migration(MigrationPolicy {
                    handoff_latency_secs: 0.0,
                    ..MigrationPolicy::single_hop()
                })
                .failures(1.0, 0.17)
                .build(),
        );
        assert!(
            with.stats.relocated_on_failure > 0,
            "evacuation never fired"
        );
        // At 100 % offered load on a 3-server cluster the neighbours are
        // mostly full, so only a fraction of victims find a new home — but
        // it must be a real fraction, not a fluke.
        let total_victims = with.stats.relocated_on_failure + with.stats.dropped_on_failure;
        assert!(
            with.stats.relocated_on_failure as f64 >= 0.2 * total_victims as f64,
            "DRM should rescue a meaningful share: {:?}",
            with.stats
        );
    }

    #[test]
    fn failures_reduce_utilization_but_stay_valid() {
        let base = SimConfig::builder(SystemSpec::tiny_test())
            .duration_hours(6.0)
            .warmup_hours(0.5)
            .seed(37)
            .check_invariants(true);
        let healthy = Simulation::run(&base.clone().build());
        let failing = Simulation::run(&base.failures(2.0, 1.0).build());
        assert!(failing.utilization < healthy.utilization);
        assert!(failing.utilization > 0.0 && failing.utilization <= 1.0);
    }

    #[test]
    fn pauses_fire_and_hold_invariants() {
        let base = SimConfig::builder(SystemSpec::tiny_test())
            .duration_hours(6.0)
            .warmup_hours(0.5)
            .staging_fraction(0.2)
            .seed(41)
            .check_invariants(true);
        let calm = Simulation::run(&base.clone().build());
        assert_eq!(calm.pauses_applied, 0);
        let jumpy = Simulation::run(&base.interactivity(0.8, 60.0, 600.0).build());
        assert!(jumpy.pauses_applied > 50, "{}", jumpy.pauses_applied);
        assert!(jumpy.utilization > 0.0 && jumpy.utilization <= 1.0 + 1e-9);
        // Paused slots lengthen effective service: acceptance can only
        // drop relative to the calm run.
        assert!(jumpy.acceptance_ratio() <= calm.acceptance_ratio() + 0.02);
    }

    #[test]
    fn staging_absorbs_pauses() {
        // With generous staging, a paused stream keeps receiving and can
        // finish during the pause, releasing its slot; with no staging the
        // slot is simply wasted for the whole pause.
        let base = SimConfig::builder(SystemSpec::tiny_test())
            .duration_hours(8.0)
            .warmup_hours(0.5)
            .theta(0.5)
            .seed(43)
            .check_invariants(true);
        let unstaged = Simulation::run(
            &base
                .clone()
                .staging_fraction(0.0)
                .interactivity(1.0, 120.0, 600.0)
                .build(),
        );
        let staged = Simulation::run(
            &base
                .staging_fraction(1.0)
                .interactivity(1.0, 120.0, 600.0)
                .build(),
        );
        assert!(
            staged.utilization > unstaged.utilization + 0.02,
            "staged {} vs unstaged {}",
            staged.utilization,
            unstaged.utilization
        );
    }

    #[test]
    fn replication_creates_replicas_under_skew() {
        use sct_admission::ReplicationSpec;
        // Strong skew so the even placement starves and rejections occur.
        let base = SimConfig::builder(SystemSpec::tiny_test())
            .duration_hours(10.0)
            .warmup_hours(0.5)
            .theta(-1.0)
            .seed(53)
            .check_invariants(true);
        let without = Simulation::run(&base.clone().build());
        assert!(without.stats.rejected > 0, "skew must cause rejections");
        assert_eq!(without.replication.replicas_created, 0);
        assert_eq!(without.goodput, without.utilization);

        let with = Simulation::run(
            &base
                .replication(ReplicationSpec {
                    copy_rate_mbps: 15.0,
                    max_concurrent: 2,
                    cooldown_secs: 300.0,
                    source: sct_admission::CopySource::Tertiary,
                })
                .build(),
        );
        assert!(
            with.replication.copies_started > 0,
            "replication never fired"
        );
        assert!(with.replication.replicas_created > 0);
        assert!(
            (with.goodput - with.utilization).abs() < 1e-12,
            "tertiary copies do not consume server bandwidth"
        );
        assert!(with.replication.replication_mb > 0.0);
        assert_eq!(with.replication.cluster_copy_mb, 0.0);
        assert!(
            with.goodput > without.utilization - 0.02,
            "replication should not hurt goodput: {} vs {}",
            with.goodput,
            without.utilization
        );
        // The new replicas should reduce rejections per arrival.
        assert!(
            with.acceptance_ratio() > without.acceptance_ratio(),
            "replication should raise acceptance: {} vs {}",
            with.acceptance_ratio(),
            without.acceptance_ratio()
        );
    }

    #[test]
    fn replication_and_drm_compose() {
        use sct_admission::ReplicationSpec;
        let out = Simulation::run(
            &SimConfig::builder(SystemSpec::tiny_test())
                .duration_hours(8.0)
                .warmup_hours(0.5)
                .theta(-0.5)
                .migration(MigrationPolicy {
                    handoff_latency_secs: 0.0,
                    ..MigrationPolicy::single_hop()
                })
                .replication(ReplicationSpec::default_paper_scale())
                .seed(59)
                .check_invariants(true)
                .build(),
        );
        assert!(out.utilization > 0.0 && out.utilization <= 1.0 + 1e-9);
        out.stats.check();
    }

    #[test]
    fn window_sampling_tiles_the_measurement_window() {
        let cfg = SimConfig::builder(SystemSpec::tiny_test())
            .duration_hours(4.0)
            .warmup_hours(1.0)
            .sample_interval_secs(600.0)
            .seed(61)
            .build();
        let out = Simulation::run(&cfg);
        // 3 measured hours at 10-minute windows → 18 samples.
        assert_eq!(out.window_utilization.len(), 18);
        for &w in &out.window_utilization {
            assert!((0.0..=1.0 + 1e-9).contains(&w), "window {w}");
        }
        // Windows must average to the overall utilization (same data).
        let mean: f64 =
            out.window_utilization.iter().sum::<f64>() / out.window_utilization.len() as f64;
        assert!(
            (mean - out.utilization).abs() < 1e-9,
            "windows {mean} vs total {}",
            out.utilization
        );
    }

    #[test]
    fn staging_lifts_every_utilization_quantile() {
        // The paper\'s §3 smoothing mechanism, observed in the time
        // domain: workahead lets servers sprint to full capacity when
        // demand dips below average (max window → 1.0) and the early
        // completions free slots for the above-average periods (the
        // minimum and 10th-percentile windows rise). Note the *relative*
        // variance need not shrink — the whole distribution shifts up.
        let percentiles = |fraction: f64| {
            let cfg = SimConfig::builder(SystemSpec::tiny_test())
                .duration_hours(12.0)
                .warmup_hours(1.0)
                .theta(1.0)
                .sample_interval_secs(900.0)
                .staging_fraction(fraction)
                .seed(67)
                .build();
            let out = Simulation::run(&cfg);
            let mut w = out.window_utilization;
            w.sort_by(f64::total_cmp);
            (w[0], w[w.len() / 10], w[w.len() - 1])
        };
        let (min0, p10_0, max0) = percentiles(0.0);
        let (min1, p10_1, max1) = percentiles(1.0);
        assert!(min1 > min0 + 0.02, "floor must rise: {min1} vs {min0}");
        assert!(p10_1 > p10_0 + 0.02, "p10 must rise: {p10_1} vs {p10_0}");
        assert!(max1 > max0, "bursts must reach higher: {max1} vs {max0}");
        assert!(max1 > 0.99, "staged servers sprint to full capacity");
    }

    #[test]
    fn per_video_counters_reconcile_with_totals() {
        let cfg = SimConfig::builder(SystemSpec::tiny_test())
            .duration_hours(4.0)
            .theta(-0.5)
            .track_per_video(true)
            .seed(71)
            .build();
        let out = Simulation::run(&cfg);
        assert_eq!(out.per_video_arrivals.len(), cfg.system.n_videos);
        let arrivals: u64 = out.per_video_arrivals.iter().map(|&x| x as u64).sum();
        let rejections: u64 = out.per_video_rejections.iter().map(|&x| x as u64).sum();
        assert_eq!(arrivals, out.stats.arrivals);
        assert_eq!(rejections, out.stats.rejected);
        // Skewed demand: the head video sees the most arrivals.
        let head = out.per_video_arrivals[0];
        let tail = *out.per_video_arrivals.last().unwrap();
        assert!(head > tail, "head {head} vs tail {tail}");
    }

    #[test]
    fn waitlist_recovers_rejections() {
        let base = SimConfig::builder(SystemSpec::tiny_test())
            .duration_hours(8.0)
            .warmup_hours(0.5)
            .theta(0.0)
            .staging_fraction(0.2)
            .seed(73)
            .check_invariants(true);
        let without = Simulation::run(&base.clone().build());
        assert!(without.stats.rejected > 0, "need rejections to recover");
        let with = Simulation::run(&base.waitlist(300.0, 100).build());
        assert!(with.waitlist.enqueued > 0);
        assert!(with.waitlist.served > 0, "waiters must get served");
        assert!(
            with.acceptance_ratio() > without.acceptance_ratio(),
            "waiting must raise acceptance: {} vs {}",
            with.acceptance_ratio(),
            without.acceptance_ratio()
        );
        assert!(with.waitlist.mean_served_wait_secs() > 0.0);
        assert!(with.waitlist.mean_served_wait_secs() <= 300.0 + 1e-9);
        with.stats.check();
        // Conservation: enqueued waiters either got served, expired,
        // or are still waiting at the horizon.
        assert!(with.waitlist.served + with.waitlist.expired <= with.waitlist.enqueued);
    }

    #[test]
    fn waitlist_patience_bounds_service() {
        // With near-zero patience the waitlist cannot help.
        let base = SimConfig::builder(SystemSpec::tiny_test())
            .duration_hours(6.0)
            .warmup_hours(0.5)
            .theta(0.0)
            .seed(79)
            .check_invariants(true);
        let impatient = Simulation::run(&base.clone().waitlist(0.5, 100).build());
        let patient = Simulation::run(&base.waitlist(600.0, 100).build());
        assert!(
            patient.waitlist.served > impatient.waitlist.served,
            "patience must matter: {} vs {}",
            patient.waitlist.served,
            impatient.waitlist.served
        );
    }

    #[test]
    fn multicast_batching_beats_unicast_waiting() {
        use sct_admission::WaitlistSpec;
        // Strong skew: many concurrent waiters for the same hot videos —
        // exactly where batching pays.
        let base = SimConfig::builder(SystemSpec::tiny_test())
            .duration_hours(8.0)
            .warmup_hours(0.5)
            .theta(-1.0)
            .staging_fraction(0.2)
            .seed(83)
            .check_invariants(true);
        let unicast = Simulation::run(
            &base
                .clone()
                .waitlist_spec(WaitlistSpec::new(600.0, 1000))
                .build(),
        );
        let batched = Simulation::run(
            &base
                .waitlist_spec(WaitlistSpec::batching(600.0, 1000))
                .build(),
        );
        assert!(batched.waitlist.batched > 0, "batching never happened");
        assert!(
            batched.acceptance_ratio() >= unicast.acceptance_ratio(),
            "batching must not serve fewer viewers: {} vs {}",
            batched.acceptance_ratio(),
            unicast.acceptance_ratio()
        );
        // A batch admits a whole cohort the moment one slot frees, so the
        // average time-to-play of queued viewers drops.
        assert!(
            batched.waitlist.mean_served_wait_secs() < unicast.waitlist.mean_served_wait_secs(),
            "batching must shorten waits: {} vs {}",
            batched.waitlist.mean_served_wait_secs(),
            unicast.waitlist.mean_served_wait_secs()
        );
        // Multicast viewers receive more data than the servers transmit.
        assert!(batched.stats.accepted_mb > unicast.stats.accepted_mb);
        batched.stats.check();
    }

    #[test]
    fn diurnal_swings_hurt_but_staging_absorbs_some() {
        let base = SimConfig::builder(SystemSpec::tiny_test())
            .duration_hours(12.0)
            .warmup_hours(0.5)
            .theta(0.5)
            .seed(91)
            .check_invariants(true);
        // 3-hour "days" so several cycles fit in the run.
        let flat = Simulation::run(&base.clone().staging_fraction(0.0).build());
        let swing_raw =
            Simulation::run(&base.clone().staging_fraction(0.0).diurnal(1.0, 3.0).build());
        let swing_staged = Simulation::run(&base.staging_fraction(1.0).diurnal(1.0, 3.0).build());
        assert!(
            swing_raw.utilization < flat.utilization - 0.02,
            "full swings must hurt the naive system: {} vs {}",
            swing_raw.utilization,
            flat.utilization
        );
        assert!(
            swing_staged.utilization > swing_raw.utilization + 0.02,
            "staging must absorb part of the swing: {} vs {}",
            swing_staged.utilization,
            swing_raw.utilization
        );
    }

    #[test]
    fn zero_staging_no_migration_still_serves() {
        let cfg = SimConfig::builder(SystemSpec::tiny_test())
            .staging_fraction(0.0)
            .duration_hours(3.0)
            .seed(17)
            .build();
        let out = Simulation::run(&cfg);
        assert!(out.utilization > 0.3, "{}", out.utilization);
        assert_eq!(out.stats.accepted_via_migration, 0);
    }
}
