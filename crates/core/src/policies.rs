//! The paper's policy table (Fig. 6).
//!
//! Eight policies crossing placement knowledge (even vs perfectly
//! predictive) with dynamic request migration (off/on) and client staging
//! (0 % vs 20 % of the average video size). Fig. 7 compares all eight over
//! the Zipf θ axis; the headline result is that **P4 ≈ P8** for θ ∈ [0, 1]
//! — the popularity-oblivious placement matches perfect prediction once
//! migration and staging are on.
//!
//! Following the paper's idealised simulation, the policy-table migration
//! hand-off is instantaneous (latency 0): P3/P7 migrate even with 0 %
//! staging. A non-zero hand-off latency — our more realistic extension —
//! is exercised by the admission tests and the `ablation_handoff` bench.

use sct_admission::MigrationPolicy;
use sct_cluster::PlacementStrategy;
use serde::{Deserialize, Serialize};

/// One row of the paper's Fig. 6 policy table.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum Policy {
    P1,
    P2,
    P3,
    P4,
    P5,
    P6,
    P7,
    P8,
}

impl Policy {
    /// All eight policies in table order.
    pub const ALL: [Policy; 8] = [
        Policy::P1,
        Policy::P2,
        Policy::P3,
        Policy::P4,
        Policy::P5,
        Policy::P6,
        Policy::P7,
        Policy::P8,
    ];

    /// The table name ("P1" … "P8").
    pub fn name(&self) -> &'static str {
        match self {
            Policy::P1 => "P1",
            Policy::P2 => "P2",
            Policy::P3 => "P3",
            Policy::P4 => "P4",
            Policy::P5 => "P5",
            Policy::P6 => "P6",
            Policy::P7 => "P7",
            Policy::P8 => "P8",
        }
    }

    /// `true` for the predictive-placement half of the table (P5–P8).
    pub fn is_predictive(&self) -> bool {
        matches!(self, Policy::P5 | Policy::P6 | Policy::P7 | Policy::P8)
    }

    /// `true` for the migration-enabled rows (P3, P4, P7, P8).
    pub fn migrates(&self) -> bool {
        matches!(self, Policy::P3 | Policy::P4 | Policy::P7 | Policy::P8)
    }

    /// Client staging as a fraction of the average video size
    /// (0 % or 20 %).
    pub fn staging_fraction(&self) -> f64 {
        match self {
            Policy::P2 | Policy::P4 | Policy::P6 | Policy::P8 => 0.2,
            _ => 0.0,
        }
    }

    /// The placement strategy of this row.
    pub fn placement(&self) -> PlacementStrategy {
        if self.is_predictive() {
            PlacementStrategy::predictive_paper()
        } else {
            PlacementStrategy::even_paper()
        }
    }

    /// The migration policy of this row (single hop per request, as in the
    /// paper's experiments; instantaneous hand-off).
    pub fn migration(&self) -> MigrationPolicy {
        if self.migrates() {
            MigrationPolicy {
                handoff_latency_secs: 0.0,
                ..MigrationPolicy::single_hop()
            }
        } else {
            MigrationPolicy::disabled()
        }
    }

    /// Human-readable description matching the Fig. 6 row.
    pub fn description(&self) -> String {
        format!(
            "{} | {} | {} | {:.0}% buffer",
            self.name(),
            if self.is_predictive() {
                "Predictive"
            } else {
                "Even"
            },
            if self.migrates() { "Migr" } else { "No Migr" },
            self.staging_fraction() * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_matches_fig6() {
        // (policy, predictive?, migrates?, staging)
        let expect = [
            (Policy::P1, false, false, 0.0),
            (Policy::P2, false, false, 0.2),
            (Policy::P3, false, true, 0.0),
            (Policy::P4, false, true, 0.2),
            (Policy::P5, true, false, 0.0),
            (Policy::P6, true, false, 0.2),
            (Policy::P7, true, true, 0.0),
            (Policy::P8, true, true, 0.2),
        ];
        for (p, pred, migr, staging) in expect {
            assert_eq!(p.is_predictive(), pred, "{p:?}");
            assert_eq!(p.migrates(), migr, "{p:?}");
            assert_eq!(p.staging_fraction(), staging, "{p:?}");
            assert_eq!(p.migration().enabled, migr);
        }
    }

    #[test]
    fn all_lists_eight_in_order() {
        assert_eq!(Policy::ALL.len(), 8);
        assert_eq!(Policy::ALL[0].name(), "P1");
        assert_eq!(Policy::ALL[7].name(), "P8");
    }

    #[test]
    fn policy_migration_is_single_hop_and_instant() {
        let m = Policy::P4.migration();
        assert!(m.enabled);
        assert_eq!(m.max_hops_per_request, Some(1));
        assert_eq!(m.handoff_latency_secs, 0.0);
    }

    #[test]
    fn descriptions_render() {
        assert_eq!(Policy::P4.description(), "P4 | Even | Migr | 20% buffer");
        assert_eq!(
            Policy::P5.description(),
            "P5 | Predictive | No Migr | 0% buffer"
        );
    }
}
