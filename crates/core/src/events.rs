//! Typed simulation events and the probe (observer) layer.
//!
//! The event loop in [`crate::simulation`] narrates everything observable
//! that happens during a trial as a stream of [`SimEvent`] records. A
//! [`Probe`] subscribes to that stream: the built-in [`MetricsProbe`]
//! folds it into the counters that [`crate::simulation::SimOutcome`]
//! reports, and [`JsonlTraceProbe`] exports it as a replayable JSONL
//! trace (one `{"t": seconds, "event": {...}}` object per line,
//! externally-tagged variant encoding) for post-hoc analysis with the
//! `sct-analysis` trace reader.
//!
//! Probes observe; they never steer. The simulation's behaviour is
//! bit-identical with any set of probes attached, including none.

use sct_simcore::SimTime;
use serde::{Deserialize, Serialize};
use std::io::Write;

/// How an accepted request obtained its slot.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum AdmitPath {
    /// A replica holder had a free slot.
    Direct,
    /// A single victim migration freed the slot (DRM).
    Migrated,
    /// A two-step migration chain freed the slot.
    Chained,
}

/// One observable simulation occurrence, stamped by the loop with the
/// simulation time at which it happened.
///
/// Ids are raw integers (stream id, video index, server index) so the
/// record is self-contained on the wire; the JSONL encoding is the
/// externally-tagged form `{"Admitted": {...}}`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum SimEvent {
    /// A request was accepted and its stream started.
    Admitted {
        /// The new stream's id.
        stream: u64,
        /// Requested video index.
        video: u32,
        /// Server transmitting the stream.
        server: u16,
        /// How the slot was obtained.
        path: AdmitPath,
    },
    /// A request was turned away (it may still enter the waitlist).
    Rejected {
        /// The id the stream would have carried.
        stream: u64,
        /// Requested video index.
        video: u32,
    },
    /// A viewer stream finished transmission.
    Completed {
        /// The finished stream.
        stream: u64,
        /// Server it finished on.
        server: u16,
    },
    /// An active stream moved between servers (DRM victim hand-off or
    /// emergency evacuation).
    Migrated {
        /// The relocated stream.
        stream: u64,
        /// Previous host server.
        from: u16,
        /// New host server.
        to: u16,
        /// `true` when the move was a failure evacuation rather than an
        /// admission-time DRM hand-off.
        emergency: bool,
    },
    /// A server failed; its streams were evacuated or dropped.
    ServerDown {
        /// The failed server.
        server: u16,
        /// Streams re-homed on other servers.
        relocated: u32,
        /// Streams whose viewers lost service.
        dropped: u32,
    },
    /// A failed server came back online (empty).
    ServerUp {
        /// The repaired server.
        server: u16,
    },
    /// A viewer paused playback.
    Paused {
        /// The paused stream.
        stream: u64,
        /// Server currently hosting it.
        server: u16,
    },
    /// A paused viewer resumed playback.
    Resumed {
        /// The resumed stream.
        stream: u64,
        /// Server currently hosting it.
        server: u16,
    },
    /// A dynamic-replication copy started.
    CopyStarted {
        /// The copy stream's id (also the completion token).
        copy: u64,
        /// Video being replicated.
        video: u32,
        /// `true` for tertiary-sourced copies (no data-server bandwidth).
        tertiary: bool,
    },
    /// A replication copy finished.
    CopyDone {
        /// The copy stream's id.
        copy: u64,
        /// `true` if the replica was installed (`false` when the copy was
        /// aborted by a failure before completion).
        installed: bool,
    },
    /// A rejected request entered the wait queue.
    WaitlistQueued {
        /// The waiting request's stream id.
        stream: u64,
        /// Requested video index.
        video: u32,
    },
    /// A queued request was finally served.
    WaitlistServed {
        /// The served request's stream id.
        stream: u64,
        /// Requested video index.
        video: u32,
        /// Server that took the stream.
        server: u16,
        /// `true` when the viewer joined an existing multicast batch.
        batched: bool,
        /// How long the viewer waited, seconds.
        waited_secs: f64,
    },
    /// Waiters ran out of patience and left the queue.
    WaitlistExpired {
        /// How many gave up at this instant.
        count: u32,
    },
    /// One windowed-utilization sample (time-series analysis).
    WindowSample {
        /// Zero-based window index since the warm-up.
        index: u32,
        /// Utilization of the window just closed.
        utilization: f64,
    },
    /// A causal-edge interaction crossed a shard boundary (sharded loop
    /// only, `shards > 1`): the explicit cross-shard channel record.
    /// Never emitted by the monolithic loop, and ignored by the metrics
    /// and span probes, so outcomes and span sets are identical for
    /// every shard count.
    CrossShard {
        /// The moving (or copying) stream.
        stream: u64,
        /// Server the stream left (or copies from).
        from: u16,
        /// Server the stream moved to (or copies toward).
        to: u16,
        /// Shard owning `from`.
        from_shard: u16,
        /// Shard owning `to`.
        to_shard: u16,
        /// Which causal edge crossed.
        edge: CrossShardEdge,
    },
}

/// The four causal-edge interactions a [`SimEvent::CrossShard`] record
/// can carry — exactly the edges the span layer's dependency graph
/// tracks, which is why they are the only places shards must
/// synchronize.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum CrossShardEdge {
    /// A DRM victim displaced at admission time.
    Displacement,
    /// The inner (second) hop of a two-step migration chain.
    ChainInnerHop,
    /// A cluster-sourced replication copy toward its target.
    ReplicationCopy,
    /// A stream rescued (relocated or restarted) off a failed server.
    EvacuationRescue,
}

impl From<sct_admission::RelocationKind> for CrossShardEdge {
    fn from(kind: sct_admission::RelocationKind) -> Self {
        match kind {
            sct_admission::RelocationKind::Displacement => CrossShardEdge::Displacement,
            sct_admission::RelocationKind::ChainInnerHop => CrossShardEdge::ChainInnerHop,
            sct_admission::RelocationKind::ReplicationCopy => CrossShardEdge::ReplicationCopy,
            sct_admission::RelocationKind::EvacuationRescue => CrossShardEdge::EvacuationRescue,
        }
    }
}

impl SimEvent {
    /// Every variant tag, in declaration order. Kept next to
    /// [`SimEvent::kind`] so both fail to compile when a variant is
    /// added without updating them; `tests/probe_coverage.rs` asserts
    /// every probe accounts for every entry.
    pub const KINDS: [&'static str; 15] = [
        "Admitted",
        "Rejected",
        "Completed",
        "Migrated",
        "ServerDown",
        "ServerUp",
        "Paused",
        "Resumed",
        "CopyStarted",
        "CopyDone",
        "WaitlistQueued",
        "WaitlistServed",
        "WaitlistExpired",
        "WindowSample",
        "CrossShard",
    ];

    /// The variant name as it appears on the wire (the JSONL tag).
    pub fn kind(&self) -> &'static str {
        match self {
            SimEvent::Admitted { .. } => "Admitted",
            SimEvent::Rejected { .. } => "Rejected",
            SimEvent::Completed { .. } => "Completed",
            SimEvent::Migrated { .. } => "Migrated",
            SimEvent::ServerDown { .. } => "ServerDown",
            SimEvent::ServerUp { .. } => "ServerUp",
            SimEvent::Paused { .. } => "Paused",
            SimEvent::Resumed { .. } => "Resumed",
            SimEvent::CopyStarted { .. } => "CopyStarted",
            SimEvent::CopyDone { .. } => "CopyDone",
            SimEvent::WaitlistQueued { .. } => "WaitlistQueued",
            SimEvent::WaitlistServed { .. } => "WaitlistServed",
            SimEvent::WaitlistExpired { .. } => "WaitlistExpired",
            SimEvent::WindowSample { .. } => "WindowSample",
            SimEvent::CrossShard { .. } => "CrossShard",
        }
    }
}

/// One barrier-to-barrier run of the sharded event loop, summarized for
/// observability probes.
///
/// Emitted by the loop *only* when `shards > 1` (the monolithic loop has
/// no barrier), after the run's last event and before the next barrier
/// election. Every field is a pure function of virtual time and the
/// deterministic queue protocol — no wall-clock quantities — so the
/// summary stream is bit-identical across repeated runs of the same
/// config at the same shard count.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RunSummary {
    /// The shard this run drained.
    pub shard: u16,
    /// Total shard count of the loop (constant per simulation).
    pub n_shards: u16,
    /// Virtual time of the run's first event (the elected head).
    pub start: SimTime,
    /// Barrier-horizon slack at election: how far (virtual seconds) the
    /// earliest foreign work lay ahead of the elected head. `None` when
    /// the run was unbounded (every other shard was empty).
    pub slack_secs: Option<f64>,
    /// Events dispatched during the run (stale wake-ups excluded).
    pub events: u64,
    /// `true` when the shard still held work at run end — it stalled at
    /// the barrier horizon instead of draining.
    pub stalled: bool,
}

/// An observer of the simulation's event stream.
///
/// Probes receive every [`SimEvent`] in simulation-time order, stamped
/// with its time. They must not assume anything about wall-clock
/// interleaving and cannot influence the run.
pub trait Probe {
    /// Called once per event, in order.
    fn on_event(&mut self, now: SimTime, event: &SimEvent);

    /// Called after each event's handler with a read-only view of world
    /// state at the event boundary. Default: ignore (event-only probes
    /// need no state).
    fn on_state(&mut self, _now: SimTime, _view: &crate::metrics::StateView) {}

    /// Called after each barrier-to-barrier run of the sharded loop
    /// (`shards > 1` only) with that run's [`RunSummary`]. Default:
    /// ignore — outcome-bearing probes must not depend on it, since the
    /// monolithic loop never calls it.
    fn on_run(&mut self, _summary: &RunSummary) {}

    /// Whether this probe consumes [`Probe::on_state`] views. The
    /// parallel epoch path cannot build a coherent global state view
    /// mid-burst, so it only engages when every attached probe returns
    /// `false`. Defaults to `true` (conservative: unknown probes force
    /// the sequential loop); event-only probes override it.
    fn uses_state(&self) -> bool {
        true
    }
}

/// Fans one event out to every attached probe, in order.
pub(crate) fn emit(probes: &mut [&mut dyn Probe], now: SimTime, event: &SimEvent) {
    for p in probes.iter_mut() {
        p.on_event(now, event);
    }
}

/// Fans one run summary out to every attached probe, in order.
pub(crate) fn emit_run(probes: &mut [&mut dyn Probe], summary: &RunSummary) {
    for p in probes.iter_mut() {
        p.on_run(summary);
    }
}

/// The accounting probe: folds the event stream into the event-driven
/// counters of [`crate::simulation::SimOutcome`].
///
/// (Quantities that are integrals of engine state — utilization, goodput,
/// per-server megabits — are computed by the epilogue from the engines
/// themselves; they are not events.)
#[derive(Clone, Debug, PartialEq)]
pub struct MetricsProbe {
    /// Viewer streams that finished transmission.
    pub completions: u64,
    /// Server failures observed.
    pub server_failures: u64,
    /// Pauses applied to live streams.
    pub pauses_applied: u64,
    /// Windowed-utilization samples, in window order.
    pub window_utilization: Vec<f64>,
    /// Arrivals per video (empty unless per-video tracking is on).
    pub per_video_arrivals: Vec<u32>,
    /// Rejections per video (empty unless per-video tracking is on).
    pub per_video_rejections: Vec<u32>,
}

impl MetricsProbe {
    /// Creates the probe; `n_videos > 0` with `track_per_video` sizes the
    /// per-video counters, otherwise they stay empty.
    pub fn new(n_videos: usize, track_per_video: bool) -> Self {
        let (pv_a, pv_r) = if track_per_video {
            (vec![0u32; n_videos], vec![0u32; n_videos])
        } else {
            (Vec::new(), Vec::new())
        };
        MetricsProbe {
            completions: 0,
            server_failures: 0,
            pauses_applied: 0,
            window_utilization: Vec::new(),
            per_video_arrivals: pv_a,
            per_video_rejections: pv_r,
        }
    }

    fn count_arrival(&mut self, video: u32) {
        if !self.per_video_arrivals.is_empty() {
            self.per_video_arrivals[video as usize] += 1;
        }
    }
}

impl Probe for MetricsProbe {
    fn on_event(&mut self, _now: SimTime, event: &SimEvent) {
        match *event {
            SimEvent::Admitted { video, .. } => self.count_arrival(video),
            SimEvent::Rejected { video, .. } => {
                self.count_arrival(video);
                if !self.per_video_rejections.is_empty() {
                    self.per_video_rejections[video as usize] += 1;
                }
            }
            SimEvent::Completed { .. } => self.completions += 1,
            SimEvent::ServerDown { .. } => self.server_failures += 1,
            SimEvent::Paused { .. } => self.pauses_applied += 1,
            SimEvent::WindowSample { utilization, .. } => {
                self.window_utilization.push(utilization);
            }
            _ => {}
        }
    }

    fn uses_state(&self) -> bool {
        false
    }
}

/// Opt-in shard-locality counter: folds [`SimEvent::CrossShard`] channel
/// records — and *only* those — into per-edge totals, quantifying how
/// often a scenario's causality crosses shard boundaries.
///
/// The outcome-bearing probes deliberately ignore `CrossShard` (it only
/// exists when `shards > 1`, and outcomes must be shard-invariant);
/// attach this probe explicitly when locality is the question. On the
/// monolithic loop every count stays zero.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CrossShardCounter {
    /// All cross-shard edges observed.
    pub total: u64,
    /// DRM victims displaced across a boundary at admission time.
    pub displacements: u64,
    /// Inner hops of two-step migration chains.
    pub chain_inner_hops: u64,
    /// Cluster-sourced replication copies toward a foreign shard.
    pub replication_copies: u64,
    /// Streams rescued off a failed server onto a foreign shard.
    pub evacuation_rescues: u64,
}

impl CrossShardCounter {
    /// A fresh all-zero counter.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Probe for CrossShardCounter {
    fn on_event(&mut self, _now: SimTime, event: &SimEvent) {
        if let SimEvent::CrossShard { edge, .. } = event {
            self.total += 1;
            match edge {
                CrossShardEdge::Displacement => self.displacements += 1,
                CrossShardEdge::ChainInnerHop => self.chain_inner_hops += 1,
                CrossShardEdge::ReplicationCopy => self.replication_copies += 1,
                CrossShardEdge::EvacuationRescue => self.evacuation_rescues += 1,
            }
        }
    }

    fn uses_state(&self) -> bool {
        false
    }
}

/// Streams the event record to a file as JSON Lines: one
/// `{"t": <secs>, "event": {"<Kind>": {...}}}` object per line.
///
/// I/O errors are deferred: the probe keeps a sticky first error and
/// [`JsonlTraceProbe::finish`] surfaces it, so the simulation loop stays
/// infallible.
pub struct JsonlTraceProbe {
    out: std::io::BufWriter<std::fs::File>,
    lines: u64,
    error: Option<std::io::Error>,
}

impl JsonlTraceProbe {
    /// Creates (truncating) the trace file at `path`.
    pub fn create(path: impl AsRef<std::path::Path>) -> std::io::Result<Self> {
        Ok(JsonlTraceProbe {
            out: std::io::BufWriter::new(std::fs::File::create(path)?),
            lines: 0,
            error: None,
        })
    }

    /// Flushes the writer and returns the number of lines written, or the
    /// first I/O error encountered while streaming.
    pub fn finish(mut self) -> std::io::Result<u64> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        self.out.flush()?;
        Ok(self.lines)
    }
}

impl Drop for JsonlTraceProbe {
    /// Flushes buffered lines so the trace on disk is complete even when
    /// the probe is dropped without [`JsonlTraceProbe::finish`] (e.g. an
    /// early return or panic unwinding past the caller). Errors here are
    /// unreportable and dropped; call `finish` to observe them.
    fn drop(&mut self) {
        let _ = self.out.flush();
    }
}

impl Probe for JsonlTraceProbe {
    fn on_event(&mut self, now: SimTime, event: &SimEvent) {
        if self.error.is_some() {
            return;
        }
        let body = serde_json::to_string(event).expect("SimEvent serialises");
        // f64 Display is shortest-exact and never exponential: valid JSON.
        let line = format!("{{\"t\":{},\"event\":{}}}\n", now.as_secs(), body);
        if let Err(e) = self.out.write_all(line.as_bytes()) {
            self.error = Some(e);
        } else {
            self.lines += 1;
        }
    }

    fn uses_state(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metrics_probe_folds_counters() {
        let mut m = MetricsProbe::new(3, true);
        let t = SimTime::ZERO;
        m.on_event(
            t,
            &SimEvent::Admitted {
                stream: 0,
                video: 1,
                server: 0,
                path: AdmitPath::Direct,
            },
        );
        m.on_event(
            t,
            &SimEvent::Rejected {
                stream: 1,
                video: 1,
            },
        );
        m.on_event(
            t,
            &SimEvent::Completed {
                stream: 0,
                server: 0,
            },
        );
        m.on_event(
            t,
            &SimEvent::ServerDown {
                server: 2,
                relocated: 0,
                dropped: 1,
            },
        );
        m.on_event(
            t,
            &SimEvent::Paused {
                stream: 5,
                server: 1,
            },
        );
        m.on_event(
            t,
            &SimEvent::WindowSample {
                index: 0,
                utilization: 0.5,
            },
        );
        assert_eq!(m.per_video_arrivals, vec![0, 2, 0]);
        assert_eq!(m.per_video_rejections, vec![0, 1, 0]);
        assert_eq!(m.completions, 1);
        assert_eq!(m.server_failures, 1);
        assert_eq!(m.pauses_applied, 1);
        assert_eq!(m.window_utilization, vec![0.5]);
    }

    #[test]
    fn metrics_probe_without_tracking_keeps_empty_vectors() {
        let mut m = MetricsProbe::new(3, false);
        m.on_event(
            SimTime::ZERO,
            &SimEvent::Rejected {
                stream: 0,
                video: 2,
            },
        );
        assert!(m.per_video_arrivals.is_empty());
        assert!(m.per_video_rejections.is_empty());
    }

    #[test]
    fn sim_event_round_trips_through_json() {
        let events = [
            SimEvent::Admitted {
                stream: 7,
                video: 3,
                server: 1,
                path: AdmitPath::Chained,
            },
            SimEvent::Migrated {
                stream: 2,
                from: 0,
                to: 1,
                emergency: true,
            },
            SimEvent::WindowSample {
                index: 4,
                utilization: 0.8734561234,
            },
            SimEvent::WaitlistServed {
                stream: 9,
                video: 0,
                server: 2,
                batched: false,
                waited_secs: 12.5,
            },
        ];
        for ev in &events {
            let json = serde_json::to_string(ev).unwrap();
            assert!(json.contains(ev.kind()), "{json}");
            let back: SimEvent = serde_json::from_str(&json).unwrap();
            assert_eq!(&back, ev);
        }
    }

    #[test]
    fn jsonl_probe_writes_one_line_per_event() {
        let dir = std::env::temp_dir().join("sct-events-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("probe.jsonl");
        let mut probe = JsonlTraceProbe::create(&path).unwrap();
        probe.on_event(SimTime::from_secs(1.25), &SimEvent::ServerUp { server: 3 });
        probe.on_event(
            SimTime::from_secs(2.5),
            &SimEvent::WaitlistExpired { count: 2 },
        );
        assert_eq!(probe.finish().unwrap(), 2);
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(
            lines[0],
            "{\"t\":1.25,\"event\":{\"ServerUp\":{\"server\":3}}}"
        );
        assert!(lines[1].starts_with("{\"t\":2.5,"));
    }

    #[test]
    fn jsonl_probe_dropped_without_finish_still_flushes() {
        let dir = std::env::temp_dir().join("sct-events-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("dropped.jsonl");
        {
            let mut probe = JsonlTraceProbe::create(&path).unwrap();
            for i in 0..100 {
                probe.on_event(
                    SimTime::from_secs(i as f64),
                    &SimEvent::ServerUp { server: i },
                );
            }
            // No finish(): the Drop impl must flush the BufWriter.
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let trace = sct_analysis::Trace::parse(&text).expect("dropped trace parses fully");
        assert_eq!(trace.len(), 100);
        assert_eq!(trace.count("ServerUp"), 100);
        for (i, ev) in trace.events.iter().enumerate() {
            assert_eq!(ev.t, i as f64);
            assert_eq!(ev.num_field("server"), Some(i as f64));
        }
    }
}
