//! Wall-clock execution-plane recorder for the event loop.
//!
//! [`ExecRecorder`] instruments the epoch machinery itself — *how* the
//! loop ran, not what it simulated: per-epoch election/merge/re-attach
//! windows on the coordinator, one burst record per elected shard with
//! its worker slot and wall window, the offload-vs-inline decision, and
//! the classic runs of the plane/fallback path. Everything is measured
//! with monotonic clocks (`Instant::now`) entirely outside
//! virtual time; the recorder only *reads* loop state that already
//! exists for the run summaries (`shard_len`, election heads, burst
//! logs), so outcomes, spans, and time-series recordings are
//! bit-identical with recording on — `tests/parallel_determinism.rs`
//! enforces it across the golden scenarios and the shard × thread
//! matrix.
//!
//! The cost model: the recorder adds work per *epoch* and per *run*
//! (a handful of `Instant::now` reads and one `Vec` push), never per
//! event, so the overhead on event-dense cells stays under the 2%
//! budget `results/BENCH_sim.json` gates.
//!
//! [`ExecRecorder::finish`] converts the raw records into the
//! [`sct_analysis::exec::ExecTrace`] wire form, embedding the trial's
//! merged [`LoopProfile`] so `sctsim exec` can reconcile the recorder's
//! barrier accounting against the loop's own `barrier` phase.

use crate::config::SimConfig;
use crate::profile::LoopProfile;
use sct_analysis::exec::{BurstRecord, EpochRecord, ExecTrace, RunRecord};
use std::time::Instant;

/// Raw per-burst observation, before timestamp normalisation.
#[derive(Clone, Copy, Debug)]
pub(crate) struct BurstObs {
    pub shard: u32,
    pub worker: u32,
    pub start: Instant,
    pub end: Instant,
    pub events: u64,
    pub pending: u64,
    pub foreign_pushes: u64,
    pub slack_secs: Option<f64>,
    pub stalled: bool,
}

/// Raw per-epoch observation. Bursts live in the recorder's single
/// flat buffer (see [`ExecRecorder::push_epoch`]) so recording an
/// epoch never allocates on its own — epochs on event-dense runs come
/// tens of thousands per second, and a nested `Vec` per epoch was
/// measurable against the overhead budget.
#[derive(Clone, Copy, Debug)]
pub(crate) struct EpochObs {
    pub elect_start: Instant,
    pub elect_end: Instant,
    pub merge_start: Instant,
    pub merge_end: Instant,
    pub reattach_end: Instant,
    pub pending: u64,
    pub offloaded: bool,
    pub threads_used: u32,
}

/// Raw classic-run observation.
#[derive(Clone, Debug)]
pub(crate) struct RunObs {
    pub shard: u32,
    pub elect_start: Instant,
    pub elect_end: Instant,
    pub end: Instant,
    pub events: u64,
    pub pending: u64,
    pub slack_secs: Option<f64>,
    pub stalled: bool,
}

/// Collects execution-plane observations for one trial. Attach with
/// [`crate::simulation::Simulation::run_instrumented`], then call
/// [`ExecRecorder::finish`] for the serialisable trace.
#[derive(Debug)]
pub struct ExecRecorder {
    t0: Instant,
    /// Epoch metadata plus the `(start, len)` window of its bursts in
    /// the flat `bursts` buffer.
    epochs: Vec<(EpochObs, u32, u32)>,
    bursts: Vec<BurstObs>,
    runs: Vec<RunObs>,
}

impl Default for ExecRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl ExecRecorder {
    /// A recorder whose clock starts now.
    pub fn new() -> Self {
        ExecRecorder {
            t0: Instant::now(),
            epochs: Vec::new(),
            bursts: Vec::new(),
            runs: Vec::new(),
        }
    }

    fn us(&self, t: Instant) -> f64 {
        t.saturating_duration_since(self.t0).as_secs_f64() * 1e6
    }

    pub(crate) fn push_epoch(&mut self, e: EpochObs, bursts: &[BurstObs]) {
        let start = self.bursts.len() as u32;
        self.bursts.extend_from_slice(bursts);
        self.epochs.push((e, start, bursts.len() as u32));
    }

    pub(crate) fn push_run(&mut self, r: RunObs) {
        self.runs.push(r);
    }

    /// Summary counters for `--profile` output.
    pub fn stats(&self) -> ExecStats {
        ExecStats {
            epochs_run: self.epochs.len() as u64,
            bursts_offloaded: self
                .epochs
                .iter()
                .filter(|(e, _, _)| e.offloaded)
                .map(|&(_, _, len)| len as u64)
                .sum(),
            bursts_inline: self
                .epochs
                .iter()
                .filter(|(e, _, _)| !e.offloaded)
                .map(|&(_, _, len)| len as u64)
                .sum(),
            classic_runs: self.runs.len() as u64,
        }
    }

    /// Converts the raw observations into the wire-form trace,
    /// stamping the run's configuration and merged profile.
    pub fn finish(self, config: &SimConfig, profile: &LoopProfile) -> ExecTrace {
        let wall_secs = Instant::now()
            .saturating_duration_since(self.t0)
            .as_secs_f64();
        let epochs = self
            .epochs
            .iter()
            .map(|&(e, start, len)| EpochRecord {
                elect_start_us: self.us(e.elect_start),
                elect_end_us: self.us(e.elect_end),
                merge_start_us: self.us(e.merge_start),
                merge_end_us: self.us(e.merge_end),
                reattach_end_us: self.us(e.reattach_end),
                pending: e.pending,
                offloaded: e.offloaded,
                threads_used: e.threads_used,
                bursts: self.bursts[start as usize..(start + len) as usize]
                    .iter()
                    .map(|b| BurstRecord {
                        shard: b.shard,
                        worker: b.worker,
                        start_us: self.us(b.start),
                        end_us: self.us(b.end),
                        events: b.events,
                        pending: b.pending,
                        foreign_pushes: b.foreign_pushes,
                        slack_secs: b.slack_secs,
                        stalled: b.stalled,
                    })
                    .collect(),
            })
            .collect();
        let runs = self
            .runs
            .iter()
            .map(|r| RunRecord {
                shard: r.shard,
                elect_start_us: self.us(r.elect_start),
                elect_end_us: self.us(r.elect_end),
                end_us: self.us(r.end),
                events: r.events,
                pending: r.pending,
                slack_secs: r.slack_secs,
                stalled: r.stalled,
            })
            .collect();
        ExecTrace {
            version: 1,
            shards: config.shards as u32,
            threads: config.threads as u32,
            offload_min_events: config.offload_min_events as u64,
            wall_secs,
            epochs,
            runs,
            profile: profile.snapshot(),
        }
    }
}

/// Execution-plane counters surfaced by `sctsim run --profile` when
/// `--threads > 1`: did the parallel path actually engage, and how did
/// the bursts dispatch?
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Parallel epochs executed (0 means the classic fallback ran).
    pub epochs_run: u64,
    /// Bursts dispatched to worker threads.
    pub bursts_offloaded: u64,
    /// Bursts that ran inline on the coordinator (pending events below
    /// the offload threshold, or a single elected shard).
    pub bursts_inline: u64,
    /// Classic (plane/fallback) runs executed.
    pub classic_runs: u64,
}

impl ExecStats {
    /// One-line rendering for `--profile` output.
    pub fn to_text(&self) -> String {
        format!(
            "execution plane: {} epochs ({} bursts offloaded, {} inline), {} classic runs",
            self.epochs_run, self.bursts_offloaded, self.bursts_inline, self.classic_runs
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;

    #[test]
    fn recorder_finishes_into_a_wire_trace() {
        let mut rec = ExecRecorder::new();
        let t = Instant::now();
        rec.push_run(RunObs {
            shard: 3,
            elect_start: t,
            elect_end: t,
            end: t,
            events: 7,
            pending: 9,
            slack_secs: Some(1.25),
            stalled: true,
        });
        rec.push_epoch(
            EpochObs {
                elect_start: t,
                elect_end: t,
                merge_start: t,
                merge_end: t,
                reattach_end: t,
                pending: 12,
                offloaded: true,
                threads_used: 2,
            },
            &[BurstObs {
                shard: 1,
                worker: 1,
                start: t,
                end: t,
                events: 12,
                pending: 12,
                foreign_pushes: 3,
                slack_secs: None,
                stalled: false,
            }],
        );
        let stats = rec.stats();
        assert_eq!(stats.epochs_run, 1);
        assert_eq!(stats.bursts_offloaded, 1);
        assert_eq!(stats.bursts_inline, 0);
        assert_eq!(stats.classic_runs, 1);
        assert!(stats.to_text().contains("1 epochs"));

        let cfg = SimConfig::builder(sct_workload::SystemSpec::tiny_test())
            .shards(4)
            .threads(2)
            .build();
        let profile = LoopProfile::merge(&[]);
        let trace = rec.finish(&cfg, &profile);
        assert_eq!(trace.version, 1);
        assert_eq!(trace.shards, 4);
        assert_eq!(trace.threads, 2);
        assert_eq!(trace.epochs.len(), 1);
        assert_eq!(trace.runs.len(), 1);
        assert_eq!(trace.runs[0].shard, 3);
        assert_eq!(trace.runs[0].slack_secs, Some(1.25));
        assert_eq!(trace.epochs[0].bursts[0].foreign_pushes, 3);
        assert!(trace.wall_secs >= 0.0);
        // Round-trip through the combined JSON export.
        let back = ExecTrace::from_json(&trace.to_json()).unwrap();
        assert_eq!(back, trace);
    }
}
