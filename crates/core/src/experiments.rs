//! Experiment drivers — one per paper table/figure (see DESIGN.md's
//! per-experiment index).
//!
//! Every driver sweeps an axis, runs [`crate::runner::run_trials`] per
//! point, and returns a [`Series`] (curves of trial summaries) or a
//! [`Table`]. The [`ExpOptions`] presets trade fidelity for time:
//!
//! * [`ExpOptions::quick`] — CI-sized smoke runs;
//! * [`ExpOptions::standard`] — minutes-per-figure, shape-faithful;
//! * [`ExpOptions::paper`] — the paper's full 5 × 1000 h protocol.

use crate::config::{SimConfig, StagingSpec};
use crate::policies::Policy;
use crate::runner::{run_trials, utilization_summary, TrialPlan};
use sct_admission::MigrationPolicy;
use sct_analysis::erlang::expected_utilization_vs_svbr;
use sct_analysis::{Series, Table};
use sct_cluster::PlacementStrategy;
use sct_simcore::Summary;
use sct_transmission::SchedulerKind;
use sct_workload::{HeterogeneityKind, SystemSpec};
use serde::{Deserialize, Serialize};

/// Sweep fidelity knobs shared by all experiment drivers.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ExpOptions {
    /// Independent trials per data point (the paper uses 5).
    pub trials: u32,
    /// Simulated hours per trial (the paper uses 1000).
    pub duration_hours: f64,
    /// Warm-up hours excluded from metrics.
    pub warmup_hours: f64,
    /// The Zipf θ axis for figures 4, 5, and 7.
    pub thetas: Vec<f64>,
    /// Base seed for trial derivation.
    pub base_seed: u64,
}

impl ExpOptions {
    /// The θ grid the paper plots: −1.5 to 1.0.
    pub fn paper_thetas(step: f64) -> Vec<f64> {
        let mut v = Vec::new();
        let mut t: f64 = -1.5;
        while t <= 1.0 + 1e-9 {
            v.push((t * 1000.0).round() / 1000.0);
            t += step;
        }
        v
    }

    /// Smoke-test fidelity (seconds per figure).
    pub fn quick() -> Self {
        ExpOptions {
            trials: 2,
            duration_hours: 8.0,
            warmup_hours: 0.5,
            thetas: vec![-1.5, -0.5, 0.5, 1.0],
            base_seed: 0x5C7,
        }
    }

    /// Default fidelity: the qualitative shape is stable (minutes per
    /// figure).
    pub fn standard() -> Self {
        ExpOptions {
            trials: 3,
            duration_hours: 60.0,
            warmup_hours: 2.0,
            thetas: Self::paper_thetas(0.25),
            base_seed: 0x5C7,
        }
    }

    /// The paper's protocol: 5 trials × 1000 hours.
    pub fn paper() -> Self {
        ExpOptions {
            trials: 5,
            duration_hours: 1000.0,
            warmup_hours: 5.0,
            thetas: Self::paper_thetas(0.25),
            base_seed: 0x5C7,
        }
    }

    fn base(&self, system: &SystemSpec) -> crate::config::SimConfigBuilder {
        SimConfig::builder(system.clone())
            .duration_hours(self.duration_hours)
            .warmup_hours(self.warmup_hours)
    }

    fn run_point(&self, cfg: &SimConfig) -> Summary {
        utilization_summary(&run_trials(
            cfg,
            TrialPlan::new(self.trials, self.base_seed),
        ))
    }
}

/// **E1 / Fig. 3** — the two reference system parameter sets.
pub fn fig3_table() -> Table {
    let mut t = Table::new(vec!["Parameter", "Small", "Large"]);
    let s = SystemSpec::small_paper();
    let l = SystemSpec::large_paper();
    t.push_row(vec![
        "Number of Servers".to_string(),
        s.n_servers.to_string(),
        l.n_servers.to_string(),
    ]);
    t.push_row(vec![
        "Bandwidth".to_string(),
        format!("{} Mb/s", s.server_bandwidth_mbps),
        format!("{} Mb/s", l.server_bandwidth_mbps),
    ]);
    t.push_row(vec![
        "Video Length".to_string(),
        format!(
            "{:.0}-{:.0} Min",
            s.video_length_secs.0 / 60.0,
            s.video_length_secs.1 / 60.0
        ),
        format!(
            "{:.0}-{:.0} Hrs",
            l.video_length_secs.0 / 3600.0,
            l.video_length_secs.1 / 3600.0
        ),
    ]);
    t.push_row(vec![
        "Number of Videos".to_string(),
        s.n_videos.to_string(),
        l.n_videos.to_string(),
    ]);
    t.push_row(vec![
        "Average Copies Per Video".to_string(),
        format!("{}", s.avg_copies),
        format!("{}", l.avg_copies),
    ]);
    t.push_row(vec![
        "Disk Capacity".to_string(),
        format!("{} GB", s.server_disk_gb),
        format!("{} GB", l.server_disk_gb),
    ]);
    t.push_row(vec![
        "SVBR (slots/server)".to_string(),
        s.svbr().to_string(),
        l.svbr().to_string(),
    ]);
    t
}

/// **E4 / Fig. 6** — the policy table.
pub fn fig6_table() -> Table {
    let mut t = Table::new(vec![
        "Policy Number",
        "Allocation Policy",
        "Migration Policy",
        "Client Staging",
    ]);
    for p in Policy::ALL {
        t.push_row(vec![
            p.name().to_string(),
            if p.is_predictive() {
                "Predictive"
            } else {
                "Even"
            }
            .to_string(),
            if p.migrates() { "Migr" } else { "No Migr" }.to_string(),
            format!("{:.0}% Buffer", p.staging_fraction() * 100.0),
        ]);
    }
    t
}

/// **E2 / Fig. 4** — the effect of dynamic request migration.
///
/// Even placement; staging is only what migration needs (zero under the
/// paper's instantaneous hand-off); curves: no migration, one hop per
/// request, unlimited hops.
pub fn fig4(system: &SystemSpec, opts: &ExpOptions) -> Series {
    let mut series = Series::new(
        format!("Fig. 4 — dynamic request migration ({})", system.name),
        "zipf theta",
        "utilization",
        opts.thetas.clone(),
    );
    let variants: [(&str, MigrationPolicy); 3] = [
        ("no migration", MigrationPolicy::disabled()),
        (
            "hops per request = 1",
            MigrationPolicy {
                handoff_latency_secs: 0.0,
                ..MigrationPolicy::single_hop()
            },
        ),
        (
            "unlimited hops",
            MigrationPolicy {
                handoff_latency_secs: 0.0,
                ..MigrationPolicy::unlimited_hops()
            },
        ),
    ];
    for (label, migration) in variants {
        let points = opts
            .thetas
            .iter()
            .map(|&theta| {
                let cfg = opts
                    .base(system)
                    .theta(theta)
                    .placement(PlacementStrategy::even_paper())
                    .migration(migration)
                    .staging(StagingSpec::AbsoluteMb(0.0))
                    .build();
                opts.run_point(&cfg)
            })
            .collect();
        series.push_curve(label, points);
    }
    series
}

/// **E3 / Fig. 5** — the effect of client staging.
///
/// Even placement, *no* migration, client receive cap 30 Mb/s; buffer =
/// {0, 2, 20, 100} % of the average video size.
pub fn fig5(system: &SystemSpec, opts: &ExpOptions) -> Series {
    let mut series = Series::new(
        format!("Fig. 5 — client staging ({})", system.name),
        "zipf theta",
        "utilization",
        opts.thetas.clone(),
    );
    for fraction in [0.0, 0.02, 0.2, 1.0] {
        let points = opts
            .thetas
            .iter()
            .map(|&theta| {
                let cfg = opts
                    .base(system)
                    .theta(theta)
                    .placement(PlacementStrategy::even_paper())
                    .migration(MigrationPolicy::disabled())
                    .staging_fraction(fraction)
                    .build();
                opts.run_point(&cfg)
            })
            .collect();
        series.push_curve(format!("{:.0}% buffer", fraction * 100.0), points);
    }
    series
}

/// **E4 / Fig. 7** — all eight policies of Fig. 6 across θ.
pub fn fig7(system: &SystemSpec, opts: &ExpOptions) -> Series {
    let mut series = Series::new(
        format!("Fig. 7 — policies P1-P8 ({})", system.name),
        "zipf theta",
        "utilization",
        opts.thetas.clone(),
    );
    for p in Policy::ALL {
        let points = opts
            .thetas
            .iter()
            .map(|&theta| {
                let cfg = opts.base(system).theta(theta).policy(p).build();
                opts.run_point(&cfg)
            })
            .collect();
        series.push_curve(format!("Policy {}", p.name()), points);
    }
    series
}

/// **E5 / SVBR** — single-server utilization versus the server-to-view
/// bandwidth ratio, empirical (continuous transmission) against the
/// Erlang-B analytic expression.
pub fn svbr(opts: &ExpOptions) -> Series {
    let ks: Vec<f64> = vec![2.0, 5.0, 10.0, 20.0, 33.0, 50.0, 100.0];
    let mut series = Series::new(
        "SVBR — single-server utilization at 100% offered load",
        "SVBR (streams per server)",
        "utilization",
        ks.clone(),
    );
    let view = 3.0;
    let mut simulated = Vec::new();
    let mut analytic = Vec::new();
    for &k in &ks {
        let system = SystemSpec {
            name: format!("svbr-{k}"),
            n_servers: 1,
            server_bandwidth_mbps: k * view,
            server_disk_gb: 10_000.0,
            n_videos: 50,
            video_length_secs: (600.0, 1800.0),
            view_rate_mbps: view,
            client_receive_cap_mbps: 30.0,
            avg_copies: 1.0,
        };
        let cfg = opts
            .base(&system)
            .theta(1.0)
            .placement(PlacementStrategy::Even { avg_copies: 1.0 })
            .migration(MigrationPolicy::disabled())
            .staging(StagingSpec::AbsoluteMb(0.0))
            .scheduler(SchedulerKind::NoWorkahead)
            .build();
        simulated.push(opts.run_point(&cfg));
        let u = expected_utilization_vs_svbr(k * view, view);
        analytic.push(Summary::of(&[u]));
    }
    series.push_curve("simulated", simulated);
    series.push_curve("Erlang-B analytic", analytic);
    series
}

/// **E6 / heterogeneity** — utilization as a function of resource spread,
/// for 5-, 10-, and 20-server clusters sharing the Large system's totals.
/// Staging + single-hop migration are on (the semi-continuous regime).
pub fn heterogeneity(kind: HeterogeneityKind, opts: &ExpOptions) -> Series {
    let spreads = vec![0.0, 0.2, 0.4, 0.6, 0.8];
    let mut series = Series::new(
        format!("Heterogeneity ({kind:?}) — fixed totals, semi-continuous"),
        "resource spread",
        "utilization",
        spreads.clone(),
    );
    for n in [5usize, 10, 20] {
        let system = SystemSpec::large_paper().with_servers(n);
        let points = spreads
            .iter()
            .map(|&spread| {
                let mut b = opts
                    .base(&system)
                    .theta(0.271)
                    .placement(PlacementStrategy::even_paper())
                    .migration(MigrationPolicy {
                        handoff_latency_secs: 0.0,
                        ..MigrationPolicy::single_hop()
                    })
                    .staging_fraction(0.2);
                if spread > 0.0 {
                    b = b.heterogeneity(kind, spread);
                }
                opts.run_point(&b.build())
            })
            .collect();
        series.push_curve(format!("{n} servers"), points);
    }
    series
}

/// **E7 / partial-predictive** — even vs partial-predictive vs perfectly
/// predictive placement, all with staging + migration (the paper's claim:
/// a few extra copies of the head videos recover the predictive curve).
pub fn partial_predictive(system: &SystemSpec, opts: &ExpOptions) -> Series {
    let mut series = Series::new(
        format!("Partial-predictive placement ({})", system.name),
        "zipf theta",
        "utilization",
        opts.thetas.clone(),
    );
    let strategies: [(&str, PlacementStrategy); 3] = [
        ("even", PlacementStrategy::even_paper()),
        (
            "partial predictive",
            PlacementStrategy::partial_predictive_paper(),
        ),
        ("predictive", PlacementStrategy::predictive_paper()),
    ];
    for (label, placement) in strategies {
        let points = opts
            .thetas
            .iter()
            .map(|&theta| {
                let cfg = opts
                    .base(system)
                    .theta(theta)
                    .placement(placement)
                    .migration(MigrationPolicy {
                        handoff_latency_secs: 0.0,
                        ..MigrationPolicy::single_hop()
                    })
                    .staging_fraction(0.2)
                    .build();
                opts.run_point(&cfg)
            })
            .collect();
        series.push_curve(label, points);
    }
    series
}

/// **E8 / staging sweep** — utilization versus staging-buffer fraction
/// (the abstract's "20 % is near optimal" claim). No migration, so the
/// effect is staging alone.
pub fn staging_sweep(system: &SystemSpec, opts: &ExpOptions) -> Series {
    let fractions = vec![0.0, 0.01, 0.02, 0.05, 0.1, 0.15, 0.2, 0.3, 0.5, 0.75, 1.0];
    let mut series = Series::new(
        format!("Staging sweep ({})", system.name),
        "staging fraction of avg video",
        "utilization",
        fractions.clone(),
    );
    for theta in [0.0, 0.5, 1.0] {
        let points = fractions
            .iter()
            .map(|&f| {
                let cfg = opts
                    .base(system)
                    .theta(theta)
                    .placement(PlacementStrategy::even_paper())
                    .migration(MigrationPolicy::disabled())
                    .staging_fraction(f)
                    .build();
                opts.run_point(&cfg)
            })
            .collect();
        series.push_curve(format!("theta = {theta}"), points);
    }
    series
}

/// **E9 / fault tolerance** (extension; §3.1 motivates DRM for node
/// failures) — utilization and stream survival versus per-server MTBF,
/// with DRM-based emergency evacuation against the drop-everything
/// baseline. Repair time is fixed at 30 minutes; utilization is measured
/// against the *nominal* (no-downtime) capacity, so the availability
/// ceiling shows up in the curves.
pub fn fault_tolerance(system: &SystemSpec, opts: &ExpOptions) -> Series {
    let mtbfs = vec![2.0, 5.0, 10.0, 20.0, 40.0];
    let mut series = Series::new(
        format!("Fault tolerance — DRM evacuation ({})", system.name),
        "per-server MTBF (hours)",
        "ratio",
        mtbfs.clone(),
    );
    let variants: [(&str, MigrationPolicy); 2] = [
        (
            "DRM evacuation",
            MigrationPolicy {
                handoff_latency_secs: 0.0,
                ..MigrationPolicy::single_hop()
            },
        ),
        ("no migration (drop)", MigrationPolicy::disabled()),
    ];
    for (label, migration) in variants {
        let mut util_points = Vec::new();
        let mut survival_points = Vec::new();
        for &mtbf in &mtbfs {
            let cfg = opts
                .base(system)
                .theta(0.271)
                .placement(PlacementStrategy::even_paper())
                .migration(migration)
                .staging_fraction(0.2)
                .failures(mtbf, 0.5)
                .build();
            let outcomes = run_trials(&cfg, TrialPlan::new(opts.trials, opts.base_seed));
            util_points.push(utilization_summary(&outcomes));
            let survival: Vec<f64> = outcomes
                .iter()
                .map(|o| {
                    let victims = o.stats.relocated_on_failure + o.stats.dropped_on_failure;
                    if victims == 0 {
                        1.0
                    } else {
                        o.stats.relocated_on_failure as f64 / victims as f64
                    }
                })
                .collect();
            survival_points.push(Summary::of(&survival));
        }
        series.push_curve(format!("utilization ({label})"), util_points);
        series.push_curve(format!("survival ({label})"), survival_points);
    }
    series
}

/// **E10 / interactivity** (extension; §6 lists "interactivity in
/// semi-continuous transmission" as future work) — utilization versus the
/// probability that a viewer pauses (for 1–10 minutes) once during
/// playback. Paused streams hold their slots; staging lets transmission
/// finish *during* the pause and release the slot early, so the staged
/// curves should degrade far more slowly.
pub fn interactivity(system: &SystemSpec, opts: &ExpOptions) -> Series {
    let probs = vec![0.0, 0.2, 0.4, 0.6, 0.8, 1.0];
    let mut series = Series::new(
        format!("Interactivity — pause tolerance ({})", system.name),
        "pause probability",
        "utilization",
        probs.clone(),
    );
    for fraction in [0.0, 0.2, 1.0] {
        let points = probs
            .iter()
            .map(|&p| {
                let mut b = opts
                    .base(system)
                    .theta(0.271)
                    .placement(PlacementStrategy::even_paper())
                    .migration(MigrationPolicy::disabled())
                    .staging_fraction(fraction);
                if p > 0.0 {
                    b = b.interactivity(p, 60.0, 600.0);
                }
                opts.run_point(&b.build())
            })
            .collect();
        series.push_curve(format!("{:.0}% buffer", fraction * 100.0), points);
    }
    series
}

/// **E11 / replication vs DRM** (extension; §3.1 contrasts DRM with the
/// "more resource intensive" dynamic replication) — utilization across θ
/// for the four combinations of single-hop DRM and tertiary-sourced
/// dynamic replication, all with even placement and 20 % staging. The
/// interesting region is negative θ, where the even placement lacks
/// copies of the head videos and only replication can create them.
pub fn replication_vs_drm(system: &SystemSpec, opts: &ExpOptions) -> Series {
    use sct_admission::ReplicationSpec;
    let mut series = Series::new(
        format!("Dynamic replication vs DRM ({})", system.name),
        "zipf theta",
        "utilization",
        opts.thetas.clone(),
    );
    let drm = MigrationPolicy {
        handoff_latency_secs: 0.0,
        ..MigrationPolicy::single_hop()
    };
    let variants: [(&str, MigrationPolicy, Option<ReplicationSpec>); 4] = [
        ("neither", MigrationPolicy::disabled(), None),
        ("DRM only", drm, None),
        (
            "replication only",
            MigrationPolicy::disabled(),
            Some(ReplicationSpec::default_paper_scale()),
        ),
        (
            "DRM + replication",
            drm,
            Some(ReplicationSpec::default_paper_scale()),
        ),
    ];
    for (label, migration, replication) in variants {
        let points = opts
            .thetas
            .iter()
            .map(|&theta| {
                let mut b = opts
                    .base(system)
                    .theta(theta)
                    .placement(PlacementStrategy::even_paper())
                    .migration(migration)
                    .staging_fraction(0.2);
                if let Some(spec) = replication {
                    b = b.replication(spec);
                }
                opts.run_point(&b.build())
            })
            .collect();
        series.push_curve(label, points);
    }
    series
}

/// **E12 / time-domain smoothing** (analysis of the §3 mechanism) —
/// quantiles of the windowed (15 min) cluster utilization versus staging
/// fraction. Workahead lifts the whole distribution: dips are filled by
/// sprinting ahead, and early completions leave slots for the bursts.
pub fn smoothing(system: &SystemSpec, opts: &ExpOptions) -> Series {
    let fractions = vec![0.0, 0.02, 0.1, 0.2, 0.5, 1.0];
    let mut series = Series::new(
        format!(
            "Windowed-utilization quantiles vs staging ({})",
            system.name
        ),
        "staging fraction of avg video",
        "window utilization",
        fractions.clone(),
    );
    // Collect (min, p10, mean, max) per staging level, each summarised
    // over trials.
    let mut mins = Vec::new();
    let mut p10s = Vec::new();
    let mut means = Vec::new();
    let mut maxs = Vec::new();
    for &f in &fractions {
        let cfg = opts
            .base(system)
            .theta(1.0)
            .placement(PlacementStrategy::even_paper())
            .migration(MigrationPolicy::disabled())
            .staging_fraction(f)
            .sample_interval_secs(900.0)
            .build();
        let outcomes = run_trials(&cfg, TrialPlan::new(opts.trials, opts.base_seed));
        let mut per_trial = (Vec::new(), Vec::new(), Vec::new(), Vec::new());
        for o in &outcomes {
            let mut w = o.window_utilization.clone();
            assert!(!w.is_empty(), "sampling must be enabled");
            w.sort_by(f64::total_cmp);
            per_trial.0.push(w[0]);
            per_trial.1.push(w[w.len() / 10]);
            per_trial.2.push(w.iter().sum::<f64>() / w.len() as f64);
            per_trial.3.push(w[w.len() - 1]);
        }
        mins.push(Summary::of(&per_trial.0));
        p10s.push(Summary::of(&per_trial.1));
        means.push(Summary::of(&per_trial.2));
        maxs.push(Summary::of(&per_trial.3));
    }
    series.push_curve("min window", mins);
    series.push_curve("p10 window", p10s);
    series.push_curve("mean", means);
    series.push_curve("max window", maxs);
    series
}

/// **E13 / rejection profile** (analysis) — *which* videos get rejected,
/// by popularity-rank bucket, for even vs predictive placement across
/// demand skews. The even placement starves the head under skew; the
/// predictive one spreads rejections thinly across the tail.
pub fn rejection_profile(system: &SystemSpec, opts: &ExpOptions) -> Table {
    let mut table = Table::new(vec![
        "theta",
        "placement",
        "head (top 10%) rej%",
        "middle (10-50%) rej%",
        "tail (50-100%) rej%",
        "overall rej%",
    ]);
    for &theta in &[-1.0, 0.0, 1.0] {
        for (name, placement) in [
            ("even", PlacementStrategy::even_paper()),
            ("predictive", PlacementStrategy::predictive_paper()),
        ] {
            let cfg = opts
                .base(system)
                .theta(theta)
                .placement(placement)
                .migration(MigrationPolicy::disabled())
                .staging_fraction(0.2)
                .track_per_video(true)
                .build();
            let outcomes = run_trials(&cfg, TrialPlan::new(opts.trials, opts.base_seed));
            let n = system.n_videos;
            let mut arr = vec![0u64; n];
            let mut rej = vec![0u64; n];
            for o in &outcomes {
                for i in 0..n {
                    arr[i] += o.per_video_arrivals[i] as u64;
                    rej[i] += o.per_video_rejections[i] as u64;
                }
            }
            let bucket = |range: std::ops::Range<usize>| -> f64 {
                let a: u64 = range.clone().map(|i| arr[i]).sum();
                let r: u64 = range.map(|i| rej[i]).sum();
                if a == 0 {
                    0.0
                } else {
                    100.0 * r as f64 / a as f64
                }
            };
            let overall = {
                let a: u64 = arr.iter().sum();
                let r: u64 = rej.iter().sum();
                100.0 * r as f64 / a.max(1) as f64
            };
            table.push_row(vec![
                format!("{theta:+.1}"),
                name.to_string(),
                format!("{:.2}", bucket(0..n / 10)),
                format!("{:.2}", bucket(n / 10..n / 2)),
                format!("{:.2}", bucket(n / 2..n)),
                format!("{overall:.2}"),
            ]);
        }
    }
    table
}

/// **E14 / waitlist** (extension) — acceptance ratio and utilization as a
/// function of viewer patience. The paper's controller drops requests the
/// instant no slot is available; this measures how much of that loss a
/// short wait recovers (and what it costs in start-up delay).
pub fn waitlist(system: &SystemSpec, opts: &ExpOptions) -> Series {
    let waits_mins = vec![0.0, 0.5, 1.0, 2.0, 5.0, 10.0, 20.0];
    let mut series = Series::new(
        format!("Admission waitlist — viewer patience ({})", system.name),
        "max wait (minutes)",
        "ratio",
        waits_mins.clone(),
    );
    let mut acceptance = Vec::new();
    let mut utilization = Vec::new();
    let mut mean_wait_frac = Vec::new();
    for &mins in &waits_mins {
        let mut b = opts
            .base(system)
            .theta(0.0)
            .placement(PlacementStrategy::even_paper())
            .migration(MigrationPolicy::disabled())
            .staging_fraction(0.2);
        if mins > 0.0 {
            b = b.waitlist(mins * 60.0, 10_000);
        }
        let outcomes = run_trials(&b.build(), TrialPlan::new(opts.trials, opts.base_seed));
        acceptance.push(Summary::of(
            &outcomes
                .iter()
                .map(|o| o.acceptance_ratio())
                .collect::<Vec<_>>(),
        ));
        utilization.push(utilization_summary(&outcomes));
        mean_wait_frac.push(Summary::of(
            &outcomes
                .iter()
                .map(|o| {
                    if mins == 0.0 {
                        0.0
                    } else {
                        o.waitlist.mean_served_wait_secs() / (mins * 60.0)
                    }
                })
                .collect::<Vec<_>>(),
        ));
    }
    series.push_curve("acceptance ratio", acceptance);
    series.push_curve("utilization", utilization);
    series.push_curve("mean served wait / patience", mean_wait_frac);
    series
}

/// **E15 / diurnal load** (extension) — utilization and acceptance under
/// a sinusoidal day/night demand cycle (24 h period, mean load 100 %),
/// versus swing amplitude. Curves contrast the naive baseline with the
/// full semi-continuous stack: workahead banks the quiet hours against
/// the peaks, which is the paper\'s smoothing argument played out at
/// macro scale.
pub fn diurnal(system: &SystemSpec, opts: &ExpOptions) -> Series {
    let amplitudes = vec![0.0, 0.25, 0.5, 0.75, 1.0];
    let mut series = Series::new(
        format!("Diurnal load — day/night swings ({})", system.name),
        "swing amplitude",
        "utilization",
        amplitudes.clone(),
    );
    let drm = MigrationPolicy {
        handoff_latency_secs: 0.0,
        ..MigrationPolicy::single_hop()
    };
    let variants: [(&str, f64, MigrationPolicy); 2] = [
        ("no staging, no DRM", 0.0, MigrationPolicy::disabled()),
        ("20% staging + DRM", 0.2, drm),
    ];
    for (label, staging, migration) in variants {
        let points = amplitudes
            .iter()
            .map(|&a| {
                let mut b = opts
                    .base(system)
                    .theta(0.271)
                    .placement(PlacementStrategy::even_paper())
                    .migration(migration)
                    .staging_fraction(staging);
                if a > 0.0 {
                    b = b.diurnal(a, 24.0);
                }
                opts.run_point(&b.build())
            })
            .collect();
        series.push_curve(label, points);
    }
    series
}

/// **A3 / migration-depth ablation** (extension) — does a two-step
/// migration chain buy anything over the paper\'s chain length 1? Same
/// setup as Fig. 4 (even placement, minimal staging), curves: no
/// migration, chain 1, chain 2.
pub fn migration_depth(system: &SystemSpec, opts: &ExpOptions) -> Series {
    let mut series = Series::new(
        format!("Migration chain-depth ablation ({})", system.name),
        "zipf theta",
        "utilization",
        opts.thetas.clone(),
    );
    let chain1 = MigrationPolicy {
        handoff_latency_secs: 0.0,
        ..MigrationPolicy::single_hop()
    };
    let chain2 = MigrationPolicy {
        handoff_latency_secs: 0.0,
        ..MigrationPolicy::chain2()
    };
    let variants: [(&str, MigrationPolicy); 3] = [
        ("no migration", MigrationPolicy::disabled()),
        ("chain length 1", chain1),
        ("chain length 2", chain2),
    ];
    for (label, migration) in variants {
        let points = opts
            .thetas
            .iter()
            .map(|&theta| {
                let cfg = opts
                    .base(system)
                    .theta(theta)
                    .placement(PlacementStrategy::even_paper())
                    .migration(migration)
                    .staging(StagingSpec::AbsoluteMb(0.0))
                    .build();
                opts.run_point(&cfg)
            })
            .collect();
        series.push_curve(label, points);
    }
    series
}

/// **A2 / scheduler ablation** — EFTF against the other minimum-flow
/// spare-bandwidth policies, staging on, no migration.
pub fn scheduler_ablation(system: &SystemSpec, opts: &ExpOptions) -> Series {
    let mut series = Series::new(
        format!("Scheduler ablation ({})", system.name),
        "zipf theta",
        "utilization",
        opts.thetas.clone(),
    );
    for kind in SchedulerKind::ALL {
        let points = opts
            .thetas
            .iter()
            .map(|&theta| {
                let cfg = opts
                    .base(system)
                    .theta(theta)
                    .placement(PlacementStrategy::even_paper())
                    .migration(MigrationPolicy::disabled())
                    .staging_fraction(0.2)
                    .scheduler(kind)
                    .build();
                opts.run_point(&cfg)
            })
            .collect();
        series.push_curve(kind.name(), points);
    }
    series
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_opts() -> ExpOptions {
        ExpOptions {
            trials: 2,
            duration_hours: 2.0,
            warmup_hours: 0.25,
            thetas: vec![-1.0, 0.5],
            base_seed: 1,
        }
    }

    #[test]
    fn fig3_table_lists_both_systems() {
        let t = fig3_table();
        assert_eq!(t.headers, vec!["Parameter", "Small", "Large"]);
        assert!(t.len() >= 6);
        let md = t.to_markdown();
        assert!(md.contains("300 Mb/s"));
        assert!(md.contains("10-30 Min"));
    }

    #[test]
    fn fig6_table_has_eight_rows() {
        let t = fig6_table();
        assert_eq!(t.len(), 8);
        assert!(t
            .to_markdown()
            .contains("| P4 | Even | Migr | 20% Buffer |"));
    }

    #[test]
    fn paper_thetas_span_range() {
        let t = ExpOptions::paper_thetas(0.25);
        assert_eq!(t.first(), Some(&-1.5));
        assert_eq!(t.last(), Some(&1.0));
        assert_eq!(t.len(), 11);
    }

    #[test]
    fn fig4_smoke() {
        let s = fig4(&SystemSpec::tiny_test(), &tiny_opts());
        assert_eq!(s.curves.len(), 3);
        assert_eq!(s.x.len(), 2);
        for c in &s.curves {
            for p in &c.points {
                assert!(p.mean > 0.0 && p.mean <= 1.0);
                assert_eq!(p.n, 2);
            }
        }
    }

    #[test]
    fn fig5_smoke() {
        let s = fig5(&SystemSpec::tiny_test(), &tiny_opts());
        assert_eq!(s.curves.len(), 4);
        assert!(s.curve("20% buffer").is_some());
    }

    #[test]
    fn svbr_analytic_curve_monotone() {
        let mut o = tiny_opts();
        o.trials = 1;
        o.duration_hours = 4.0;
        let s = svbr(&o);
        let analytic = s.curve("Erlang-B analytic").unwrap().means();
        for w in analytic.windows(2) {
            assert!(w[1] > w[0], "analytic utilization must grow with SVBR");
        }
        let sim = s.curve("simulated").unwrap().means();
        // Empirical within a few points of analytic at every k.
        for (i, (&a, &b)) in analytic.iter().zip(&sim).enumerate() {
            assert!((a - b).abs() < 0.08, "k index {i}: analytic {a} vs sim {b}");
        }
    }

    #[test]
    fn scheduler_ablation_lists_all_kinds() {
        let s = scheduler_ablation(&SystemSpec::tiny_test(), &tiny_opts());
        assert_eq!(s.curves.len(), 4);
        assert!(s.curve("eftf").is_some());
        assert!(s.curve("none").is_some());
    }
}
