//! Request-lifecycle span capture: the [`SpanProbe`].
//!
//! The paper's headline mechanisms are *causal chains* — a DRM victim
//! moved because an arrival was admitted, a chain-2 inner hop moved so
//! the outer victim could land, an evacuation happened because a server
//! failed, a waiter was served because a completion freed a slot. The
//! aggregate counters ([`crate::events::MetricsProbe`]) and histograms
//! ([`crate::metrics::TelemetryProbe`]) can say *how many* of each
//! happened, never *why this one*. The [`SpanProbe`] closes that gap: it
//! folds the [`SimEvent`] stream into one [`Span`] per request (and per
//! replication copy) — arrival → waitlist wait → admission → migration
//! hops → completion/drop — and records a [`CausalEdge`] for every link
//! the loop narrates.
//!
//! Like every probe it observes and never steers: golden snapshots in
//! `tests/golden_outcomes.rs` prove a run with the probe attached is
//! bit-identical to a bare run.
//!
//! ## Causal attribution rules
//!
//! The loop's handlers emit events in a fixed order within one
//! simulation instant, and the probe leans on that contract
//! (`crate::simulation` is the single emission site for each rule):
//!
//! * `Admitted { path: Migrated }` is followed by exactly one
//!   non-emergency `Migrated` — the displaced victim
//!   ([`EdgeKind::Displaced`], admission → victim).
//! * `Admitted { path: Chained }` is followed by exactly two: the outer
//!   victim (a `Displaced` edge from the admission) and then the inner
//!   victim ([`EdgeKind::ChainInner`], outer victim → inner victim).
//! * `ServerDown { relocated, .. }` is followed by exactly `relocated`
//!   emergency `Migrated`s ([`EdgeKind::Evacuated`], failed server →
//!   rescued stream). Viewer spans still on the failed server after the
//!   last evacuation lost service and close as
//!   [`SpanOutcome::Dropped`]. (A stream that finished at the exact
//!   failure instant but was not yet reaped would be misclassified
//!   as dropped; completions are reaped by a same-instant wake, so this
//!   needs an exact float tie between the finish time and the failure
//!   draw.)
//! * `WaitlistServed` only ever happens right after the capacity that
//!   serves it appeared: the freeing `Completed`, slot-holding
//!   `CopyDone`, or `ServerUp` at the same instant is the cause
//!   ([`EdgeKind::FreedSlot`]).
//! * `WaitlistExpired` carries only a count; `Waitlist::expire` pops the
//!   FIFO prefix whose patience ran out, so the probe attributes the
//!   expiry to the `count` longest-waiting spans still queued.
//!
//! ## Model caveats
//!
//! * Multicast-batched waiters ride the leader's stream and never
//!   complete on their own; their spans stay open to the horizon.
//! * Cluster-sourced copies aborted by a failure are never narrated
//!   again (the engine drops them without an event), so their spans
//!   also stay open; tertiary copies always get a terminal `CopyDone`.
//! * Copy spans carry no server (the event doesn't), so a failure
//!   cannot close them as dropped.

use crate::config::SimConfig;
use crate::events::{AdmitPath, Probe, SimEvent};
use crate::simulation::{SimOutcome, Simulation};
use sct_analysis::spans::{
    AdmitVia, CausalEdge, EdgeEnd, EdgeKind, Segment, SegmentKind, ServerMark, Span, SpanKind,
    SpanOutcome, SpanSet,
};
use sct_simcore::SimTime;
use std::collections::{HashSet, VecDeque};

/// Outstanding attribution context between events of one instant: what
/// the last structural event promised would follow.
#[derive(Clone, Copy, Debug)]
enum Expect {
    /// No emission contract outstanding.
    Nothing,
    /// One DRM victim hand-off follows this admission.
    Victim {
        /// The admitted stream that displaced the victim.
        admitted: u64,
    },
    /// Two chained hand-offs follow this admission; the outer victim is
    /// next.
    ChainOuter {
        /// The admitted stream at the head of the chain.
        admitted: u64,
    },
    /// The chain's inner hop is next.
    ChainInner {
        /// The outer victim whose landing forced the inner hop.
        outer: u64,
    },
    /// `remaining` evacuations follow this failure; once they are all
    /// seen, whatever is left on `server` was dropped.
    Evacuations {
        /// The failed server.
        server: u16,
        /// Emergency migrations still to come.
        remaining: u32,
        /// Failure time (the drop time for unrescued streams).
        at: f64,
    },
}

/// Fold-time form of a [`Span`]: the scalar fields plus an intrusive
/// segment chain into the probe's arena. Materialised into the wire
/// [`Span`] (with its owned `segments` vector) only by
/// [`SpanProbe::finish`] — per-span vectors would cost one heap
/// allocation per request on the per-event hot path, which the bench's
/// probe-overhead gate budgets at 5 % of a bare trial.
struct FoldSpan {
    stream: u64,
    video: u32,
    kind: SpanKind,
    start_secs: f64,
    end_secs: Option<f64>,
    outcome: SpanOutcome,
    admit_via: Option<AdmitVia>,
    hops: u32,
    /// First segment in the arena chain (`NO_SEG` = none yet).
    seg_head: u32,
    /// Last segment in the arena chain (`NO_SEG` = none yet).
    seg_tail: u32,
}

/// One arena slot: a segment plus the index of its span's next segment.
struct SegNode {
    seg: Segment,
    next: u32,
}

/// Sentinel for "no segment" in [`FoldSpan`] chains.
const NO_SEG: u32 = u32::MAX;

/// A pure [`Probe`] that folds the event stream into per-request
/// lifecycle [`Span`]s with [`CausalEdge`]s. Reduce with
/// [`SpanProbe::finish`] after the run.
pub struct SpanProbe {
    spans: Vec<FoldSpan>,
    /// Shared segment storage; spans chain through [`SegNode::next`].
    segs: Vec<SegNode>,
    /// Span index per stream id (`NO_SPAN` = none). The loop hands out
    /// ids from one dense counter, so a flat vector beats hashing on
    /// the per-event hot path (the bench gates the probe's overhead).
    by_stream: Vec<usize>,
    /// Queued waiters in waitlist order (expiry attribution).
    waiting: VecDeque<u64>,
    /// Copies sourced from tertiary storage (they hold no server slot,
    /// so their completion cannot free one).
    tertiary: HashSet<u64>,
    edges: Vec<CausalEdge>,
    marks: Vec<ServerMark>,
    expect: Expect,
    /// The last slot-freeing occurrence, for `FreedSlot` edges.
    last_freed: Option<(f64, EdgeEnd)>,
}

/// Sentinel in [`SpanProbe::by_stream`] for "no span yet".
const NO_SPAN: usize = usize::MAX;

impl Default for SpanProbe {
    fn default() -> Self {
        Self::new()
    }
}

impl SpanProbe {
    /// An empty probe, ready to attach to `Simulation::run_with_probes`.
    pub fn new() -> Self {
        // Seed capacities large enough for a typical trial so the first
        // thousand requests never pay a growth-reallocation memcpy.
        SpanProbe {
            spans: Vec::with_capacity(1024),
            segs: Vec::with_capacity(2048),
            by_stream: Vec::with_capacity(2048),
            waiting: VecDeque::new(),
            tertiary: HashSet::new(),
            edges: Vec::with_capacity(256),
            marks: Vec::new(),
            expect: Expect::Nothing,
            last_freed: None,
        }
    }

    /// Reduces the fold to its wire form. `horizon_secs` (the trial
    /// duration) closes open spans in exports.
    pub fn finish(mut self, horizon_secs: f64) -> SpanSet {
        self.spans.sort_by_key(|s| s.stream);
        let spans = self
            .spans
            .iter()
            .map(|f| {
                let mut segments = Vec::new();
                let mut at = f.seg_head;
                while at != NO_SEG {
                    let node = &self.segs[at as usize];
                    segments.push(node.seg);
                    at = node.next;
                }
                Span {
                    stream: f.stream,
                    video: f.video,
                    kind: f.kind,
                    start_secs: f.start_secs,
                    end_secs: f.end_secs,
                    outcome: f.outcome,
                    admit_via: f.admit_via,
                    hops: f.hops,
                    segments,
                }
            })
            .collect();
        SpanSet {
            horizon_secs,
            spans,
            edges: self.edges,
            marks: self.marks,
        }
    }

    /// The open-or-closed span of `stream`, if one was ever started.
    #[inline]
    fn span_of(&self, stream: u64) -> Option<usize> {
        self.by_stream
            .get(stream as usize)
            .copied()
            .filter(|&idx| idx != NO_SPAN)
    }

    fn open_span(&mut self, stream: u64, video: u32, kind: SpanKind, t: f64) -> usize {
        let idx = self.spans.len();
        self.spans.push(FoldSpan {
            stream,
            video,
            kind,
            start_secs: t,
            end_secs: None,
            outcome: SpanOutcome::Open,
            admit_via: None,
            hops: 0,
            seg_head: NO_SEG,
            seg_tail: NO_SEG,
        });
        let slot = stream as usize;
        if slot >= self.by_stream.len() {
            self.by_stream.resize(slot + 1, NO_SPAN);
        }
        self.by_stream[slot] = idx;
        idx
    }

    /// The span's most recent segment, if any.
    fn last_segment(&self, idx: usize) -> Option<&Segment> {
        let tail = self.spans[idx].seg_tail;
        (tail != NO_SEG).then(|| &self.segs[tail as usize].seg)
    }

    fn end_segment(&mut self, idx: usize, t: f64) {
        let tail = self.spans[idx].seg_tail;
        if tail != NO_SEG {
            let seg = &mut self.segs[tail as usize].seg;
            if seg.end_secs.is_none() {
                seg.end_secs = Some(t);
            }
        }
    }

    fn start_segment(&mut self, idx: usize, kind: SegmentKind, server: Option<u16>, t: f64) {
        let at = self.segs.len() as u32;
        self.segs.push(SegNode {
            seg: Segment {
                kind,
                server,
                start_secs: t,
                end_secs: None,
            },
            next: NO_SEG,
        });
        let span = &mut self.spans[idx];
        if span.seg_tail == NO_SEG {
            span.seg_head = at;
        } else {
            self.segs[span.seg_tail as usize].next = at;
        }
        self.spans[idx].seg_tail = at;
    }

    fn close_span(&mut self, idx: usize, t: f64, outcome: SpanOutcome) {
        self.end_segment(idx, t);
        self.spans[idx].end_secs = Some(t);
        self.spans[idx].outcome = outcome;
    }

    /// Closes every viewer span still on `server` as dropped (the loop
    /// never narrates them again after a failure).
    fn drop_streams_on(&mut self, server: u16, t: f64) {
        for idx in 0..self.spans.len() {
            let span = &self.spans[idx];
            let on_server = span.end_secs.is_none()
                && span.kind == SpanKind::Viewer
                && self
                    .last_segment(idx)
                    .is_some_and(|seg| seg.end_secs.is_none() && seg.server == Some(server));
            if on_server {
                self.close_span(idx, t, SpanOutcome::Dropped);
            }
        }
    }

    /// Enforces the emission contracts: an outstanding expectation not
    /// met by `event` is abandoned (and, for evacuations, the leftover
    /// streams on the failed server are dropped).
    fn reconcile(&mut self, event: &SimEvent) {
        match self.expect {
            Expect::Nothing => {}
            Expect::Victim { .. } | Expect::ChainOuter { .. } | Expect::ChainInner { .. } => {
                if !matches!(
                    event,
                    SimEvent::Migrated {
                        emergency: false,
                        ..
                    }
                ) {
                    self.expect = Expect::Nothing;
                }
            }
            Expect::Evacuations { server, at, .. } => {
                let matches = matches!(
                    event,
                    SimEvent::Migrated {
                        emergency: true,
                        from,
                        ..
                    } if *from == server
                );
                if !matches {
                    self.drop_streams_on(server, at);
                    self.expect = Expect::Nothing;
                }
            }
        }
    }
}

impl Probe for SpanProbe {
    fn on_event(&mut self, now: SimTime, event: &SimEvent) {
        let t = now.as_secs();
        self.reconcile(event);
        // Exhaustive on purpose: a new `SimEvent` variant must decide its
        // span semantics here (see `tests/probe_coverage.rs`).
        match *event {
            SimEvent::Admitted {
                stream,
                video,
                server,
                path,
            } => {
                let idx = self.open_span(stream, video, SpanKind::Viewer, t);
                self.spans[idx].admit_via = Some(match path {
                    AdmitPath::Direct => AdmitVia::Direct,
                    AdmitPath::Migrated => AdmitVia::Migrated,
                    AdmitPath::Chained => AdmitVia::Chained,
                });
                self.start_segment(idx, SegmentKind::Serve, Some(server), t);
                self.expect = match path {
                    AdmitPath::Direct => Expect::Nothing,
                    AdmitPath::Migrated => Expect::Victim { admitted: stream },
                    AdmitPath::Chained => Expect::ChainOuter { admitted: stream },
                };
            }
            SimEvent::Rejected { stream, video } => {
                let idx = self.open_span(stream, video, SpanKind::Viewer, t);
                self.close_span(idx, t, SpanOutcome::Rejected);
            }
            SimEvent::Completed { stream, .. } => {
                if let Some(idx) = self.span_of(stream) {
                    self.close_span(idx, t, SpanOutcome::Completed);
                }
                self.last_freed = Some((t, EdgeEnd::Stream { stream }));
            }
            SimEvent::Migrated {
                stream,
                from,
                to,
                emergency,
            } => {
                let mut evac_done = None;
                match self.expect {
                    Expect::Victim { admitted } => {
                        self.edges.push(CausalEdge {
                            kind: EdgeKind::Displaced,
                            at_secs: t,
                            cause: EdgeEnd::Stream { stream: admitted },
                            effect: EdgeEnd::Stream { stream },
                        });
                        self.expect = Expect::Nothing;
                    }
                    Expect::ChainOuter { admitted } => {
                        self.edges.push(CausalEdge {
                            kind: EdgeKind::Displaced,
                            at_secs: t,
                            cause: EdgeEnd::Stream { stream: admitted },
                            effect: EdgeEnd::Stream { stream },
                        });
                        self.expect = Expect::ChainInner { outer: stream };
                    }
                    Expect::ChainInner { outer } => {
                        self.edges.push(CausalEdge {
                            kind: EdgeKind::ChainInner,
                            at_secs: t,
                            cause: EdgeEnd::Stream { stream: outer },
                            effect: EdgeEnd::Stream { stream },
                        });
                        self.expect = Expect::Nothing;
                    }
                    Expect::Evacuations {
                        server,
                        remaining,
                        at,
                    } if emergency && from == server => {
                        self.edges.push(CausalEdge {
                            kind: EdgeKind::Evacuated,
                            at_secs: t,
                            cause: EdgeEnd::Server { server },
                            effect: EdgeEnd::Stream { stream },
                        });
                        if remaining <= 1 {
                            evac_done = Some((server, at));
                            self.expect = Expect::Nothing;
                        } else {
                            self.expect = Expect::Evacuations {
                                server,
                                remaining: remaining - 1,
                                at,
                            };
                        }
                    }
                    _ => {}
                }
                if let Some(idx) = self.span_of(stream) {
                    let kind = self
                        .last_segment(idx)
                        .filter(|seg| seg.end_secs.is_none())
                        .map_or(SegmentKind::Serve, |seg| seg.kind);
                    self.end_segment(idx, t);
                    self.start_segment(idx, kind, Some(to), t);
                    self.spans[idx].hops += 1;
                }
                if let Some((server, at)) = evac_done {
                    self.drop_streams_on(server, at);
                }
            }
            SimEvent::ServerDown {
                server,
                relocated,
                dropped,
            } => {
                self.marks.push(ServerMark {
                    server,
                    at_secs: t,
                    down: true,
                    relocated,
                    dropped,
                });
                if relocated == 0 {
                    self.drop_streams_on(server, t);
                } else {
                    self.expect = Expect::Evacuations {
                        server,
                        remaining: relocated,
                        at: t,
                    };
                }
            }
            SimEvent::ServerUp { server } => {
                self.marks.push(ServerMark {
                    server,
                    at_secs: t,
                    down: false,
                    relocated: 0,
                    dropped: 0,
                });
                self.last_freed = Some((t, EdgeEnd::Server { server }));
            }
            SimEvent::Paused { stream, server } => {
                if let Some(idx) = self.span_of(stream) {
                    self.end_segment(idx, t);
                    self.start_segment(idx, SegmentKind::Pause, Some(server), t);
                }
            }
            SimEvent::Resumed { stream, server } => {
                if let Some(idx) = self.span_of(stream) {
                    self.end_segment(idx, t);
                    self.start_segment(idx, SegmentKind::Serve, Some(server), t);
                }
            }
            SimEvent::CopyStarted {
                copy,
                video,
                tertiary,
            } => {
                let idx = self.open_span(copy, video, SpanKind::Copy, t);
                self.start_segment(idx, SegmentKind::Serve, None, t);
                if tertiary {
                    self.tertiary.insert(copy);
                }
            }
            SimEvent::CopyDone { copy, installed } => {
                if let Some(idx) = self.span_of(copy) {
                    let outcome = if installed {
                        SpanOutcome::Completed
                    } else {
                        SpanOutcome::Dropped
                    };
                    self.close_span(idx, t, outcome);
                }
                if !self.tertiary.remove(&copy) {
                    // A reaped engine copy frees its server slot.
                    self.last_freed = Some((t, EdgeEnd::Stream { stream: copy }));
                }
            }
            SimEvent::WaitlistQueued { stream, video } => {
                let idx = match self.span_of(stream) {
                    Some(idx) => {
                        // Reopen the just-rejected span: the viewer is
                        // waiting, not gone.
                        self.spans[idx].end_secs = None;
                        self.spans[idx].outcome = SpanOutcome::Open;
                        idx
                    }
                    None => self.open_span(stream, video, SpanKind::Viewer, t),
                };
                self.start_segment(idx, SegmentKind::Wait, None, t);
                self.waiting.push_back(stream);
            }
            SimEvent::WaitlistServed { stream, server, .. } => {
                if let Some(pos) = self.waiting.iter().position(|&s| s == stream) {
                    self.waiting.remove(pos);
                }
                if let Some(idx) = self.span_of(stream) {
                    self.end_segment(idx, t);
                    self.spans[idx].admit_via = Some(AdmitVia::Waitlist);
                    self.start_segment(idx, SegmentKind::Serve, Some(server), t);
                }
                if let Some((freed_at, cause)) = self.last_freed {
                    if freed_at == t {
                        self.edges.push(CausalEdge {
                            kind: EdgeKind::FreedSlot,
                            at_secs: t,
                            cause,
                            effect: EdgeEnd::Stream { stream },
                        });
                    }
                }
            }
            SimEvent::WaitlistExpired { count } => {
                for _ in 0..count {
                    let Some(stream) = self.waiting.pop_front() else {
                        break;
                    };
                    if let Some(idx) = self.span_of(stream) {
                        self.close_span(idx, t, SpanOutcome::Expired);
                    }
                }
            }
            SimEvent::WindowSample { .. } => {}
            // Cross-shard channel records are loop plumbing, not request
            // lifecycle: the underlying Migrated/CopyStarted events carry
            // the causal edges, so ignoring these keeps span sets
            // identical across shard counts.
            SimEvent::CrossShard { .. } => {}
        }
    }

    fn uses_state(&self) -> bool {
        false
    }
}

/// Runs one trial with a [`SpanProbe`] attached and returns the outcome
/// together with the captured span set. The outcome is bit-identical to
/// [`Simulation::run`] on the same config.
pub fn capture(config: &SimConfig) -> (SimOutcome, SpanSet) {
    let mut probe = SpanProbe::new();
    let outcome = Simulation::run_with_probes(config, &mut [&mut probe]);
    (outcome, probe.finish(config.duration.as_secs()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed(events: &[(f64, SimEvent)]) -> SpanProbe {
        let mut probe = SpanProbe::new();
        for (t, ev) in events {
            probe.on_event(SimTime::from_secs(*t), ev);
        }
        probe
    }

    #[test]
    fn admission_and_completion_make_one_closed_span() {
        let set = feed(&[
            (
                1.0,
                SimEvent::Admitted {
                    stream: 0,
                    video: 3,
                    server: 2,
                    path: AdmitPath::Direct,
                },
            ),
            (
                61.0,
                SimEvent::Completed {
                    stream: 0,
                    server: 2,
                },
            ),
        ])
        .finish(100.0);
        assert_eq!(set.spans.len(), 1);
        let span = &set.spans[0];
        assert_eq!(span.outcome, SpanOutcome::Completed);
        assert_eq!(span.admit_via, Some(AdmitVia::Direct));
        assert_eq!(span.end_secs, Some(61.0));
        assert_eq!(span.segments.len(), 1);
        assert_eq!(span.segments[0].server, Some(2));
        assert!(set.edges.is_empty());
    }

    #[test]
    fn drm_victim_gets_displaced_edge_and_hop() {
        let probe = feed(&[
            (
                0.0,
                SimEvent::Admitted {
                    stream: 5,
                    video: 0,
                    server: 0,
                    path: AdmitPath::Direct,
                },
            ),
            (
                2.0,
                SimEvent::Admitted {
                    stream: 9,
                    video: 0,
                    server: 0,
                    path: AdmitPath::Migrated,
                },
            ),
            (
                2.0,
                SimEvent::Migrated {
                    stream: 5,
                    from: 0,
                    to: 1,
                    emergency: false,
                },
            ),
        ]);
        let set = probe.finish(10.0);
        assert_eq!(set.edges.len(), 1);
        assert_eq!(set.edges[0].kind, EdgeKind::Displaced);
        assert_eq!(set.edges[0].cause, EdgeEnd::Stream { stream: 9 });
        assert_eq!(set.edges[0].effect, EdgeEnd::Stream { stream: 5 });
        let victim = set.span(5).unwrap();
        assert_eq!(victim.hops, 1);
        assert_eq!(victim.segments.len(), 2);
        assert_eq!(victim.segments[1].server, Some(1));
    }

    #[test]
    fn chain2_links_inner_hop_to_outer_victim() {
        let probe = feed(&[
            (
                0.0,
                SimEvent::Admitted {
                    stream: 1,
                    video: 0,
                    server: 0,
                    path: AdmitPath::Direct,
                },
            ),
            (
                0.0,
                SimEvent::Admitted {
                    stream: 2,
                    video: 0,
                    server: 1,
                    path: AdmitPath::Direct,
                },
            ),
            (
                5.0,
                SimEvent::Admitted {
                    stream: 3,
                    video: 0,
                    server: 0,
                    path: AdmitPath::Chained,
                },
            ),
            (
                5.0,
                SimEvent::Migrated {
                    stream: 1,
                    from: 0,
                    to: 1,
                    emergency: false,
                },
            ),
            (
                5.0,
                SimEvent::Migrated {
                    stream: 2,
                    from: 1,
                    to: 2,
                    emergency: false,
                },
            ),
        ]);
        let set = probe.finish(10.0);
        assert_eq!(set.edges.len(), 2);
        assert_eq!(set.edges[0].kind, EdgeKind::Displaced);
        assert_eq!(set.edges[0].cause, EdgeEnd::Stream { stream: 3 });
        assert_eq!(set.edges[0].effect, EdgeEnd::Stream { stream: 1 });
        assert_eq!(set.edges[1].kind, EdgeKind::ChainInner);
        assert_eq!(set.edges[1].cause, EdgeEnd::Stream { stream: 1 });
        assert_eq!(set.edges[1].effect, EdgeEnd::Stream { stream: 2 });
        assert_eq!(set.span(3).unwrap().admit_via, Some(AdmitVia::Chained));
    }

    #[test]
    fn failure_evacuates_some_and_drops_the_rest() {
        let probe = feed(&[
            (
                0.0,
                SimEvent::Admitted {
                    stream: 1,
                    video: 0,
                    server: 0,
                    path: AdmitPath::Direct,
                },
            ),
            (
                0.0,
                SimEvent::Admitted {
                    stream: 2,
                    video: 0,
                    server: 0,
                    path: AdmitPath::Direct,
                },
            ),
            (
                0.0,
                SimEvent::Admitted {
                    stream: 3,
                    video: 0,
                    server: 1,
                    path: AdmitPath::Direct,
                },
            ),
            (
                7.0,
                SimEvent::ServerDown {
                    server: 0,
                    relocated: 1,
                    dropped: 1,
                },
            ),
            (
                7.0,
                SimEvent::Migrated {
                    stream: 1,
                    from: 0,
                    to: 1,
                    emergency: true,
                },
            ),
        ]);
        let set = probe.finish(10.0);
        assert_eq!(set.edges.len(), 1);
        assert_eq!(set.edges[0].kind, EdgeKind::Evacuated);
        assert_eq!(set.edges[0].cause, EdgeEnd::Server { server: 0 });
        assert_eq!(set.edges[0].effect, EdgeEnd::Stream { stream: 1 });
        // Stream 1 was rescued, stream 2 dropped, stream 3 untouched.
        assert_eq!(set.span(1).unwrap().outcome, SpanOutcome::Open);
        assert_eq!(set.span(1).unwrap().hops, 1);
        let dropped = set.span(2).unwrap();
        assert_eq!(dropped.outcome, SpanOutcome::Dropped);
        assert_eq!(dropped.end_secs, Some(7.0));
        assert_eq!(set.span(3).unwrap().outcome, SpanOutcome::Open);
        assert_eq!(set.marks.len(), 1);
        assert!(set.marks[0].down);
    }

    #[test]
    fn failure_with_no_rescues_drops_immediately() {
        let probe = feed(&[
            (
                0.0,
                SimEvent::Admitted {
                    stream: 1,
                    video: 0,
                    server: 0,
                    path: AdmitPath::Direct,
                },
            ),
            (
                3.0,
                SimEvent::ServerDown {
                    server: 0,
                    relocated: 0,
                    dropped: 1,
                },
            ),
        ]);
        let set = probe.finish(10.0);
        assert_eq!(set.span(1).unwrap().outcome, SpanOutcome::Dropped);
        assert!(set.edges.is_empty());
    }

    #[test]
    fn waitlist_wait_serve_links_to_the_freeing_completion() {
        let probe = feed(&[
            (
                0.0,
                SimEvent::Admitted {
                    stream: 0,
                    video: 1,
                    server: 0,
                    path: AdmitPath::Direct,
                },
            ),
            (
                1.0,
                SimEvent::Rejected {
                    stream: 1,
                    video: 1,
                },
            ),
            (
                1.0,
                SimEvent::WaitlistQueued {
                    stream: 1,
                    video: 1,
                },
            ),
            (
                20.0,
                SimEvent::Completed {
                    stream: 0,
                    server: 0,
                },
            ),
            (
                20.0,
                SimEvent::WaitlistServed {
                    stream: 1,
                    video: 1,
                    server: 0,
                    batched: false,
                    waited_secs: 19.0,
                },
            ),
        ]);
        let set = probe.finish(60.0);
        let served = set.span(1).unwrap();
        assert_eq!(served.admit_via, Some(AdmitVia::Waitlist));
        assert_eq!(served.outcome, SpanOutcome::Open);
        assert_eq!(served.segments.len(), 2);
        assert_eq!(served.segments[0].kind, SegmentKind::Wait);
        assert_eq!(served.segments[0].end_secs, Some(20.0));
        assert_eq!(served.segments[1].kind, SegmentKind::Serve);
        assert_eq!(set.edges.len(), 1);
        assert_eq!(set.edges[0].kind, EdgeKind::FreedSlot);
        assert_eq!(set.edges[0].cause, EdgeEnd::Stream { stream: 0 });
        assert_eq!(set.edges[0].effect, EdgeEnd::Stream { stream: 1 });
    }

    #[test]
    fn expiry_closes_the_longest_waiting_spans_first() {
        let probe = feed(&[
            (
                0.0,
                SimEvent::Rejected {
                    stream: 1,
                    video: 0,
                },
            ),
            (
                0.0,
                SimEvent::WaitlistQueued {
                    stream: 1,
                    video: 0,
                },
            ),
            (
                2.0,
                SimEvent::Rejected {
                    stream: 2,
                    video: 0,
                },
            ),
            (
                2.0,
                SimEvent::WaitlistQueued {
                    stream: 2,
                    video: 0,
                },
            ),
            (30.0, SimEvent::WaitlistExpired { count: 1 }),
        ]);
        let set = probe.finish(60.0);
        assert_eq!(set.span(1).unwrap().outcome, SpanOutcome::Expired);
        assert_eq!(set.span(1).unwrap().end_secs, Some(30.0));
        assert_eq!(set.span(2).unwrap().outcome, SpanOutcome::Open);
    }

    #[test]
    fn pause_resume_toggles_segments() {
        let probe = feed(&[
            (
                0.0,
                SimEvent::Admitted {
                    stream: 4,
                    video: 0,
                    server: 1,
                    path: AdmitPath::Direct,
                },
            ),
            (
                10.0,
                SimEvent::Paused {
                    stream: 4,
                    server: 1,
                },
            ),
            (
                25.0,
                SimEvent::Resumed {
                    stream: 4,
                    server: 1,
                },
            ),
        ]);
        let set = probe.finish(60.0);
        let span = set.span(4).unwrap();
        let kinds: Vec<SegmentKind> = span.segments.iter().map(|s| s.kind).collect();
        assert_eq!(
            kinds,
            vec![SegmentKind::Serve, SegmentKind::Pause, SegmentKind::Serve]
        );
        assert_eq!(span.segments[1].start_secs, 10.0);
        assert_eq!(span.segments[1].end_secs, Some(25.0));
    }

    #[test]
    fn copy_lifecycle_and_tertiary_slot_accounting() {
        let probe = feed(&[
            (
                0.0,
                SimEvent::CopyStarted {
                    copy: 10,
                    video: 2,
                    tertiary: true,
                },
            ),
            (
                5.0,
                SimEvent::CopyStarted {
                    copy: 11,
                    video: 3,
                    tertiary: false,
                },
            ),
            (
                50.0,
                SimEvent::CopyDone {
                    copy: 10,
                    installed: true,
                },
            ),
            (
                60.0,
                SimEvent::CopyDone {
                    copy: 11,
                    installed: false,
                },
            ),
        ]);
        // A tertiary copy's completion must not register as a freed slot.
        assert!(matches!(
            probe.last_freed,
            Some((60.0, EdgeEnd::Stream { stream: 11 }))
        ));
        let set = probe.finish(100.0);
        assert_eq!(set.span(10).unwrap().kind, SpanKind::Copy);
        assert_eq!(set.span(10).unwrap().outcome, SpanOutcome::Completed);
        assert_eq!(set.span(11).unwrap().outcome, SpanOutcome::Dropped);
    }

    #[test]
    fn capture_is_deterministic_and_reconciles_with_outcome() {
        let config = SimConfig::builder(sct_workload::SystemSpec::tiny_test())
            .duration_hours(3.0)
            .warmup_hours(0.25)
            .waitlist(120.0, 20)
            .seed(42)
            .build();
        let (out, set) = capture(&config);
        let (out2, set2) = capture(&config);
        assert_eq!(out, out2);
        assert_eq!(set, set2);
        let completed = set
            .spans
            .iter()
            .filter(|s| s.kind == SpanKind::Viewer && s.outcome == SpanOutcome::Completed)
            .count() as u64;
        assert_eq!(completed, out.completions);
        let viewers = set
            .spans
            .iter()
            .filter(|s| s.kind == SpanKind::Viewer)
            .count() as u64;
        assert_eq!(viewers, out.stats.arrivals);
        let expired = set
            .spans
            .iter()
            .filter(|s| s.outcome == SpanOutcome::Expired)
            .count() as u64;
        assert_eq!(expired, out.waitlist.expired);
        let freed = set.edges_of(EdgeKind::FreedSlot).count() as u64;
        assert_eq!(freed, out.waitlist.served);
    }
}
