//! The flight recorder: folds a trial into fixed-width virtual-time
//! windows, online.
//!
//! [`TimeSeriesProbe`] is a pure observer (attach it and outcomes stay
//! bit-identical — the golden snapshots prove it) that accumulates three
//! kinds of series while the simulation runs:
//!
//! * **Event counters** per window — arrivals, admissions by path,
//!   rejections, completions, migrations vs evacuations, failures,
//!   copies, waitlist traffic. Every event from virtual time zero
//!   counts, so window sums reproduce the run-level `MetricsSnapshot`
//!   counters exactly.
//! * **Gauge integrals** per window — cluster and per-server utilization
//!   (integrated only over the window's overlap with the measurement
//!   interval `[warmup, end]`, so the measured-seconds-weighted window
//!   mean reproduces `SimOutcome.utilization` to ~1e-9), plus
//!   waitlist depth and active streams as plain window means. State
//!   views are published at every event boundary and these quantities
//!   are piecewise-constant in between, so each window's integral is
//!   exact — the same argument that makes
//!   [`crate::metrics::TimeWeightedGauge`] exact, applied per window.
//!   Staged megabits are the exception: computing the aggregate walks
//!   every stream, so the recorder samples it once per window (at the
//!   window's first state view) instead of integrating it per event,
//!   keeping the per-event cost O(servers).
//! * **Barrier accounting** per shard per window, from the sharded
//!   loop's [`crate::events::RunSummary`] hook — runs, stalls at the
//!   horizon, election slack, events, plus `CrossShard` channel edges.
//!   Virtual-time-only, hence deterministic; absent on the monolithic
//!   loop by construction.
//!
//! As each window closes, an [`SloEvaluator`] judges it against the
//! declarative policy and any alerts are appended to the recording —
//! alerting is part of the deterministic fold, not a post-process.
//!
//! Windows partition `[0, duration)` into `ceil(duration / width)`
//! spans; an event exactly on a boundary belongs to the later window,
//! and events at `duration` land in the last window.

use crate::config::SimConfig;
use crate::events::{AdmitPath, Probe, RunSummary, SimEvent};
use crate::metrics::StateView;
use sct_analysis::slo::{SloAlert, SloEvaluator, SloPolicy};
use sct_analysis::timeseries::{ShardSeries, TimeSeriesRecording, WindowRow};
use sct_simcore::SimTime;

/// Per-window event counts (the counter half of a [`WindowRow`]).
#[derive(Clone, Default)]
struct Counts {
    arrivals: u64,
    admitted: u64,
    admitted_drm: u64,
    admitted_chained: u64,
    rejected: u64,
    completions: u64,
    migrations: u64,
    evacuations: u64,
    failures: u64,
    repairs: u64,
    dropped: u64,
    pauses: u64,
    resumes: u64,
    copies_started: u64,
    copies_done: u64,
    waitlist_queued: u64,
    waitlist_served: u64,
    waitlist_expired: u64,
}

/// The piecewise-constant state carried between event boundaries:
/// values as of [`TimeSeriesProbe::last_t`]. Starts at zero, which
/// integrates to nothing until the first state view arrives.
struct Cur {
    cluster_util: f64,
    server_util: Vec<f64>,
    waitlist: f64,
    active: f64,
}

/// Per-shard barrier accumulators (vectors indexed by window).
#[derive(Clone, Default)]
struct ShardAccum {
    runs: Vec<u64>,
    stalled_runs: Vec<u64>,
    bounded_runs: Vec<u64>,
    slack_secs: Vec<f64>,
    events: Vec<u64>,
    cross_edges_out: Vec<u64>,
}

/// The flight-recorder probe. Build with [`TimeSeriesProbe::new`] (or
/// [`TimeSeriesProbe::with_policy`] for a custom SLO policy), attach via
/// `Simulation::run_with_probes`, then call
/// [`TimeSeriesProbe::finish`] for the recording.
pub struct TimeSeriesProbe {
    width: f64,
    n_windows: usize,
    warmup_secs: f64,
    end_secs: f64,
    n_servers: usize,
    /// Virtual time integrated so far (clamped to `end_secs`).
    last_t: f64,
    /// The window `last_t` lies in; windows below it are closed.
    cur_win: usize,
    cur: Cur,
    counts: Vec<Counts>,
    util_int: Vec<f64>,
    server_util_int: Vec<Vec<f64>>,
    waitlist_int: Vec<f64>,
    active_int: Vec<f64>,
    /// Staged megabits sampled at each window's first state view (the
    /// last observed value is carried into view-less windows).
    staged_sample: Vec<f64>,
    /// `true` until the current window takes its staged sample.
    staged_pending: bool,
    last_staged: f64,
    shards: Vec<ShardAccum>,
    n_shards: usize,
    /// Rows closed so far, in order; the SLO evaluator has seen each.
    rows: Vec<WindowRow>,
    evaluator: SloEvaluator,
    alerts: Vec<SloAlert>,
}

impl TimeSeriesProbe {
    /// Creates the probe for one trial of `config` with `window_secs`
    /// windows and the default SLO policy.
    pub fn new(config: &SimConfig, window_secs: f64) -> Self {
        Self::with_policy(config, window_secs, SloPolicy::default_policy())
    }

    /// Creates the probe with an explicit SLO policy.
    pub fn with_policy(config: &SimConfig, window_secs: f64, policy: SloPolicy) -> Self {
        assert!(
            window_secs > 0.0 && window_secs.is_finite(),
            "window width must be positive and finite"
        );
        let end_secs = config.duration.as_secs();
        let n_windows = ((end_secs / window_secs).ceil() as usize).max(1);
        let n_servers = config.system.n_servers;
        TimeSeriesProbe {
            width: window_secs,
            n_windows,
            warmup_secs: config.warmup.as_secs(),
            end_secs,
            n_servers,
            last_t: 0.0,
            cur_win: 0,
            cur: Cur {
                cluster_util: 0.0,
                server_util: vec![0.0; n_servers],
                waitlist: 0.0,
                active: 0.0,
            },
            counts: vec![Counts::default(); n_windows],
            util_int: vec![0.0; n_windows],
            server_util_int: vec![vec![0.0; n_windows]; n_servers],
            waitlist_int: vec![0.0; n_windows],
            active_int: vec![0.0; n_windows],
            staged_sample: vec![0.0; n_windows],
            staged_pending: true,
            last_staged: 0.0,
            shards: Vec::new(),
            n_shards: 0,
            rows: Vec::new(),
            evaluator: SloEvaluator::new(policy),
            alerts: Vec::new(),
        }
    }

    /// Integrates the pending linear segment up to `now` (clamped to the
    /// horizon), closing every window the segment crosses.
    fn advance(&mut self, now: f64) {
        let t1 = now.min(self.end_secs);
        while self.last_t < t1 {
            let bound = (((self.cur_win + 1) as f64) * self.width).min(self.end_secs);
            let seg_end = bound.min(t1);
            let dt = seg_end - self.last_t;
            if dt > 0.0 {
                let cur = &self.cur;
                let w = self.cur_win;
                self.waitlist_int[w] += cur.waitlist * dt;
                self.active_int[w] += cur.active * dt;
                // Utilization integrates only inside [warmup, end].
                let a = self.last_t.max(self.warmup_secs);
                if seg_end > a {
                    let mdt = seg_end - a;
                    self.util_int[w] += cur.cluster_util * mdt;
                    for (i, &u) in cur.server_util.iter().enumerate() {
                        self.server_util_int[i][w] += u * mdt;
                    }
                }
            }
            self.last_t = seg_end;
            if seg_end >= bound {
                if self.cur_win + 1 < self.n_windows {
                    self.close_window(self.cur_win);
                    self.cur_win += 1;
                } else {
                    break;
                }
            }
        }
    }

    /// Builds the final row for window `w` from the accumulators.
    fn build_row(&self, w: usize) -> WindowRow {
        let start = w as f64 * self.width;
        let bound = (((w + 1) as f64) * self.width).min(self.end_secs);
        let span = bound - start;
        let measured = (bound - start.max(self.warmup_secs)).max(0.0);
        let mut row = WindowRow::empty(w as u32, start, span, measured, self.n_servers);
        let c = &self.counts[w];
        row.arrivals = c.arrivals;
        row.admitted = c.admitted;
        row.admitted_drm = c.admitted_drm;
        row.admitted_chained = c.admitted_chained;
        row.rejected = c.rejected;
        row.completions = c.completions;
        row.migrations = c.migrations;
        row.evacuations = c.evacuations;
        row.failures = c.failures;
        row.repairs = c.repairs;
        row.dropped = c.dropped;
        row.pauses = c.pauses;
        row.resumes = c.resumes;
        row.copies_started = c.copies_started;
        row.copies_done = c.copies_done;
        row.waitlist_queued = c.waitlist_queued;
        row.waitlist_served = c.waitlist_served;
        row.waitlist_expired = c.waitlist_expired;
        row.waitlist_depth = self.waitlist_int[w] / span;
        row.active_streams = self.active_int[w] / span;
        row.staged_mb = self.staged_sample[w];
        row.utilization = if measured > 0.0 {
            self.util_int[w] / measured
        } else {
            0.0
        };
        for (i, s) in row.server_utilization.iter_mut().enumerate() {
            *s = if measured > 0.0 {
                self.server_util_int[i][w] / measured
            } else {
                0.0
            };
        }
        row
    }

    /// Closes window `w`: builds its row and lets the SLO evaluator
    /// judge it. Windows close in index order, exactly once.
    fn close_window(&mut self, w: usize) {
        debug_assert_eq!(self.rows.len(), w, "windows must close in order");
        // A window that saw no state view (no events landed in it)
        // carries the last observed staged occupancy forward.
        if self.staged_pending {
            self.staged_sample[w] = self.last_staged;
        }
        self.staged_pending = true;
        let row = self.build_row(w);
        self.alerts.extend(self.evaluator.on_window(&row));
        self.rows.push(row);
    }

    /// Grows the shard accumulators to `n` shards.
    fn ensure_shards(&mut self, n: usize) {
        while self.shards.len() < n {
            self.shards.push(ShardAccum {
                runs: vec![0; self.n_windows],
                stalled_runs: vec![0; self.n_windows],
                bounded_runs: vec![0; self.n_windows],
                slack_secs: vec![0.0; self.n_windows],
                events: vec![0; self.n_windows],
                cross_edges_out: vec![0; self.n_windows],
            });
        }
        self.n_shards = self.n_shards.max(n);
    }

    /// The window containing virtual second `t` (events at the horizon
    /// land in the last window).
    fn window_of(&self, t: f64) -> usize {
        (((t / self.width).floor()) as usize).min(self.n_windows - 1)
    }

    /// Finalizes the fold: integrates to the horizon, closes the
    /// remaining windows (feeding each to the SLO evaluator), and
    /// assembles the recording.
    pub fn finish(mut self) -> TimeSeriesRecording {
        self.advance(self.end_secs);
        for w in self.rows.len()..self.n_windows {
            self.close_window(w);
        }
        let shards = self
            .shards
            .into_iter()
            .enumerate()
            .map(|(i, s)| ShardSeries {
                shard: i as u32,
                runs: s.runs,
                stalled_runs: s.stalled_runs,
                bounded_runs: s.bounded_runs,
                slack_secs: s.slack_secs,
                events: s.events,
                cross_edges_out: s.cross_edges_out,
            })
            .collect();
        TimeSeriesRecording {
            version: 1,
            trials: 1,
            window_secs: self.width,
            warmup_secs: self.warmup_secs,
            duration_secs: self.end_secs,
            n_servers: self.n_servers as u32,
            windows: self.rows,
            shards,
            alerts: self.alerts,
        }
    }
}

impl Probe for TimeSeriesProbe {
    fn on_event(&mut self, now: SimTime, event: &SimEvent) {
        self.advance(now.as_secs());
        let w = self.cur_win;
        let c = &mut self.counts[w];
        match *event {
            SimEvent::Admitted { path, .. } => {
                c.arrivals += 1;
                match path {
                    AdmitPath::Direct => c.admitted += 1,
                    AdmitPath::Migrated => c.admitted_drm += 1,
                    AdmitPath::Chained => c.admitted_chained += 1,
                }
            }
            SimEvent::Rejected { .. } => {
                c.arrivals += 1;
                c.rejected += 1;
            }
            SimEvent::Completed { .. } => c.completions += 1,
            SimEvent::Migrated { emergency, .. } => {
                if emergency {
                    c.evacuations += 1;
                } else {
                    c.migrations += 1;
                }
            }
            SimEvent::ServerDown { dropped, .. } => {
                c.failures += 1;
                c.dropped += dropped as u64;
            }
            SimEvent::ServerUp { .. } => c.repairs += 1,
            SimEvent::Paused { .. } => c.pauses += 1,
            SimEvent::Resumed { .. } => c.resumes += 1,
            SimEvent::CopyStarted { .. } => c.copies_started += 1,
            SimEvent::CopyDone { .. } => c.copies_done += 1,
            SimEvent::WaitlistQueued { .. } => c.waitlist_queued += 1,
            SimEvent::WaitlistServed { .. } => c.waitlist_served += 1,
            SimEvent::WaitlistExpired { count } => c.waitlist_expired += count as u64,
            // The run-level windowed-utilization samples are redundant
            // with this probe's own grid.
            SimEvent::WindowSample { .. } => {}
            SimEvent::CrossShard { from_shard, .. } => {
                self.ensure_shards(from_shard as usize + 1);
                self.shards[from_shard as usize].cross_edges_out[w] += 1;
            }
        }
    }

    fn on_state(&mut self, now: SimTime, view: &StateView) {
        self.advance(now.as_secs());
        // Everything read here is O(1) per server (the engines maintain
        // their allocated-rate aggregates) — this runs after every event.
        let mut total_alloc = 0.0;
        let mut total_cap = 0.0;
        for (i, u) in self.cur.server_util.iter_mut().enumerate() {
            let alloc = view.allocated_mbps(i);
            let cap = view.capacity_mbps(i);
            total_alloc += alloc;
            total_cap += cap;
            *u = alloc / cap;
        }
        self.cur.cluster_util = total_alloc / total_cap;
        self.cur.waitlist = view.waitlist_depth() as f64;
        self.cur.active = view.total_active_streams() as f64;
        // Staged occupancy walks every stream; sample it once per
        // window rather than paying that on every event.
        if self.staged_pending {
            let (staged, _slope) = view.staged_totals();
            self.staged_sample[self.cur_win] = staged;
            self.last_staged = staged;
            self.staged_pending = false;
        }
    }

    fn on_run(&mut self, summary: &RunSummary) {
        self.ensure_shards(summary.n_shards as usize);
        // Runs are attributed to the window containing their election
        // time; a run ending past a boundary may touch an already-closed
        // window, which is fine — shard series live outside the rows.
        let w = self.window_of(summary.start.as_secs());
        let s = &mut self.shards[summary.shard as usize];
        s.runs[w] += 1;
        s.events[w] += summary.events;
        if summary.stalled {
            s.stalled_runs[w] += 1;
        }
        if let Some(slack) = summary.slack_secs {
            s.bounded_runs[w] += 1;
            s.slack_secs[w] += slack;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulation::Simulation;
    use sct_workload::scenario::SystemSpec;

    fn quick_config(seed: u64, shards: usize) -> SimConfig {
        SimConfig::builder(SystemSpec::tiny_test())
            .duration_hours(2.0)
            .warmup_hours(0.25)
            .shards(shards)
            .seed(seed)
            .build()
    }

    #[test]
    fn window_grid_covers_the_run() {
        let cfg = quick_config(11, 1);
        let mut probe = TimeSeriesProbe::new(&cfg, 900.0);
        let out = Simulation::run_with_probes(&cfg, &mut [&mut probe]);
        let rec = probe.finish();
        assert_eq!(rec.windows.len(), 8, "2 h / 900 s");
        assert_eq!(rec.n_servers, 3);
        assert!(rec.shards.is_empty(), "monolithic loop has no shards");
        for (i, w) in rec.windows.iter().enumerate() {
            assert_eq!(w.index as usize, i);
            assert_eq!(w.start_secs, i as f64 * 900.0);
            assert_eq!(w.span_secs, 900.0);
            assert_eq!(w.server_utilization.len(), 3);
        }
        // Warm-up = 900 s: window 0 has no measured overlap.
        assert_eq!(rec.windows[0].measured_secs, 0.0);
        assert_eq!(rec.windows[0].utilization, 0.0);
        assert_eq!(rec.windows[1].measured_secs, 900.0);
        assert!(out.utilization > 0.0);
    }

    #[test]
    fn uneven_window_truncates_the_tail() {
        let cfg = quick_config(11, 1);
        let probe = TimeSeriesProbe::new(&cfg, 1000.0);
        let rec = {
            let mut p = probe;
            Simulation::run_with_probes(&cfg, &mut [&mut p]);
            p.finish()
        };
        assert_eq!(rec.windows.len(), 8, "ceil(7200 / 1000)");
        let last = rec.windows.last().unwrap();
        assert_eq!(last.start_secs, 7000.0);
        assert_eq!(last.span_secs, 200.0);
    }

    #[test]
    fn probe_is_invisible_and_deterministic() {
        let cfg = quick_config(12, 1);
        let bare = Simulation::run(&cfg);
        let mut probe = TimeSeriesProbe::new(&cfg, 600.0);
        let probed = Simulation::run_with_probes(&cfg, &mut [&mut probe]);
        assert_eq!(bare, probed, "TimeSeriesProbe perturbed the outcome");
        let rec = probe.finish();
        let mut probe2 = TimeSeriesProbe::new(&cfg, 600.0);
        Simulation::run_with_probes(&cfg, &mut [&mut probe2]);
        let rec2 = probe2.finish();
        assert_eq!(
            rec.to_json(),
            rec2.to_json(),
            "same config, different recording"
        );
    }

    #[test]
    fn counters_and_utilization_reconcile() {
        let cfg = quick_config(13, 1);
        let mut ts = TimeSeriesProbe::new(&cfg, 700.0);
        let mut tel = crate::metrics::TelemetryProbe::new(&cfg);
        let out = Simulation::run_with_probes(&cfg, &mut [&mut ts, &mut tel]);
        let rec = ts.finish();
        let reg = tel.finish();
        let sum = |f: fn(&WindowRow) -> u64| rec.windows.iter().map(f).sum::<u64>();
        assert_eq!(sum(|w| w.admitted), reg.counter("admitted_direct"));
        assert_eq!(sum(|w| w.admitted_drm), reg.counter("admitted_drm"));
        assert_eq!(sum(|w| w.admitted_chained), reg.counter("admitted_chained"));
        assert_eq!(sum(|w| w.rejected), reg.counter("rejected"));
        assert_eq!(sum(|w| w.completions), reg.counter("completions"));
        let measured: f64 = rec.windows.iter().map(|w| w.measured_secs).sum();
        assert!((measured - (cfg.duration - cfg.warmup)).abs() < 1e-9);
        let integral: f64 = rec
            .windows
            .iter()
            .map(|w| w.utilization * w.measured_secs)
            .sum();
        assert!(
            (integral / measured - out.utilization).abs() < 1e-9,
            "windowed utilization does not integrate to the outcome: {} vs {}",
            integral / measured,
            out.utilization
        );
    }

    #[test]
    fn sharded_run_records_barrier_series() {
        let cfg = quick_config(14, 2);
        let mut probe = TimeSeriesProbe::new(&cfg, 900.0);
        Simulation::run_with_probes(&cfg, &mut [&mut probe]);
        let rec = probe.finish();
        assert_eq!(rec.shards.len(), 2);
        let total_runs: u64 = rec.shards.iter().flat_map(|s| s.runs.iter()).sum();
        assert!(total_runs > 0, "no runs recorded on a sharded loop");
        let total_events: u64 = rec.shards.iter().flat_map(|s| s.events.iter()).sum();
        assert!(total_events > 0);
        for s in &rec.shards {
            assert_eq!(s.runs.len(), rec.windows.len());
            for (b, r) in s.bounded_runs.iter().zip(&s.runs) {
                assert!(b <= r);
            }
        }
    }

    #[test]
    #[should_panic(expected = "window width must be positive")]
    fn zero_width_panics() {
        let cfg = quick_config(1, 1);
        let _ = TimeSeriesProbe::new(&cfg, 0.0);
    }
}
