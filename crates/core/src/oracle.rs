//! Differential reference simulator and invariant auditor.
//!
//! The production [`crate::simulation::Simulation`] is *event-driven*:
//! engines integrate piecewise-linear stream state exactly between
//! predicted events, and a generation counter filters stale wakes. That
//! machinery is efficient but subtle — an allocator bug, a mis-predicted
//! wake, or a commitment-ledger drift silently corrupts results without
//! tripping any single assertion.
//!
//! This module provides the classic antidote (see ns-2/ns-3 validation
//! practice): a **deliberately simple reference simulator** that replays
//! the same trace with an independently written allocator and an
//! independent integrator, plus an **invariant auditor** that
//! cross-checks the two at every event boundary:
//!
//! * per-stream `sent_mb`, allocated rate, staging-buffer occupancy;
//! * per-server `committed_mbps` and capacity;
//! * global data conservation (Σ transmitted == Σ reference deltas);
//! * the minimum-flow guarantee (every unpaused stream ≥ `b_view`);
//! * admission legality (a `Direct` must come from the eligible holder
//!   set; a rejection implies that set was empty);
//! * replication-copy traces: a cluster-sourced copy is mirrored as a
//!   reference stream at the copy rate, and its `CopyDone` must install
//!   the replica that later admissions are checked against;
//! * waitlist service: rejected viewers queue with bounded patience and
//!   re-enter as fresh streams after departures, on a legal holder —
//!   optionally through the full admission path (migrations and chains
//!   performed on a waiter's behalf are mirrored too);
//! * two-step migration chains ([`Admission::WithChain`]): both hops are
//!   checked against the deterministic plan the controller's depth-2
//!   search must have found on the pre-admission state.
//!
//! Between trace events every per-stream rate is constant, so sent and
//! played volumes are piecewise linear in time. The default
//! [`RefStepper::Exact`] integrator exploits that: one closed-form slice
//! per event boundary, sub-sliced at stream-finish and playout-end
//! crossings found by solving the linear crossing time (see
//! [`exact_slice`]). Replay cost is therefore O(#events), independent of
//! simulated duration — hours-long drains cost a handful of slices. The
//! original fixed-Δt integrator survives as [`RefStepper::Naive`] (and as
//! the default under the `naive-stepper` feature) purely as a spot-check;
//! the clamped per-slice updates are exact for any Δt, so the two must
//! agree to float rounding, which the agreement tests assert.
//!
//! The first divergence aborts the replay and is reported with a
//! replayable **(seed, time, stream)** triple, so
//! `OracleScenario::generate(seed)` reproduces the failure exactly.
//! [`shrink_divergence`] then delta-debugs the scenario's trace to a
//! locally minimal reproduction, which is what the scenario fuzzer
//! reports on failure.
//!
//! Only compiled with the `differential` feature (which also unlocks the
//! introspection hooks in `sct-transmission` / `sct-admission`).

use std::fmt;

use sct_admission::{
    Admission, AssignmentPolicy, Controller, CopyLaunch, CopySource, EvacuationPolicy,
    MigrationPolicy, ReplicationManager, ReplicationSpec, Waitlist, WaitlistSpec,
};
use sct_cluster::{ClusterSpec, ReplicaMap, ServerId};
use sct_media::{ClientProfile, VideoId};
use sct_simcore::{Rng, SimTime};
use sct_transmission::{SchedulerKind, ServerEngine, Stream, StreamId, EPS_MB};

/// Reference integration step (seconds). Small enough that the slice sum
/// reproduces the engines' exact piecewise-linear integrals to well below
/// [`ORACLE_TOL_MB`]; large enough to keep replays fast.
pub const ORACLE_DT_SECS: f64 = 0.01;

/// Divergence threshold for data-volume comparisons, in megabits.
pub const ORACLE_TOL_MB: f64 = 1e-6;

/// Divergence threshold for rate comparisons, in Mb/s.
pub const ORACLE_TOL_MBPS: f64 = 1e-6;

/// Playback-time epsilon (seconds): a playout-end boundary closer than
/// this is treated as already reached by the crossing-time solver, so
/// float residue left after landing exactly on a crossing cannot spawn
/// further sub-slices.
pub const EPS_SECS: f64 = 1e-9;

// ---------------------------------------------------------------------------
// The reference stepper
// ---------------------------------------------------------------------------

/// How the reference cluster integrates between event boundaries.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum RefStepper {
    /// One closed-form slice per event boundary, sub-sliced at
    /// stream-finish and playout-end crossings solved from the linear
    /// dynamics. Exact, and O(#events) regardless of simulated duration.
    Exact,
    /// Fixed-timestep spot-check integrator: O(duration / Δt).
    Naive {
        /// Integration step in seconds.
        dt_secs: f64,
    },
}

/// The stepper the oracle entry points use: [`RefStepper::Exact`], or the
/// fixed-[`ORACLE_DT_SECS`] integrator when the crate is built with the
/// `naive-stepper` feature.
pub fn default_stepper() -> RefStepper {
    if cfg!(feature = "naive-stepper") {
        RefStepper::Naive {
            dt_secs: ORACLE_DT_SECS,
        }
    } else {
        RefStepper::Exact
    }
}

/// Per-stream state the crossing-time solver needs. Between event
/// boundaries `sent` grows linearly at `rate` until `remaining_mb`
/// reaches zero, and playback consumes wall time one-for-one until
/// `play_left_secs` reaches zero (unless paused).
#[derive(Clone, Copy, Debug)]
pub struct SliceState {
    /// Allocated transmission rate, Mb/s.
    pub rate: f64,
    /// Megabits still to transmit.
    pub remaining_mb: f64,
    /// Whether playback is frozen.
    pub paused: bool,
    /// Seconds of playback left until the clip's playout end.
    pub play_left_secs: f64,
}

/// The largest step `dt ≤ left` that crosses no stream-finish or
/// playout-end boundary: the minimum over `left`, every transmitting
/// stream's finish crossing `remaining_mb / rate`, and every playing
/// stream's playout residue `play_left_secs`. Boundaries within
/// [`EPS_MB`] / [`EPS_SECS`] of the current state count as already
/// crossed, so each boundary binds at most once per integration — at
/// most `2·n_streams + 1` slices per reference integration call.
/// Capacity changes need no crossing term: they only happen at trace
/// events, which bound `left` by construction.
pub fn exact_slice(left: f64, streams: &[SliceState]) -> f64 {
    let mut dt = left;
    for s in streams {
        if s.rate > 0.0 && s.remaining_mb > EPS_MB {
            dt = dt.min(s.remaining_mb / s.rate);
        }
        if !s.paused && s.play_left_secs > EPS_SECS {
            dt = dt.min(s.play_left_secs);
        }
    }
    dt
}

// ---------------------------------------------------------------------------
// Scenarios
// ---------------------------------------------------------------------------

/// One operation of a replayable trace.
#[derive(Clone, Debug)]
pub enum TraceOp {
    /// A viewer requests `video` (`size_mb` megabits at the view rate).
    Arrival {
        /// Requested video.
        video: VideoId,
        /// Clip size in megabits.
        size_mb: f64,
    },
    /// A server crashes; the controller evacuates what it can.
    Fail(ServerId),
    /// A failed server comes back online, empty.
    Repair(ServerId),
    /// The viewer of the stream admitted by arrival number `.0` pauses
    /// playback (stream ids equal arrival indices). Pausing a stream that
    /// finished, was dropped, or was never admitted is a client-side no-op.
    Pause(StreamId),
    /// The same viewer resumes playback.
    Resume(StreamId),
    /// Directs the replication manager to attempt a cluster-sourced copy
    /// of `video` (`size_mb` megabits). A launch admits a real copy
    /// stream into the source engine, which the reference mirrors at the
    /// copy rate; `CopyDone` is observed via the engine reap path and
    /// must install the replica in the shared map. A no-op when the
    /// manager declines (no eligible target/source, cap, or cooldown) or
    /// when the scenario has no replication spec.
    StartCopy {
        /// Video to replicate.
        video: VideoId,
        /// Object size in megabits.
        size_mb: f64,
    },
}

/// A self-contained random scenario: cluster shape, policies, and a
/// timed trace. Fully determined by the seed passed to
/// [`OracleScenario::generate`].
#[derive(Clone, Debug)]
pub struct OracleScenario {
    /// The generating seed (echoed in divergence reports).
    pub seed: u64,
    /// Number of data servers.
    pub n_servers: usize,
    /// Minimum-flow slots per server (capacity = slots × view rate).
    pub slots_per_server: usize,
    /// View bandwidth `b_view` in Mb/s.
    pub view_rate: f64,
    /// Spare-bandwidth policy under test.
    pub scheduler: SchedulerKind,
    /// Whether dynamic request migration is enabled.
    pub migration_on: bool,
    /// Whether two-step migration chains are enabled (implies
    /// `migration_on`; the policy becomes [`MigrationPolicy::chain2`] and
    /// the waitlist, if any, serves through the full admission path).
    pub chain2_on: bool,
    /// Whether evacuation restarts streams that cannot hand off
    /// seamlessly (best-effort policy). Seed bit 7, *inverted*: off for
    /// every seed below 128, so the strict paper-faithful policy remains
    /// the default across the historical scenario corpus.
    pub restart_on: bool,
    /// Client staging/receive profile shared by all viewers.
    pub client: ClientProfile,
    /// Holder set per video (index = video id).
    pub holders: Vec<Vec<ServerId>>,
    /// Cluster-sourced dynamic replication, driven by
    /// [`TraceOp::StartCopy`] directives ([`CopySource::Tertiary`] is
    /// rejected — the reference only mirrors copies that consume real
    /// engine bandwidth).
    pub replication: Option<ReplicationSpec>,
    /// Patience-bounded wait queue served after departures and repairs.
    pub waitlist: Option<WaitlistSpec>,
    /// Time-ordered operations.
    pub trace: Vec<(SimTime, TraceOp)>,
}

impl OracleScenario {
    /// Deterministically derives a scenario from `seed`. The scheduler and
    /// migration switch are also seed-derived (`seed % 4` cycles the four
    /// [`SchedulerKind`]s, bit 2 toggles migration), so a contiguous seed
    /// range covers every configuration.
    pub fn generate(seed: u64) -> OracleScenario {
        let mut rng = Rng::new(seed).fork(0x0AC1E);
        Self::generate_inner(seed, &mut rng)
    }

    fn generate_inner(seed: u64, rng: &mut Rng) -> OracleScenario {
        let scheduler = SchedulerKind::ALL[(seed % 4) as usize];
        let migration_on = (seed / 4).is_multiple_of(2);
        // Bits 3 and 4 toggle the replication and waitlist extensions, so
        // a contiguous seed range still covers every combination.
        let replication_on = (seed / 8).is_multiple_of(2);
        let waitlist_on = (seed / 16).is_multiple_of(2);
        // Bit 5 arms two-step chains (meaningful only with migration on,
        // so chain-off seeds keep generating byte-identical scenarios);
        // bit 6 appends an hours-long lone drain the exact stepper must
        // cross in O(1) slices.
        let chain2_on = migration_on && (seed / 32).is_multiple_of(2);
        let long_drain = (seed / 64).is_multiple_of(2);
        // Bit 7 arms the best-effort evacuation restart — inverted so it
        // stays off (paper-faithful) for the whole historical seed range.
        let restart_on = !(seed / 128).is_multiple_of(2);
        let n_servers = if chain2_on {
            // The deterministic chain pressure wave needs three distinct
            // servers (full → full → open).
            rng.range_usize(3, 5)
        } else {
            rng.range_usize(2, 5)
        };
        let slots_per_server = rng.range_usize(3, 7);
        let view_rate = 3.0;
        let n_videos = if chain2_on {
            rng.range_usize(3, 7)
        } else {
            rng.range_usize(2, 7)
        };

        // Client profile: mix bounded, unbounded, and zero staging.
        let client = match rng.below(5) {
            0 => ClientProfile::unbounded(),
            1 => ClientProfile::no_staging(30.0),
            _ => ClientProfile::new(rng.range_f64(30.0, 400.0), 30.0),
        };

        // Non-empty holder set per video. Chain-2 scenarios use a ring
        // instead: video 0 lives only on s0, video v ≥ 1 straddles the
        // edge {s_{(v-1) mod n}, s_{v mod n}} — the topology where a
        // depth-2 chain can free a slot that no single hop can.
        let holders: Vec<Vec<ServerId>> = if chain2_on {
            (0..n_videos)
                .map(|v| {
                    if v == 0 {
                        vec![ServerId(0)]
                    } else {
                        vec![
                            ServerId(((v - 1) % n_servers) as u16),
                            ServerId((v % n_servers) as u16),
                        ]
                    }
                })
                .collect()
        } else {
            (0..n_videos)
                .map(|_| {
                    let k = rng.range_usize(1, n_servers + 1);
                    let mut picked = rng.sample_indices(n_servers, k);
                    picked.sort_unstable();
                    picked.into_iter().map(|i| ServerId(i as u16)).collect()
                })
                .collect()
        };

        // Arrivals with occasional zero gaps (the shrunken regression
        // scenarios showed simultaneous arrivals are where bugs hide).
        let n_arrivals = rng.range_usize(10, 26);
        let mut trace: Vec<(SimTime, TraceOp)> = Vec::with_capacity(n_arrivals + 2);
        let mut t = 0.0f64;
        for _ in 0..n_arrivals {
            if !rng.chance(0.25) {
                t += rng.range_f64(0.0, 30.0);
            }
            let video = VideoId(rng.below(n_videos) as u32);
            let size_mb = if rng.chance(0.2) {
                30.0
            } else {
                rng.range_f64(30.0, 600.0)
            };
            trace.push((SimTime::from_secs(t), TraceOp::Arrival { video, size_mb }));
        }

        // Sometimes a failure + repair lands mid-trace. Skipped when the
        // scenario also replicates: evacuating an in-flight copy stream
        // would strand the manager's bookkeeping on the dead source,
        // which is interplay the reference does not model.
        if !replication_on && rng.chance(0.35) {
            let victim = ServerId(rng.below(n_servers) as u16);
            let t_fail = rng.range_f64(0.0, t.max(1.0));
            let t_repair = t_fail + rng.range_f64(10.0, 200.0);
            trace.push((SimTime::from_secs(t_fail), TraceOp::Fail(victim)));
            trace.push((SimTime::from_secs(t_repair), TraceOp::Repair(victim)));
            trace.sort_by_key(|a| a.0);
        }

        // Sometimes viewers pause and resume mid-trace: the reference's
        // `paused` flag freezes playback while the engines drop the
        // stream's rate to zero, and both must agree on the data volumes
        // either way. Targets are arrival indices; a pause landing before
        // its arrival (or on a rejected request) is a no-op on both sides.
        if rng.chance(0.5) {
            let k = rng.range_usize(1, 4);
            let mut targets = rng.sample_indices(n_arrivals, k);
            targets.sort_unstable();
            for idx in targets {
                let t_pause = rng.range_f64(0.0, t.max(1.0));
                let t_resume = t_pause + rng.range_f64(5.0, 120.0);
                let sid = StreamId(idx as u64);
                trace.push((SimTime::from_secs(t_pause), TraceOp::Pause(sid)));
                trace.push((SimTime::from_secs(t_resume), TraceOp::Resume(sid)));
            }
            // Stable by time, so same-instant ops keep their push order.
            trace.sort_by_key(|a| a.0);
        }

        // Replication scenarios sprinkle copy directives through the
        // trace. The copy rate is two view slots, so a launch needs a
        // holder with real spare capacity — plenty of directives are
        // declined, which exercises the gating paths too.
        let replication = replication_on.then_some(ReplicationSpec {
            copy_rate_mbps: 2.0 * view_rate,
            max_concurrent: 2,
            cooldown_secs: 15.0,
            source: CopySource::Cluster,
        });
        if replication.is_some() {
            let k = rng.range_usize(1, 4);
            for _ in 0..k {
                let video = VideoId(rng.below(n_videos) as u32);
                let size_mb = rng.range_f64(30.0, 240.0);
                let t_copy = rng.range_f64(0.0, t.max(1.0));
                trace.push((
                    SimTime::from_secs(t_copy),
                    TraceOp::StartCopy { video, size_mb },
                ));
            }
            trace.sort_by_key(|a| a.0);
        }

        // Waitlist scenarios park rejected viewers in a patience-bounded
        // queue; departures then re-admit them as fresh streams the
        // reference must pick up mid-replay.
        let waitlist = waitlist_on.then(|| {
            let patience = rng.range_f64(30.0, 240.0);
            if rng.chance(0.3) {
                WaitlistSpec::batching(patience, 8)
            } else {
                WaitlistSpec::new(patience, 8)
            }
        });

        // Chain-2 pressure wave, appended once the random prefix has
        // provably drained (prefix streams last ≤ 200 s plus ≤ 120 s of
        // pause and ≤ 240 s of waitlist patience; repairs land by
        // t + 200). Two video-2 arrivals land one each on s1 and s2 by
        // least-loaded tie-break, then 2·slots − 1 video-1 arrivals fill
        // s0 and s1 exactly, leaving s2 the only server with room. A
        // video-0 chaser then fails direct (s0 full) and single-hop
        // (s1, the only other v1 holder, is full), so admission must
        // chain: the v2 stream on s1 moves to s2, a v1 stream on s0
        // moves into the freed s1 slot, and the chaser lands on s0.
        // Later chasers find no v2 left on s1 and exercise the
        // reject-implies-no-plan check (queueing when a waitlist runs).
        if chain2_on {
            let mut tw = t + 700.0;
            for _ in 0..2 {
                trace.push((
                    SimTime::from_secs(tw),
                    TraceOp::Arrival {
                        video: VideoId(2),
                        size_mb: rng.range_f64(3_000.0, 6_000.0),
                    },
                ));
            }
            for _ in 0..(2 * slots_per_server - 1) {
                trace.push((
                    SimTime::from_secs(tw),
                    TraceOp::Arrival {
                        video: VideoId(1),
                        size_mb: rng.range_f64(3_000.0, 6_000.0),
                    },
                ));
            }
            for _ in 0..rng.range_usize(1, 4) {
                tw += 2.0;
                trace.push((
                    SimTime::from_secs(tw),
                    TraceOp::Arrival {
                        video: VideoId(0),
                        size_mb: rng.range_f64(3_000.0, 6_000.0),
                    },
                ));
            }
            t = tw;
        }

        // Hours-long lone drain: one final viewer whose clip plays for
        // 2-4 simulated hours after everything else has wound down. The
        // exact stepper crosses the whole tail in a handful of slices;
        // the naive spot-check pays duration / Δt.
        if long_drain {
            let t_tail = t + 4_000.0;
            trace.push((
                SimTime::from_secs(t_tail),
                TraceOp::Arrival {
                    video: VideoId(0),
                    size_mb: rng.range_f64(21_600.0, 43_200.0),
                },
            ));
        }

        OracleScenario {
            seed,
            n_servers,
            slots_per_server,
            view_rate,
            scheduler,
            migration_on,
            chain2_on,
            restart_on,
            client,
            holders,
            replication,
            waitlist,
            trace,
        }
    }

    /// The migration policy this scenario runs under.
    pub fn migration_policy(&self) -> MigrationPolicy {
        if self.migration_on {
            let base = if self.chain2_on {
                MigrationPolicy::chain2()
            } else {
                MigrationPolicy::single_hop()
            };
            MigrationPolicy {
                handoff_latency_secs: 0.0,
                ..base
            }
        } else {
            MigrationPolicy::disabled()
        }
    }
}

// ---------------------------------------------------------------------------
// Divergence reports
// ---------------------------------------------------------------------------

/// What kind of disagreement was detected.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DivergenceKind {
    /// Per-stream transmitted volume disagrees.
    SentMb,
    /// Per-stream allocated rate disagrees.
    Rate,
    /// Per-stream staging-buffer occupancy disagrees.
    StagedMb,
    /// Per-server committed bandwidth ledger disagrees or drifted.
    CommittedMbps,
    /// Per-server allocated rates exceed capacity.
    Capacity,
    /// An unpaused stream fell below the minimum flow.
    MinFlow,
    /// Global transmitted volume disagrees with the reference ledger.
    Conservation,
    /// The two sides disagree about which streams exist / where they live.
    StreamSet,
    /// An admission decision was illegal for the observable state.
    Admission,
}

/// The first point where the event-driven simulator and the reference
/// integrator disagree. `seed` + `time` + `stream` make the failure
/// replayable: regenerate the scenario from the seed and break at `time`.
#[derive(Clone, Debug)]
pub struct Divergence {
    /// Scenario seed ([`OracleScenario::generate`] reproduces the run).
    pub seed: u64,
    /// Simulation time of the check that failed.
    pub time: SimTime,
    /// Offending stream, when the check is stream-scoped.
    pub stream: Option<StreamId>,
    /// Offending server, when known.
    pub server: Option<ServerId>,
    /// Check category.
    pub kind: DivergenceKind,
    /// Human-readable magnitude / expectation.
    pub detail: String,
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "divergence[seed={} t={}", self.seed, self.time)?;
        if let Some(s) = self.stream {
            write!(f, " stream={s}")?;
        }
        if let Some(s) = self.server {
            write!(f, " server={s}")?;
        }
        write!(f, "] {:?}: {}", self.kind, self.detail)
    }
}

// ---------------------------------------------------------------------------
// The naive reference model
// ---------------------------------------------------------------------------

#[derive(Clone, Debug)]
struct RefStream {
    id: StreamId,
    video: VideoId,
    server: usize,
    size_mb: f64,
    view_rate: f64,
    sent_mb: f64,
    played_secs: f64,
    /// Kahan compensation terms for `sent_mb` / `played_secs`. The
    /// exact stepper takes too few slices to drift, but the naive
    /// spot-check stepper makes ~10⁶ tiny adds over a multi-hour drain
    /// — enough plain-summation round-off to trip the conservation
    /// tolerance (`ORACLE_TOL_MB`), so both accumulators compensate.
    sent_comp: f64,
    played_comp: f64,
    rate: f64,
    paused: bool,
    client: ClientProfile,
}

impl RefStream {
    fn remaining_mb(&self) -> f64 {
        (self.size_mb - self.sent_mb).max(0.0)
    }

    fn length_secs(&self) -> f64 {
        self.size_mb / self.view_rate
    }

    fn staged_mb(&self) -> f64 {
        (self.sent_mb - self.played_secs * self.view_rate).max(0.0)
    }

    fn buffer_full(&self) -> bool {
        !self.client.is_unbounded_staging()
            && self.staged_mb() >= self.client.staging_capacity_mb - EPS_MB
    }

    /// Projected finish offset (seconds from now) at the minimum flow —
    /// the EFTF ordering key.
    fn finish_offset(&self) -> f64 {
        self.remaining_mb() / self.view_rate
    }
}

/// The reference cluster: flat stream list, fixed-timestep integration,
/// and an independently written spare-bandwidth allocator.
struct RefCluster {
    scheduler: SchedulerKind,
    stepper: RefStepper,
    capacity: Vec<f64>,
    online: Vec<bool>,
    streams: Vec<RefStream>,
    clock: SimTime,
    /// Integration slices performed so far (one per closed-form segment
    /// in exact mode, one per Δt step in naive mode). Exposed through
    /// [`OracleOutcome::ref_slices`] so tests can assert the exact
    /// stepper's slice count is horizon-independent.
    slices: u64,
    /// Megabits transmitted to streams that have since left the cluster
    /// (finished or dropped). `retired_mb + Σ live sent` is the
    /// conservation ledger; summing per-slice deltas instead would
    /// accumulate float drift over millions of steps.
    retired_mb: f64,
}

impl RefCluster {
    fn new(
        n_servers: usize,
        capacity_mbps: f64,
        scheduler: SchedulerKind,
        stepper: RefStepper,
    ) -> RefCluster {
        RefCluster {
            scheduler,
            stepper,
            capacity: vec![capacity_mbps; n_servers],
            online: vec![true; n_servers],
            streams: Vec::new(),
            clock: SimTime::ZERO,
            slices: 0,
            retired_mb: 0.0,
        }
    }

    /// Total megabits ever transmitted, live plus retired.
    fn total_sent_mb(&self) -> f64 {
        self.retired_mb + self.streams.iter().map(|s| s.sent_mb).sum::<f64>()
    }

    /// Integrates from the internal clock to `t`. Per-slice updates are
    /// the closed forms `sent += min(rate·dt, remaining)` and
    /// `played = min(played + dt, length)`; both are exact for any `dt`
    /// that crosses no boundary, so the exact stepper takes one maximal
    /// boundary-free slice at a time while the naive stepper grinds
    /// through fixed Δt sub-steps of the very same update.
    fn integrate_to(&mut self, t: SimTime) {
        // Slice against a compensated local elapsed-time accumulator
        // rather than `self.clock += step`: a naive multi-hour drain
        // takes ~10⁶ steps, and plain clock accumulation drifts the
        // total integrated duration by enough that the closing
        // `self.clock = t` snap silently drops ~µs of transmission.
        let total = t - self.clock;
        let mut advanced = 0.0f64;
        let mut advanced_comp = 0.0f64;
        loop {
            let left = total - advanced;
            if left <= 0.0 {
                break;
            }
            let step = match self.stepper {
                RefStepper::Naive { dt_secs } => dt_secs.min(left),
                RefStepper::Exact => {
                    let states: Vec<SliceState> = self
                        .streams
                        .iter()
                        .map(|s| SliceState {
                            rate: s.rate,
                            remaining_mb: s.remaining_mb(),
                            paused: s.paused,
                            play_left_secs: (s.length_secs() - s.played_secs).max(0.0),
                        })
                        .collect();
                    let dt = exact_slice(left, &states);
                    // Sub-epsilon residues are excluded from the solver,
                    // so dt > 0 whenever left > 0; the fallback merely
                    // guards against a denormal-degenerate slice looping.
                    if dt > 0.0 {
                        dt
                    } else {
                        left
                    }
                }
            };
            for s in &mut self.streams {
                let delta = (s.rate * step).min(s.remaining_mb());
                let y = delta - s.sent_comp;
                let sum = s.sent_mb + y;
                s.sent_comp = (sum - s.sent_mb) - y;
                s.sent_mb = sum;
                if !s.paused {
                    let y = step - s.played_comp;
                    let sum = s.played_secs + y;
                    s.played_comp = (sum - s.played_secs) - y;
                    s.played_secs = sum;
                    if s.played_secs >= s.length_secs() {
                        s.played_secs = s.length_secs();
                        s.played_comp = 0.0;
                    }
                }
            }
            self.slices += 1;
            let y = step - advanced_comp;
            let sum = advanced + y;
            advanced_comp = (sum - advanced) - y;
            advanced = sum;
        }
        self.clock = t;
    }

    /// Independent reimplementation of the minimum-flow allocation for one
    /// server. Written *differently* from `sct_transmission::allocate` on
    /// purpose: repeated best-candidate extraction instead of a sorted
    /// sweep, and a bisected water level instead of the progressive-share
    /// fill. Agreement is therefore evidence, not tautology.
    fn reallocate(&mut self, server: usize) {
        let capacity = self.capacity[server];
        let members: Vec<usize> = (0..self.streams.len())
            .filter(|&i| self.streams[i].server == server)
            .collect();
        let mut used = 0.0;
        for &i in &members {
            let s = &mut self.streams[i];
            s.rate = if s.paused { 0.0 } else { s.view_rate };
            used += s.rate;
        }
        let mut spare = capacity - used;
        if spare <= EPS_MB {
            return;
        }
        let mut candidates: Vec<usize> = members
            .iter()
            .copied()
            .filter(|&i| !self.streams[i].buffer_full())
            .collect();
        match self.scheduler {
            SchedulerKind::NoWorkahead => {}
            SchedulerKind::Eftf | SchedulerKind::LatestFinishFirst => {
                // Repeatedly extract the best candidate instead of sorting.
                while spare > EPS_MB && !candidates.is_empty() {
                    let mut best = 0;
                    for c in 1..candidates.len() {
                        let a = &self.streams[candidates[c]];
                        let b = &self.streams[candidates[best]];
                        let ord = a
                            .finish_offset()
                            .total_cmp(&b.finish_offset())
                            .then(a.id.cmp(&b.id));
                        let better = if self.scheduler == SchedulerKind::Eftf {
                            ord == std::cmp::Ordering::Less
                        } else {
                            ord == std::cmp::Ordering::Greater
                        };
                        if better {
                            best = c;
                        }
                    }
                    let i = candidates.swap_remove(best);
                    let s = &mut self.streams[i];
                    let headroom = s.client.receive_cap_mbps - s.rate;
                    let give = spare.min(headroom).max(0.0);
                    s.rate += give;
                    spare -= give;
                }
            }
            SchedulerKind::ProportionalShare => {
                let heads: Vec<(usize, f64)> = candidates
                    .iter()
                    .map(|&i| {
                        let s = &self.streams[i];
                        (i, (s.client.receive_cap_mbps - s.rate).max(0.0))
                    })
                    .collect();
                let total: f64 = heads.iter().map(|&(_, h)| h).sum();
                if total <= spare {
                    for &(i, h) in &heads {
                        self.streams[i].rate += h;
                    }
                } else {
                    // Bisect the water level L: Σ min(h_i, L) = spare.
                    // L never exceeds `spare` (with total headroom above
                    // spare, Σ min(h_i, spare) ≥ spare already), so the
                    // bracket stays finite even for unbounded receive caps.
                    let mut lo = 0.0f64;
                    let mut hi = spare;
                    for _ in 0..80 {
                        let mid = 0.5 * (lo + hi);
                        let given: f64 = heads.iter().map(|&(_, h)| h.min(mid)).sum();
                        if given < spare {
                            lo = mid;
                        } else {
                            hi = mid;
                        }
                    }
                    let level = 0.5 * (lo + hi);
                    for &(i, h) in &heads {
                        self.streams[i].rate += h.min(level);
                    }
                }
            }
        }
    }

    fn find(&self, id: StreamId) -> Option<usize> {
        self.streams.iter().position(|s| s.id == id)
    }

    fn remove(&mut self, id: StreamId) -> Option<RefStream> {
        let removed = self.find(id).map(|i| self.streams.swap_remove(i));
        if let Some(r) = &removed {
            self.retired_mb += r.sent_mb;
        }
        removed
    }

    fn committed_mbps(&self, server: usize) -> f64 {
        self.streams
            .iter()
            .filter(|s| s.server == server)
            .map(|s| s.view_rate)
            .sum()
    }
}

// ---------------------------------------------------------------------------
// The auditor
// ---------------------------------------------------------------------------

macro_rules! diverge {
    ($seed:expr, $time:expr, $stream:expr, $server:expr, $kind:expr, $($arg:tt)+) => {
        return Err(Box::new(Divergence {
            seed: $seed,
            time: $time,
            stream: $stream,
            server: $server,
            kind: $kind,
            detail: format!($($arg)+),
        }))
    };
}

/// Mirrors one migration hop in the reference: `victim` must be known,
/// must live on `from`, and `to` must hold its video; its reference
/// placement then moves to `to`. Shared by single-hop admissions,
/// chain-2 admissions (two calls, inner hop first — the order the
/// controller applies them), and assisted waitlist serves.
fn mirror_relocation(
    seed: u64,
    now: SimTime,
    reference: &mut RefCluster,
    map: &ReplicaMap,
    victim: StreamId,
    from: ServerId,
    to: ServerId,
) -> Result<(), Box<Divergence>> {
    let Some(vi) = reference.find(victim) else {
        diverge!(
            seed,
            now,
            Some(victim),
            Some(from),
            DivergenceKind::StreamSet,
            "migration victim unknown to the reference"
        );
    };
    let v = &mut reference.streams[vi];
    if v.server != from.index() {
        diverge!(
            seed,
            now,
            Some(victim),
            Some(from),
            DivergenceKind::Admission,
            "victim lived on server {} per the reference",
            v.server
        );
    }
    if !map.holds(to, v.video) {
        diverge!(
            seed,
            now,
            Some(victim),
            Some(to),
            DivergenceKind::Admission,
            "victim moved to a non-holder of its video"
        );
    }
    v.server = to.index();
    Ok(())
}

/// Standalone invariant audit of live engines — the half of the oracle
/// that needs no reference replay. Checks the commitment ledger against
/// the stream list, the capacity bound, the minimum-flow guarantee, and
/// staging-buffer bounds. Cheap enough to call at every event of any
/// property test.
pub fn audit_engines(
    seed: u64,
    now: SimTime,
    engines: &[ServerEngine],
) -> Result<(), Box<Divergence>> {
    for e in engines {
        let sid = Some(e.id());
        let mut committed = 0.0;
        let mut total_rate = 0.0;
        for s in e.streams() {
            committed += s.view_rate;
            total_rate += s.rate();
            if !s.is_paused() && !s.is_finished() && s.rate() < s.view_rate - ORACLE_TOL_MBPS {
                diverge!(
                    seed,
                    now,
                    Some(s.id),
                    sid,
                    DivergenceKind::MinFlow,
                    "rate {} below view rate {}",
                    s.rate(),
                    s.view_rate
                );
            }
            let staged = s.staged_mb(now.max(e.clock()));
            if staged < -ORACLE_TOL_MB {
                diverge!(
                    seed,
                    now,
                    Some(s.id),
                    sid,
                    DivergenceKind::StagedMb,
                    "negative staging occupancy {staged}"
                );
            }
            if !s.client.is_unbounded_staging()
                && staged > s.client.staging_capacity_mb + s.view_rate * 1e-6 + ORACLE_TOL_MB
            {
                diverge!(
                    seed,
                    now,
                    Some(s.id),
                    sid,
                    DivergenceKind::StagedMb,
                    "staging overflow: {staged} > cap {}",
                    s.client.staging_capacity_mb
                );
            }
        }
        let n = e.streams().len() as f64;
        if (committed - e.committed_mbps()).abs() > ORACLE_TOL_MBPS * (1.0 + n) {
            diverge!(
                seed,
                now,
                None,
                sid,
                DivergenceKind::CommittedMbps,
                "ledger {} vs stream sum {committed}",
                e.committed_mbps()
            );
        }
        if total_rate > e.capacity_mbps() + ORACLE_TOL_MBPS * (1.0 + n) {
            diverge!(
                seed,
                now,
                None,
                sid,
                DivergenceKind::Capacity,
                "allocated {total_rate} exceeds capacity {}",
                e.capacity_mbps()
            );
        }
        if !e.is_online() && !e.streams().is_empty() {
            diverge!(
                seed,
                now,
                None,
                sid,
                DivergenceKind::StreamSet,
                "offline server holds {} streams",
                e.streams().len()
            );
        }
    }
    Ok(())
}

fn cross_check(
    seed: u64,
    now: SimTime,
    engines: &[ServerEngine],
    reference: &RefCluster,
) -> Result<(), Box<Divergence>> {
    audit_engines(seed, now, engines)?;

    let live: usize = engines.iter().map(|e| e.streams().len()).sum();
    if live != reference.streams.len() {
        diverge!(
            seed,
            now,
            None,
            None,
            DivergenceKind::StreamSet,
            "engines hold {live} streams, reference holds {}",
            reference.streams.len()
        );
    }

    for (idx, e) in engines.iter().enumerate() {
        let sid = Some(e.id());
        if (reference.capacity[idx] - e.capacity_mbps()).abs() > ORACLE_TOL_MBPS {
            diverge!(
                seed,
                now,
                None,
                sid,
                DivergenceKind::Capacity,
                "capacity {} vs reference {}",
                e.capacity_mbps(),
                reference.capacity[idx]
            );
        }
        if reference.online[idx] != e.is_online() {
            diverge!(
                seed,
                now,
                None,
                sid,
                DivergenceKind::StreamSet,
                "online={} but reference says {}",
                e.is_online(),
                reference.online[idx]
            );
        }
        let ref_committed = reference.committed_mbps(idx);
        let n = e.streams().len() as f64;
        if (ref_committed - e.committed_mbps()).abs() > ORACLE_TOL_MBPS * (1.0 + n) {
            diverge!(
                seed,
                now,
                None,
                sid,
                DivergenceKind::CommittedMbps,
                "committed {} vs reference {ref_committed}",
                e.committed_mbps()
            );
        }
        for s in e.streams() {
            let Some(r) = reference.find(s.id).map(|i| &reference.streams[i]) else {
                diverge!(
                    seed,
                    now,
                    Some(s.id),
                    sid,
                    DivergenceKind::StreamSet,
                    "stream unknown to the reference"
                );
            };
            if r.server != idx {
                diverge!(
                    seed,
                    now,
                    Some(s.id),
                    sid,
                    DivergenceKind::StreamSet,
                    "reference places it on server {}",
                    r.server
                );
            }
            if (r.sent_mb - s.sent_mb()).abs() > ORACLE_TOL_MB {
                diverge!(
                    seed,
                    now,
                    Some(s.id),
                    sid,
                    DivergenceKind::SentMb,
                    "sent {} vs reference {} (Δ={:+.3e})",
                    s.sent_mb(),
                    r.sent_mb,
                    s.sent_mb() - r.sent_mb
                );
            }
            if (r.rate - s.rate()).abs() > ORACLE_TOL_MBPS {
                diverge!(
                    seed,
                    now,
                    Some(s.id),
                    sid,
                    DivergenceKind::Rate,
                    "rate {} vs reference {} (Δ={:+.3e})",
                    s.rate(),
                    r.rate,
                    s.rate() - r.rate
                );
            }
            let staged = s.staged_mb(now.max(e.clock()));
            if (r.staged_mb() - staged).abs() > ORACLE_TOL_MB {
                diverge!(
                    seed,
                    now,
                    Some(s.id),
                    sid,
                    DivergenceKind::StagedMb,
                    "staged {} vs reference {}",
                    staged,
                    r.staged_mb()
                );
            }
        }
    }

    let transmitted: f64 = engines.iter().map(|e| e.transmitted_mb()).sum();
    let ledger = reference.total_sent_mb();
    if (transmitted - ledger).abs() > ORACLE_TOL_MB {
        diverge!(
            seed,
            now,
            None,
            None,
            DivergenceKind::Conservation,
            "cluster transmitted {transmitted} vs reference ledger {ledger} (Δ={:+.3e})",
            transmitted - ledger
        );
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// The differential driver
// ---------------------------------------------------------------------------

/// Counters from a completed divergence-free replay.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OracleOutcome {
    /// Requests in the trace.
    pub arrivals: u64,
    /// Requests placed directly.
    pub accepted_direct: u64,
    /// Requests placed by migrating a victim (single hop).
    pub accepted_via_migration: u64,
    /// Placements that needed a two-step migration chain — arrivals
    /// admitted [`Admission::WithChain`] plus chain-assisted waiter
    /// serves.
    pub accepted_via_chain: u64,
    /// Requests turned away.
    pub rejected: u64,
    /// Streams that finished transmission during the replay (viewer
    /// streams only; finished copies count under `copies_completed`).
    pub completions: u64,
    /// Pause/resume operations that landed on a live stream (no-op
    /// pauses against finished or rejected streams are not counted).
    pub pauses_applied: u64,
    /// Replica copies the manager actually launched.
    pub copies_started: u64,
    /// Copy streams that finished and installed their replica.
    pub copies_completed: u64,
    /// Rejected requests parked on the waitlist.
    pub waitlisted: u64,
    /// Waiters later admitted off the queue (batched viewers included).
    pub waiters_served: u64,
    /// Waiters dropped because their patience ran out.
    pub waiters_expired: u64,
    /// Waiters served only after a migration or chain was performed on
    /// their behalf (chain-2 scenarios route waitlist serving through
    /// the full admission path).
    pub waiters_assisted: u64,
    /// Cross-checks performed (one per event boundary).
    pub checks: u64,
    /// Integration slices the reference performed over the whole replay.
    /// Under [`RefStepper::Exact`] this is O(#events), independent of
    /// simulated duration; under [`RefStepper::Naive`] it grows like
    /// duration / Δt.
    pub ref_slices: u64,
}

/// A deliberately injected allocator fault, for oracle self-tests: from
/// accepted arrival number `at_arrival` onward, the stream admitted by
/// that arrival has its rate silently perturbed by `delta_mbps` after
/// every reallocation, exactly as a systematically buggy allocator would.
/// (A one-shot perturbation can be healed by an immediate reallocation
/// with no observable data drift — correctly nothing to report.) The
/// oracle must localize the corruption.
#[derive(Clone, Copy, Debug)]
pub struct FaultInjection {
    /// Zero-based index of the accepted arrival whose stream to corrupt.
    pub at_arrival: u64,
    /// Rate perturbation in Mb/s, re-applied after each reallocation.
    pub delta_mbps: f64,
}

/// Replays `scenario` through the event-driven engines + controller while
/// the reference integrates alongside, cross-checking at every event
/// boundary. Returns the first [`Divergence`] found, or the replay
/// counters if the two simulators agree throughout. Integrates with
/// [`default_stepper`].
pub fn run_differential(scenario: &OracleScenario) -> Result<OracleOutcome, Box<Divergence>> {
    run_differential_full(scenario, None, default_stepper())
}

/// [`run_differential`] with an optional injected allocator fault.
pub fn run_differential_with_fault(
    scenario: &OracleScenario,
    fault: Option<FaultInjection>,
) -> Result<OracleOutcome, Box<Divergence>> {
    run_differential_full(scenario, fault, default_stepper())
}

/// [`run_differential`] under an explicit reference stepper, for
/// exact-vs-naive agreement tests and the stepper bench.
pub fn run_differential_with_stepper(
    scenario: &OracleScenario,
    stepper: RefStepper,
) -> Result<OracleOutcome, Box<Divergence>> {
    run_differential_full(scenario, None, stepper)
}

fn run_differential_full(
    scenario: &OracleScenario,
    fault: Option<FaultInjection>,
    stepper: RefStepper,
) -> Result<OracleOutcome, Box<Divergence>> {
    let seed = scenario.seed;
    let view = scenario.view_rate;
    let capacity = scenario.slots_per_server as f64 * view;
    if let Some(spec) = &scenario.replication {
        assert_eq!(
            spec.source,
            CopySource::Cluster,
            "the oracle only mirrors cluster-sourced copies (tertiary \
             transfers consume no engine bandwidth to cross-check)"
        );
    }
    let mut engines: Vec<ServerEngine> = (0..scenario.n_servers as u16)
        .map(|i| ServerEngine::new(ServerId(i), capacity, scenario.scheduler))
        .collect();
    let mut map = ReplicaMap::from_holders(scenario.n_servers, scenario.holders.clone());
    // Only the disk ledger matters to replication targeting; make it a
    // non-constraint so target choice stays purely load-driven.
    let cluster_spec = ClusterSpec::homogeneous(scenario.n_servers, capacity, 1_000.0);
    let mut controller =
        Controller::new(AssignmentPolicy::LeastLoaded, scenario.migration_policy());
    controller.evacuation = EvacuationPolicy {
        best_effort_restart: scenario.restart_on,
    };
    let mut replication = scenario.replication.map(ReplicationManager::new);
    let mut waitlist = scenario.waitlist.map(Waitlist::new);
    let mut rng = Rng::new(seed).fork(0xD1FF);
    let mut reference = RefCluster::new(scenario.n_servers, capacity, scenario.scheduler, stepper);
    // Chain-2 scenarios serve the waitlist through the full admission
    // path (direct → migration → chain); otherwise serving is
    // direct-placement only, as in the production simulation.
    let assisted_serving = scenario.chain2_on;
    let mut out = OracleOutcome::default();
    let mut accepted_seen: u64 = 0;
    let mut next_id: u64 = 0;
    // Copy streams live in their own id space so viewer stream ids keep
    // equalling arrival indices (which pause targets rely on).
    let mut copy_next_id: u64 = 1 << 32;
    // Armed once the faulty arrival is admitted: (stream, perturbation).
    let mut corruption: Option<(StreamId, f64)> = None;

    // Serve the wait queue after a slot may have freed: expire the
    // impatient first (`try_serve` asserts the queue holds no stale
    // waiters), admit in FIFO order, and mirror every non-batched serve
    // as a fresh reference stream — its parameters read back from the
    // engine, so the mirror observes rather than re-derives.
    macro_rules! serve_waitlist {
        ($now:expr) => {
            if let Some(wl) = waitlist.as_mut() {
                out.waiters_expired += wl.expire($now) as u64;
                let serve = if assisted_serving {
                    wl.try_serve_admitting(&mut controller, &mut engines, &map, $now, &mut rng)
                } else {
                    wl.try_serve(&mut engines, &map, $now)
                };
                // Migrations / chains performed on a waiter's behalf move
                // victims before the waiter's own stream appears; mirror
                // them first so the placement checks below see the
                // post-assist reference layout.
                for (wid, assist) in &serve.assists {
                    out.waiters_assisted += 1;
                    match assist {
                        Admission::WithMigration { server, victim, to } => {
                            mirror_relocation(
                                seed,
                                $now,
                                &mut reference,
                                &map,
                                *victim,
                                *server,
                                *to,
                            )?;
                        }
                        Admission::WithChain {
                            server,
                            first,
                            second,
                        } => {
                            out.accepted_via_chain += 1;
                            mirror_relocation(
                                seed,
                                $now,
                                &mut reference,
                                &map,
                                second.0,
                                first.1,
                                second.1,
                            )?;
                            mirror_relocation(
                                seed,
                                $now,
                                &mut reference,
                                &map,
                                first.0,
                                *server,
                                first.1,
                            )?;
                        }
                        _ => diverge!(
                            seed,
                            $now,
                            Some(*wid),
                            None,
                            DivergenceKind::Admission,
                            "direct or rejected serve reported as an assist"
                        ),
                    }
                }
                for w in &serve.served {
                    out.waiters_served += 1;
                    if !map.holds(w.server, w.video) {
                        diverge!(
                            seed,
                            $now,
                            Some(w.id),
                            Some(w.server),
                            DivergenceKind::Admission,
                            "waiter served by a non-holder of its video"
                        );
                    }
                    if !w.batched {
                        let Some(s) = engines[w.server.index()]
                            .streams()
                            .iter()
                            .find(|s| s.id == w.id)
                        else {
                            diverge!(
                                seed,
                                $now,
                                Some(w.id),
                                Some(w.server),
                                DivergenceKind::StreamSet,
                                "served waiter missing from its engine"
                            );
                        };
                        reference.streams.push(RefStream {
                            id: w.id,
                            video: w.video,
                            server: w.server.index(),
                            size_mb: s.size_mb,
                            view_rate: s.view_rate,
                            sent_mb: 0.0,
                            played_secs: 0.0,
                            sent_comp: 0.0,
                            played_comp: 0.0,
                            rate: 0.0,
                            paused: false,
                            client: s.client,
                        });
                    }
                }
                for sid in &serve.touched {
                    let e = &mut engines[sid.index()];
                    e.advance_to($now);
                    e.reschedule($now);
                    reference.reallocate(sid.index());
                }
            }
        };
    }

    // Drain engine events (completions / buffer-full reallocations) up to
    // `horizon`, keeping the reference in lock-step.
    macro_rules! drain_until {
        ($horizon:expr) => {
            loop {
                let next = engines
                    .iter()
                    .filter_map(|e| e.next_event_after(e.clock()).map(|(w, _)| (w, e.id())))
                    .min_by(|a, b| a.0.cmp(&b.0));
                match next {
                    Some((when, id)) if when <= $horizon => {
                        reference.integrate_to(when);
                        // `when` is the minimum next event over ALL engines,
                        // so advancing every engine to it crosses no event;
                        // the cross-check below needs them all at `when`.
                        for e in engines.iter_mut() {
                            e.advance_to(when);
                        }
                        let e = &mut engines[id.index()];
                        let mut reaped = false;
                        for done in e.reap_finished(when) {
                            reaped = true;
                            if done.is_copy() {
                                // CopyDone: the replica must be known to
                                // the manager and lands in the shared map,
                                // widening later admission candidate sets.
                                out.copies_completed += 1;
                                let known = replication
                                    .as_mut()
                                    .and_then(|m| m.on_copy_finished(done.id, &mut map));
                                if known.is_none() {
                                    diverge!(
                                        seed,
                                        when,
                                        Some(done.id),
                                        Some(id),
                                        DivergenceKind::StreamSet,
                                        "finished copy unknown to the replication manager"
                                    );
                                }
                            } else {
                                out.completions += 1;
                            }
                            match reference.remove(done.id) {
                                Some(r) if r.remaining_mb() <= ORACLE_TOL_MB + EPS_MB => {}
                                Some(r) => diverge!(
                                    seed,
                                    when,
                                    Some(done.id),
                                    Some(id),
                                    DivergenceKind::SentMb,
                                    "engine finished it, reference still owes {} Mb",
                                    r.remaining_mb()
                                ),
                                None => diverge!(
                                    seed,
                                    when,
                                    Some(done.id),
                                    Some(id),
                                    DivergenceKind::StreamSet,
                                    "finished stream unknown to the reference"
                                ),
                            }
                        }
                        e.reschedule(when);
                        reference.reallocate(id.index());
                        if reaped {
                            // A departure freed capacity somewhere.
                            serve_waitlist!(when);
                        }
                        if let Some((sid, delta)) = corruption {
                            for e in engines.iter_mut() {
                                e.inject_rate_error(sid, delta);
                            }
                        }
                        out.checks += 1;
                        cross_check(seed, when, &engines, &reference)?;
                    }
                    _ => break,
                }
            }
        };
    }

    let trace = scenario.trace.clone();
    for (when, op) in &trace {
        let now = *when;
        drain_until!(now);
        reference.integrate_to(now);
        // The drain guarantees no engine event remains before `now`.
        for e in engines.iter_mut() {
            e.advance_to(now);
        }
        match op {
            TraceOp::Arrival { video, size_mb } => {
                out.arrivals += 1;
                let id = StreamId(next_id);
                next_id += 1;
                let stream = Stream::new(id, *video, *size_mb, view, scenario.client, now);
                let candidates = controller.direct_candidates(*video, view, &engines, &map);
                let expected_direct = candidates
                    .iter()
                    .copied()
                    .min_by_key(|s| (engines[s.index()].active_count(), *s));
                // The deterministic depth-2 plan on the pre-admission
                // state: a `WithChain` outcome must equal it exactly,
                // and a rejection under a chain-2 policy implies none
                // existed.
                let expected_chain = if scenario.migration_on && scenario.chain2_on {
                    controller.chain2_plan(*video, &engines, &map, now)
                } else {
                    None
                };
                let (admission, touched) =
                    controller.admit(stream, &mut engines, &map, now, &mut rng);
                match admission {
                    Admission::Direct { server } => {
                        out.accepted_direct += 1;
                        if expected_direct != Some(server) {
                            diverge!(
                                seed,
                                now,
                                Some(id),
                                Some(server),
                                DivergenceKind::Admission,
                                "direct to {server}, least-loaded eligible was {expected_direct:?}"
                            );
                        }
                        reference.streams.push(RefStream {
                            id,
                            video: *video,
                            server: server.index(),
                            size_mb: *size_mb,
                            view_rate: view,
                            sent_mb: 0.0,
                            played_secs: 0.0,
                            sent_comp: 0.0,
                            played_comp: 0.0,
                            rate: 0.0,
                            paused: false,
                            client: scenario.client,
                        });
                    }
                    Admission::WithMigration { server, victim, to } => {
                        out.accepted_via_migration += 1;
                        if !scenario.migration_on {
                            diverge!(
                                seed,
                                now,
                                Some(id),
                                Some(server),
                                DivergenceKind::Admission,
                                "migration fired while disabled"
                            );
                        }
                        if expected_direct.is_some() {
                            diverge!(
                                seed,
                                now,
                                Some(id),
                                Some(server),
                                DivergenceKind::Admission,
                                "migrated although a direct slot existed on {expected_direct:?}"
                            );
                        }
                        mirror_relocation(seed, now, &mut reference, &map, victim, server, to)?;
                        reference.streams.push(RefStream {
                            id,
                            video: *video,
                            server: server.index(),
                            size_mb: *size_mb,
                            view_rate: view,
                            sent_mb: 0.0,
                            played_secs: 0.0,
                            sent_comp: 0.0,
                            played_comp: 0.0,
                            rate: 0.0,
                            paused: false,
                            client: scenario.client,
                        });
                    }
                    Admission::WithChain {
                        server,
                        first,
                        second,
                    } => {
                        out.accepted_via_chain += 1;
                        if scenario.migration_policy().max_chain_length < 2 {
                            diverge!(
                                seed,
                                now,
                                Some(id),
                                Some(server),
                                DivergenceKind::Admission,
                                "chain migration under a chain-1 policy"
                            );
                        }
                        if expected_direct.is_some() {
                            diverge!(
                                seed,
                                now,
                                Some(id),
                                Some(server),
                                DivergenceKind::Admission,
                                "chained although a direct slot existed on {expected_direct:?}"
                            );
                        }
                        if expected_chain != Some((server, first, second)) {
                            diverge!(
                                seed,
                                now,
                                Some(id),
                                Some(server),
                                DivergenceKind::Admission,
                                "chain {:?} does not match the deterministic plan {:?}",
                                (server, first, second),
                                expected_chain
                            );
                        }
                        // The controller clears room on `first.1` before
                        // moving the first victim there; mirror the hops
                        // in the same inner-first order so each
                        // relocation's placement checks see a legal
                        // intermediate state.
                        mirror_relocation(
                            seed,
                            now,
                            &mut reference,
                            &map,
                            second.0,
                            first.1,
                            second.1,
                        )?;
                        mirror_relocation(
                            seed,
                            now,
                            &mut reference,
                            &map,
                            first.0,
                            server,
                            first.1,
                        )?;
                        reference.streams.push(RefStream {
                            id,
                            video: *video,
                            server: server.index(),
                            size_mb: *size_mb,
                            view_rate: view,
                            sent_mb: 0.0,
                            played_secs: 0.0,
                            sent_comp: 0.0,
                            played_comp: 0.0,
                            rate: 0.0,
                            paused: false,
                            client: scenario.client,
                        });
                    }
                    Admission::Rejected => {
                        out.rejected += 1;
                        if let Some(s) = expected_direct {
                            diverge!(
                                seed,
                                now,
                                Some(id),
                                Some(s),
                                DivergenceKind::Admission,
                                "rejected although {s} had a free slot"
                            );
                        }
                        if expected_chain.is_some() {
                            diverge!(
                                seed,
                                now,
                                Some(id),
                                None,
                                DivergenceKind::Admission,
                                "rejected although the two-step chain {expected_chain:?} \
                                 was available"
                            );
                        }
                        // A turned-away viewer queues up (bounced when the
                        // queue is full); a later departure re-admits it.
                        if let Some(wl) = waitlist.as_mut() {
                            wl.expire(now);
                            if wl
                                .enqueue(id, *video, *size_mb, view, scenario.client, now)
                                .is_some()
                            {
                                out.waitlisted += 1;
                            }
                        }
                    }
                }
                for sid in &touched {
                    let e = &mut engines[sid.index()];
                    e.advance_to(now);
                    e.reschedule(now);
                    reference.reallocate(sid.index());
                }
                if let Some((sid, delta)) = corruption {
                    for e in engines.iter_mut() {
                        e.inject_rate_error(sid, delta);
                    }
                }
                out.checks += 1;
                cross_check(seed, now, &engines, &reference)?;
                if admission.accepted() {
                    if let Some(f) = fault {
                        if accepted_seen == f.at_arrival {
                            // Corrupt the newly admitted stream's rate —
                            // invisible to the reference, so the oracle
                            // must flag it at the next event boundary.
                            corruption = Some((id, f.delta_mbps));
                            for e in engines.iter_mut() {
                                e.inject_rate_error(id, f.delta_mbps);
                            }
                        }
                    }
                    accepted_seen += 1;
                }
            }
            TraceOp::Fail(server) => {
                let taken = engines[server.index()].fail(now);
                let taken_ids: Vec<StreamId> = taken.iter().map(|s| s.id).collect();
                let evac = controller.evacuate(taken, *server, &mut engines, &map, now);
                let touched = evac.touched;
                reference.online[server.index()] = false;
                // Mirror each victim's fate by observing where it landed.
                for vid in taken_ids {
                    let landed = engines
                        .iter()
                        .position(|e| e.streams().iter().any(|s| s.id == vid));
                    let restarted = evac.restarted.iter().any(|&(id, _)| id == vid);
                    match landed {
                        Some(target) => {
                            if restarted {
                                if !scenario.restart_on {
                                    diverge!(
                                        seed,
                                        now,
                                        Some(vid),
                                        Some(*server),
                                        DivergenceKind::Admission,
                                        "evacuation restarted a stream with the \
                                         best-effort policy off"
                                    );
                                }
                            } else if !scenario.migration_on {
                                diverge!(
                                    seed,
                                    now,
                                    Some(vid),
                                    Some(*server),
                                    DivergenceKind::Admission,
                                    "evacuation relocated a stream with migration off"
                                );
                            }
                            let Some(vi) = reference.find(vid) else {
                                diverge!(
                                    seed,
                                    now,
                                    Some(vid),
                                    Some(*server),
                                    DivergenceKind::StreamSet,
                                    "evacuated stream unknown to the reference"
                                );
                            };
                            if restarted {
                                // Best-effort restart: the client rewinds
                                // to its playback point, so the staged
                                // workahead leaves the live stream and is
                                // retransmitted by the new server. The
                                // flushed megabits stay in the conservation
                                // ledger — the dead server really did send
                                // them.
                                let r = &mut reference.streams[vi];
                                let viewed = r.played_secs * r.view_rate;
                                let flushed = (r.sent_mb - viewed).max(0.0);
                                reference.retired_mb += flushed;
                                r.sent_mb = viewed;
                                r.sent_comp = 0.0;
                                r.server = target;
                            } else {
                                reference.streams[vi].server = target;
                            }
                        }
                        None => {
                            // Dropped (or it had just finished): the viewer
                            // is gone either way.
                            reference.remove(vid);
                        }
                    }
                }
                for sid in &touched {
                    let e = &mut engines[sid.index()];
                    e.advance_to(now);
                    e.reschedule(now);
                    reference.reallocate(sid.index());
                }
                out.checks += 1;
                cross_check(seed, now, &engines, &reference)?;
            }
            TraceOp::Repair(server) => {
                engines[server.index()].repair(now);
                reference.online[server.index()] = true;
                // The repaired server came back empty — room for waiters.
                serve_waitlist!(now);
                if let Some((sid, delta)) = corruption {
                    for e in engines.iter_mut() {
                        e.inject_rate_error(sid, delta);
                    }
                }
                out.checks += 1;
                cross_check(seed, now, &engines, &reference)?;
            }
            TraceOp::StartCopy { video, size_mb } => {
                let launch = replication.as_mut().and_then(|m| {
                    m.maybe_replicate(
                        *video,
                        *size_mb,
                        &mut copy_next_id,
                        &mut engines,
                        &map,
                        &cluster_spec,
                        now,
                    )
                });
                match launch {
                    Some(CopyLaunch::FromServer { source, stream }) => {
                        out.copies_started += 1;
                        if !map.holds(source, *video) {
                            diverge!(
                                seed,
                                now,
                                Some(stream),
                                Some(source),
                                DivergenceKind::Admission,
                                "copy sourced from a non-holder of its video"
                            );
                        }
                        // Mirror the copy as a reference stream at the
                        // copy rate: unbounded staging, receive cap equal
                        // to the copy rate, so it rides the minimum flow
                        // with no workahead — exactly the engine's
                        // replica-copy semantics.
                        let copy_rate = scenario
                            .replication
                            .expect("launch implies a replication spec")
                            .copy_rate_mbps;
                        reference.streams.push(RefStream {
                            id: stream,
                            video: *video,
                            server: source.index(),
                            size_mb: *size_mb,
                            view_rate: copy_rate,
                            sent_mb: 0.0,
                            played_secs: 0.0,
                            sent_comp: 0.0,
                            played_comp: 0.0,
                            rate: 0.0,
                            paused: false,
                            client: ClientProfile::new(f64::INFINITY, copy_rate),
                        });
                        let e = &mut engines[source.index()];
                        e.reschedule(now);
                        reference.reallocate(source.index());
                    }
                    Some(CopyLaunch::FromTertiary { .. }) => {
                        unreachable!("cluster-sourced spec asserted above")
                    }
                    // Declined (cap, cooldown, no target, or no source
                    // with spare copy bandwidth) or replication disabled.
                    None => {}
                }
                if let Some((sid, delta)) = corruption {
                    for e in engines.iter_mut() {
                        e.inject_rate_error(sid, delta);
                    }
                }
                out.checks += 1;
                cross_check(seed, now, &engines, &reference)?;
            }
            TraceOp::Pause(stream) | TraceOp::Resume(stream) => {
                let paused = matches!(op, TraceOp::Pause(_));
                let sid = *stream;
                let mut engine_loc = None;
                for e in engines.iter_mut() {
                    if e.set_paused(sid, paused, now) {
                        engine_loc = Some(e.id());
                        break;
                    }
                }
                match (engine_loc, reference.find(sid)) {
                    (Some(server), Some(ri)) => {
                        if reference.streams[ri].server != server.index() {
                            diverge!(
                                seed,
                                now,
                                Some(sid),
                                Some(server),
                                DivergenceKind::StreamSet,
                                "paused stream lives on server {} per the reference",
                                reference.streams[ri].server
                            );
                        }
                        reference.streams[ri].paused = paused;
                        engines[server.index()].reschedule(now);
                        reference.reallocate(server.index());
                        out.pauses_applied += 1;
                    }
                    // Finished, dropped, or never admitted: nothing to do
                    // on either side.
                    (None, None) => {}
                    (Some(server), None) => diverge!(
                        seed,
                        now,
                        Some(sid),
                        Some(server),
                        DivergenceKind::StreamSet,
                        "engine holds a stream unknown to the reference"
                    ),
                    (None, Some(_)) => diverge!(
                        seed,
                        now,
                        Some(sid),
                        None,
                        DivergenceKind::StreamSet,
                        "reference holds a stream the engines lost"
                    ),
                }
                out.checks += 1;
                cross_check(seed, now, &engines, &reference)?;
            }
        }
    }

    // Let every remaining stream run to completion.
    let far = trace.last().map(|(t, _)| *t).unwrap_or(SimTime::ZERO) + 1.0e7;
    drain_until!(far);
    out.ref_slices = reference.slices;
    Ok(out)
}

// ---------------------------------------------------------------------------
// Divergence shrinking
// ---------------------------------------------------------------------------

/// `true` when every [`TraceOp::Fail`] lands on an online server and
/// every [`TraceOp::Repair`] on a failed one — the engines assert on
/// double faults, so trace shrinking must never produce an unpaired op.
fn trace_valid(trace: &[(SimTime, TraceOp)], n_servers: usize) -> bool {
    let mut online = vec![true; n_servers];
    for (_, op) in trace {
        match op {
            TraceOp::Fail(s) => {
                if s.index() >= n_servers || !online[s.index()] {
                    return false;
                }
                online[s.index()] = false;
            }
            TraceOp::Repair(s) => {
                if s.index() >= n_servers || online[s.index()] {
                    return false;
                }
                online[s.index()] = true;
            }
            _ => {}
        }
    }
    true
}

/// Shrinks a diverging scenario's trace while `check` keeps reporting a
/// divergence: first drops every op strictly after the divergence time,
/// then delta-debugs the rest with halving chunk sizes down to single
/// ops, skipping candidates that would unpair a fail/repair. Returns the
/// locally minimal scenario together with its divergence, or `None` when
/// `check` already passes on the input. The surviving divergence may
/// differ in kind or time from the original — any reproducible
/// divergence is an acceptable shrink target.
pub fn shrink_trace<F>(
    scenario: &OracleScenario,
    mut check: F,
) -> Option<(OracleScenario, Box<Divergence>)>
where
    F: FnMut(&OracleScenario) -> Option<Box<Divergence>>,
{
    let mut best = scenario.clone();
    let mut div = check(&best)?;
    // Ops strictly after the divergence time cannot have contributed.
    let cut: Vec<(SimTime, TraceOp)> = best
        .trace
        .iter()
        .filter(|(t, _)| *t <= div.time)
        .cloned()
        .collect();
    if cut.len() < best.trace.len() && trace_valid(&cut, best.n_servers) {
        let mut cand = best.clone();
        cand.trace = cut;
        if let Some(d) = check(&cand) {
            best = cand;
            div = d;
        }
    }
    let mut chunk = best.trace.len().div_ceil(2).max(1);
    loop {
        let mut progressed = false;
        let mut start = 0;
        while start < best.trace.len() {
            let end = (start + chunk).min(best.trace.len());
            let mut cand = best.clone();
            cand.trace.drain(start..end);
            if trace_valid(&cand.trace, cand.n_servers) {
                if let Some(d) = check(&cand) {
                    best = cand;
                    div = d;
                    progressed = true;
                    // The window now frames fresh ops; retry it.
                    continue;
                }
            }
            start = end;
        }
        if chunk > 1 {
            chunk = chunk.div_ceil(2).max(1);
        } else if !progressed {
            break;
        }
    }
    Some((best, div))
}

/// [`shrink_trace`] against the plain differential replay: reduces a
/// diverging scenario to a locally minimal reproduction whose report is
/// the replayable (seed, time, stream) triple to file. `None` when the
/// scenario replays clean.
pub fn shrink_divergence(scenario: &OracleScenario) -> Option<(OracleScenario, Box<Divergence>)> {
    shrink_trace(scenario, |sc| run_differential(sc).err())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_scenarios_have_no_divergence() {
        for seed in 0..16 {
            let sc = OracleScenario::generate(seed);
            if let Err(d) = run_differential(&sc) {
                panic!("{d}");
            }
        }
    }

    #[test]
    fn exact_slice_stops_at_the_nearest_crossing() {
        let streams = [
            SliceState {
                rate: 3.0,
                remaining_mb: 9.0,
                paused: false,
                play_left_secs: 10.0,
            },
            // Paused with nothing to send: contributes no crossing.
            SliceState {
                rate: 0.0,
                remaining_mb: 5.0,
                paused: true,
                play_left_secs: 2.0,
            },
            SliceState {
                rate: 6.0,
                remaining_mb: 1.5,
                paused: false,
                play_left_secs: 0.5,
            },
        ];
        // Nearest boundary: stream 2 finishes transmitting at 0.25 s.
        assert_eq!(exact_slice(100.0, &streams), 0.25);
        // Never steps past the event horizon.
        assert_eq!(exact_slice(0.1, &streams), 0.1);
        // No streams: one slice to the horizon.
        assert_eq!(exact_slice(100.0, &[]), 100.0);
        // Sub-epsilon residues are treated as already crossed.
        let residue = [SliceState {
            rate: 3.0,
            remaining_mb: EPS_MB / 2.0,
            paused: false,
            play_left_secs: EPS_SECS / 2.0,
        }];
        assert_eq!(exact_slice(7.0, &residue), 7.0);
    }

    #[test]
    fn exact_and_naive_steppers_agree() {
        // Seeds ≥ 64 skip the long-drain tail, keeping the naive replay
        // affordable at Δt = 10 ms. 68 has migration + chain-2 armed.
        for seed in [64, 68, 81] {
            let sc = OracleScenario::generate(seed);
            let exact = run_differential_with_stepper(&sc, RefStepper::Exact)
                .unwrap_or_else(|d| panic!("exact: {d}"));
            let naive = run_differential_with_stepper(
                &sc,
                RefStepper::Naive {
                    dt_secs: ORACLE_DT_SECS,
                },
            )
            .unwrap_or_else(|d| panic!("naive: {d}"));
            // Everything except the slice count must match exactly: both
            // steppers apply identical closed-form updates, only sliced
            // differently.
            let mut naive_counters = naive;
            naive_counters.ref_slices = exact.ref_slices;
            assert_eq!(exact, naive_counters, "seed {seed}");
            assert!(
                exact.ref_slices < naive.ref_slices,
                "seed {seed}: exact took {} slices, naive {}",
                exact.ref_slices,
                naive.ref_slices
            );
        }
    }

    #[test]
    fn chain2_scenarios_exercise_chains() {
        // Seeds 0..32 form the chain-armed block: every migration-on
        // seed in it generates the ring topology plus pressure wave.
        let mut chained = 0;
        for seed in 0..32 {
            let sc = OracleScenario::generate(seed);
            if !sc.chain2_on {
                continue;
            }
            let out = run_differential(&sc).unwrap_or_else(|d| panic!("{d}"));
            chained += out.accepted_via_chain;
        }
        assert!(chained > 0, "no chain-2 admission across the chain block");
    }

    #[test]
    fn shrinker_reduces_an_injected_divergence() {
        let sc = OracleScenario::generate(0);
        let fault = FaultInjection {
            at_arrival: 0,
            delta_mbps: 1.5,
        };
        let (min, d) = shrink_trace(&sc, |s| run_differential_with_fault(s, Some(fault)).err())
            .expect("an injected fault must diverge");
        assert!(min.trace.len() < sc.trace.len(), "nothing was shrunk");
        assert!(
            min.trace.len() <= 3,
            "expected a near-minimal trace, got {} ops",
            min.trace.len()
        );
        // The shrunken scenario replays to the reported divergence.
        let replay = run_differential_with_fault(&min, Some(fault))
            .expect_err("shrunken scenario must still diverge");
        assert_eq!(replay.seed, d.seed);
        assert_eq!(replay.time, d.time);
        assert_eq!(replay.kind, d.kind);
    }

    #[test]
    fn shrinker_returns_none_on_clean_scenarios() {
        let sc = OracleScenario::generate(1);
        assert!(shrink_divergence(&sc).is_none());
    }

    #[test]
    fn injected_fault_is_localized() {
        let sc = OracleScenario::generate(0);
        let fault = FaultInjection {
            at_arrival: 0,
            delta_mbps: 1.5,
        };
        let d = run_differential_with_fault(&sc, Some(fault))
            .expect_err("a corrupted rate must diverge");
        assert_eq!(d.seed, sc.seed);
        assert!(d.stream.is_some(), "report must name the stream: {d}");
        assert!(
            matches!(
                d.kind,
                DivergenceKind::Rate
                    | DivergenceKind::SentMb
                    | DivergenceKind::Capacity
                    | DivergenceKind::Conservation
            ),
            "unexpected kind: {d}"
        );
    }
}
