//! Full-system simulation of semi-continuous transmission for
//! cluster-based video servers (Irani & Venkatasubramanian, CLUSTER 2001).
//!
//! This crate assembles the substrates into the paper's experimental
//! apparatus:
//!
//! * [`config`] — [`config::SimConfig`]: one complete experimental setup
//!   (system, Zipf skew, placement, migration, staging, scheduler, seed).
//! * [`policies`] — the paper's policy table P1–P8 (Fig. 6) mapping onto
//!   configs.
//! * [`simulation`] — the discrete-event loop: Poisson arrivals →
//!   admission control (with DRM) → per-server EFTF transmission engines →
//!   utilization accounting.
//! * [`events`] — the typed [`events::SimEvent`] record stream the loop
//!   narrates, the [`events::Probe`] observer trait, and the built-in
//!   probes (metrics accumulation, JSONL trace export).
//! * [`metrics`] — the telemetry layer: mergeable log-bucketed
//!   histograms, exact time-weighted gauges, the
//!   [`metrics::TelemetryProbe`], and the [`metrics::MetricsRegistry`]
//!   it exports.
//! * [`spans`] — the [`spans::SpanProbe`]: request-lifecycle spans with
//!   causal edges (why *this* stream migrated), exported through
//!   `sct_analysis::spans`.
//! * [`profile`] — the always-on [`profile::LoopProfiler`]: wall-clock
//!   phase timers for the event loop itself (dispatch / allocator /
//!   wake scheduling / probe emission).
//! * [`exec`] — the opt-in [`exec::ExecRecorder`]: the wall-clock
//!   execution-plane recorder behind `sctsim run --exec-trace`,
//!   capturing per-epoch election/merge/re-attach windows, per-burst
//!   worker timelines, and offload decisions without perturbing the
//!   virtual-time outcome.
//! * [`timeseries`] — the flight recorder: [`timeseries::TimeSeriesProbe`]
//!   folds the event stream, state views, and barrier run summaries into
//!   fixed-width virtual-time windows with online SLO evaluation,
//!   exported through `sct_analysis::timeseries`.
//! * [`runner`] — deterministic parallel multi-trial execution.
//! * [`experiments`] — one function per paper table/figure (and per
//!   tech-report extension), producing [`sct_analysis::Series`]/tables.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod events;
pub mod exec;
pub mod experiments;
pub mod metrics;
#[cfg(feature = "differential")]
pub mod oracle;
pub mod policies;
pub mod profile;
pub mod runner;
pub mod simulation;
pub mod spans;
pub mod timeseries;

pub use config::{SimConfig, SimConfigBuilder, StagingSpec};
pub use events::{
    AdmitPath, CrossShardCounter, CrossShardEdge, JsonlTraceProbe, MetricsProbe, Probe, RunSummary,
    SimEvent,
};
pub use exec::{ExecRecorder, ExecStats};
pub use metrics::{Histogram, MetricsRegistry, StateView, TelemetryProbe, TimeWeightedGauge};
pub use policies::Policy;
pub use profile::{LoopProfile, LoopProfiler, PhaseStat};
pub use runner::{run_trials, utilization_summary, TrialPlan};
pub use simulation::{SimOutcome, Simulation};
pub use spans::SpanProbe;
pub use timeseries::TimeSeriesProbe;
