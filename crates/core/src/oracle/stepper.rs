//! The reference stepper: integration constants, the exact
//! event-boundary slicer, and the naive fixed-Δt spot-check.
//!
//! Split out of the one-file oracle; see [`super`] for the full
//! differential-testing story.

use sct_transmission::EPS_MB;

/// Reference integration step (seconds). Small enough that the slice sum
/// reproduces the engines' exact piecewise-linear integrals to well below
/// [`ORACLE_TOL_MB`]; large enough to keep replays fast.
pub const ORACLE_DT_SECS: f64 = 0.01;

/// Divergence threshold for data-volume comparisons, in megabits.
pub const ORACLE_TOL_MB: f64 = 1e-6;

/// Divergence threshold for rate comparisons, in Mb/s.
pub const ORACLE_TOL_MBPS: f64 = 1e-6;

/// Playback-time epsilon (seconds): a playout-end boundary closer than
/// this is treated as already reached by the crossing-time solver, so
/// float residue left after landing exactly on a crossing cannot spawn
/// further sub-slices.
pub const EPS_SECS: f64 = 1e-9;

// ---------------------------------------------------------------------------
// The reference stepper
// ---------------------------------------------------------------------------

/// How the reference cluster integrates between event boundaries.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum RefStepper {
    /// One closed-form slice per event boundary, sub-sliced at
    /// stream-finish and playout-end crossings solved from the linear
    /// dynamics. Exact, and O(#events) regardless of simulated duration.
    Exact,
    /// Fixed-timestep spot-check integrator: O(duration / Δt).
    Naive {
        /// Integration step in seconds.
        dt_secs: f64,
    },
}

/// The stepper the oracle entry points use: [`RefStepper::Exact`], or the
/// fixed-[`ORACLE_DT_SECS`] integrator when the crate is built with the
/// `naive-stepper` feature.
pub fn default_stepper() -> RefStepper {
    if cfg!(feature = "naive-stepper") {
        RefStepper::Naive {
            dt_secs: ORACLE_DT_SECS,
        }
    } else {
        RefStepper::Exact
    }
}

/// Per-stream state the crossing-time solver needs. Between event
/// boundaries `sent` grows linearly at `rate` until `remaining_mb`
/// reaches zero, and playback consumes wall time one-for-one until
/// `play_left_secs` reaches zero (unless paused).
#[derive(Clone, Copy, Debug)]
pub struct SliceState {
    /// Allocated transmission rate, Mb/s.
    pub rate: f64,
    /// Megabits still to transmit.
    pub remaining_mb: f64,
    /// Whether playback is frozen.
    pub paused: bool,
    /// Seconds of playback left until the clip's playout end.
    pub play_left_secs: f64,
}

/// The largest step `dt ≤ left` that crosses no stream-finish or
/// playout-end boundary: the minimum over `left`, every transmitting
/// stream's finish crossing `remaining_mb / rate`, and every playing
/// stream's playout residue `play_left_secs`. Boundaries within
/// [`EPS_MB`] / [`EPS_SECS`] of the current state count as already
/// crossed, so each boundary binds at most once per integration — at
/// most `2·n_streams + 1` slices per reference integration call.
/// Capacity changes need no crossing term: they only happen at trace
/// events, which bound `left` by construction.
pub fn exact_slice(left: f64, streams: &[SliceState]) -> f64 {
    let mut dt = left;
    for s in streams {
        if s.rate > 0.0 && s.remaining_mb > EPS_MB {
            dt = dt.min(s.remaining_mb / s.rate);
        }
        if !s.paused && s.play_left_secs > EPS_SECS {
            dt = dt.min(s.play_left_secs);
        }
    }
    dt
}
