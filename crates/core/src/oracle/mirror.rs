//! The deliberately simple reference model: a flat stream list with an
//! independently written allocator and integrator, plus the relocation
//! mirror shared by migration, chain, and waitlist-assist paths.

use sct_cluster::{ReplicaMap, ServerId};
use sct_media::VideoId;
use sct_simcore::SimTime;
use sct_transmission::{SchedulerKind, StreamId, EPS_MB};

use sct_media::ClientProfile;

use super::legality::{diverge, Divergence, DivergenceKind};
use super::stepper::{exact_slice, RefStepper, SliceState};

// ---------------------------------------------------------------------------
// The naive reference model
// ---------------------------------------------------------------------------

#[derive(Clone, Debug)]
pub(crate) struct RefStream {
    pub(crate) id: StreamId,
    pub(crate) video: VideoId,
    pub(crate) server: usize,
    pub(crate) size_mb: f64,
    pub(crate) view_rate: f64,
    pub(crate) sent_mb: f64,
    pub(crate) played_secs: f64,
    /// Kahan compensation terms for `sent_mb` / `played_secs`. The
    /// exact stepper takes too few slices to drift, but the naive
    /// spot-check stepper makes ~10⁶ tiny adds over a multi-hour drain
    /// — enough plain-summation round-off to trip the conservation
    /// tolerance (`ORACLE_TOL_MB`), so both accumulators compensate.
    pub(crate) sent_comp: f64,
    pub(crate) played_comp: f64,
    pub(crate) rate: f64,
    pub(crate) paused: bool,
    pub(crate) client: ClientProfile,
}

impl RefStream {
    pub(crate) fn remaining_mb(&self) -> f64 {
        (self.size_mb - self.sent_mb).max(0.0)
    }

    pub(crate) fn length_secs(&self) -> f64 {
        self.size_mb / self.view_rate
    }

    pub(crate) fn staged_mb(&self) -> f64 {
        (self.sent_mb - self.played_secs * self.view_rate).max(0.0)
    }

    pub(crate) fn buffer_full(&self) -> bool {
        !self.client.is_unbounded_staging()
            && self.staged_mb() >= self.client.staging_capacity_mb - EPS_MB
    }

    /// Projected finish offset (seconds from now) at the minimum flow —
    /// the EFTF ordering key.
    pub(crate) fn finish_offset(&self) -> f64 {
        self.remaining_mb() / self.view_rate
    }
}

/// The reference cluster: flat stream list, fixed-timestep integration,
/// and an independently written spare-bandwidth allocator.
pub(crate) struct RefCluster {
    pub(crate) scheduler: SchedulerKind,
    pub(crate) stepper: RefStepper,
    pub(crate) capacity: Vec<f64>,
    pub(crate) online: Vec<bool>,
    pub(crate) streams: Vec<RefStream>,
    pub(crate) clock: SimTime,
    /// Integration slices performed so far (one per closed-form segment
    /// in exact mode, one per Δt step in naive mode). Exposed through
    /// [`OracleOutcome::ref_slices`] so tests can assert the exact
    /// stepper's slice count is horizon-independent.
    pub(crate) slices: u64,
    /// Megabits transmitted to streams that have since left the cluster
    /// (finished or dropped). `retired_mb + Σ live sent` is the
    /// conservation ledger; summing per-slice deltas instead would
    /// accumulate float drift over millions of steps.
    pub(crate) retired_mb: f64,
}

impl RefCluster {
    pub(crate) fn new(
        n_servers: usize,
        capacity_mbps: f64,
        scheduler: SchedulerKind,
        stepper: RefStepper,
    ) -> RefCluster {
        RefCluster {
            scheduler,
            stepper,
            capacity: vec![capacity_mbps; n_servers],
            online: vec![true; n_servers],
            streams: Vec::new(),
            clock: SimTime::ZERO,
            slices: 0,
            retired_mb: 0.0,
        }
    }

    /// Total megabits ever transmitted, live plus retired.
    pub(crate) fn total_sent_mb(&self) -> f64 {
        self.retired_mb + self.streams.iter().map(|s| s.sent_mb).sum::<f64>()
    }

    /// Integrates from the internal clock to `t`. Per-slice updates are
    /// the closed forms `sent += min(rate·dt, remaining)` and
    /// `played = min(played + dt, length)`; both are exact for any `dt`
    /// that crosses no boundary, so the exact stepper takes one maximal
    /// boundary-free slice at a time while the naive stepper grinds
    /// through fixed Δt sub-steps of the very same update.
    pub(crate) fn integrate_to(&mut self, t: SimTime) {
        // Slice against a compensated local elapsed-time accumulator
        // rather than `self.clock += step`: a naive multi-hour drain
        // takes ~10⁶ steps, and plain clock accumulation drifts the
        // total integrated duration by enough that the closing
        // `self.clock = t` snap silently drops ~µs of transmission.
        let total = t - self.clock;
        let mut advanced = 0.0f64;
        let mut advanced_comp = 0.0f64;
        loop {
            let left = total - advanced;
            if left <= 0.0 {
                break;
            }
            let step = match self.stepper {
                RefStepper::Naive { dt_secs } => dt_secs.min(left),
                RefStepper::Exact => {
                    let states: Vec<SliceState> = self
                        .streams
                        .iter()
                        .map(|s| SliceState {
                            rate: s.rate,
                            remaining_mb: s.remaining_mb(),
                            paused: s.paused,
                            play_left_secs: (s.length_secs() - s.played_secs).max(0.0),
                        })
                        .collect();
                    let dt = exact_slice(left, &states);
                    // Sub-epsilon residues are excluded from the solver,
                    // so dt > 0 whenever left > 0; the fallback merely
                    // guards against a denormal-degenerate slice looping.
                    if dt > 0.0 {
                        dt
                    } else {
                        left
                    }
                }
            };
            for s in &mut self.streams {
                let delta = (s.rate * step).min(s.remaining_mb());
                let y = delta - s.sent_comp;
                let sum = s.sent_mb + y;
                s.sent_comp = (sum - s.sent_mb) - y;
                s.sent_mb = sum;
                if !s.paused {
                    let y = step - s.played_comp;
                    let sum = s.played_secs + y;
                    s.played_comp = (sum - s.played_secs) - y;
                    s.played_secs = sum;
                    if s.played_secs >= s.length_secs() {
                        s.played_secs = s.length_secs();
                        s.played_comp = 0.0;
                    }
                }
            }
            self.slices += 1;
            let y = step - advanced_comp;
            let sum = advanced + y;
            advanced_comp = (sum - advanced) - y;
            advanced = sum;
        }
        self.clock = t;
    }

    /// Independent reimplementation of the minimum-flow allocation for one
    /// server. Written *differently* from `sct_transmission::allocate` on
    /// purpose: repeated best-candidate extraction instead of a sorted
    /// sweep, and a bisected water level instead of the progressive-share
    /// fill. Agreement is therefore evidence, not tautology.
    pub(crate) fn reallocate(&mut self, server: usize) {
        let capacity = self.capacity[server];
        let members: Vec<usize> = (0..self.streams.len())
            .filter(|&i| self.streams[i].server == server)
            .collect();
        let mut used = 0.0;
        for &i in &members {
            let s = &mut self.streams[i];
            s.rate = if s.paused { 0.0 } else { s.view_rate };
            used += s.rate;
        }
        let mut spare = capacity - used;
        if spare <= EPS_MB {
            return;
        }
        let mut candidates: Vec<usize> = members
            .iter()
            .copied()
            .filter(|&i| !self.streams[i].buffer_full())
            .collect();
        match self.scheduler {
            SchedulerKind::NoWorkahead => {}
            SchedulerKind::Eftf | SchedulerKind::LatestFinishFirst => {
                // Repeatedly extract the best candidate instead of sorting.
                while spare > EPS_MB && !candidates.is_empty() {
                    let mut best = 0;
                    for c in 1..candidates.len() {
                        let a = &self.streams[candidates[c]];
                        let b = &self.streams[candidates[best]];
                        let ord = a
                            .finish_offset()
                            .total_cmp(&b.finish_offset())
                            .then(a.id.cmp(&b.id));
                        let better = if self.scheduler == SchedulerKind::Eftf {
                            ord == std::cmp::Ordering::Less
                        } else {
                            ord == std::cmp::Ordering::Greater
                        };
                        if better {
                            best = c;
                        }
                    }
                    let i = candidates.swap_remove(best);
                    let s = &mut self.streams[i];
                    let headroom = s.client.receive_cap_mbps - s.rate;
                    let give = spare.min(headroom).max(0.0);
                    s.rate += give;
                    spare -= give;
                }
            }
            SchedulerKind::ProportionalShare => {
                let heads: Vec<(usize, f64)> = candidates
                    .iter()
                    .map(|&i| {
                        let s = &self.streams[i];
                        (i, (s.client.receive_cap_mbps - s.rate).max(0.0))
                    })
                    .collect();
                let total: f64 = heads.iter().map(|&(_, h)| h).sum();
                if total <= spare {
                    for &(i, h) in &heads {
                        self.streams[i].rate += h;
                    }
                } else {
                    // Bisect the water level L: Σ min(h_i, L) = spare.
                    // L never exceeds `spare` (with total headroom above
                    // spare, Σ min(h_i, spare) ≥ spare already), so the
                    // bracket stays finite even for unbounded receive caps.
                    let mut lo = 0.0f64;
                    let mut hi = spare;
                    for _ in 0..80 {
                        let mid = 0.5 * (lo + hi);
                        let given: f64 = heads.iter().map(|&(_, h)| h.min(mid)).sum();
                        if given < spare {
                            lo = mid;
                        } else {
                            hi = mid;
                        }
                    }
                    let level = 0.5 * (lo + hi);
                    for &(i, h) in &heads {
                        self.streams[i].rate += h.min(level);
                    }
                }
            }
        }
    }

    pub(crate) fn find(&self, id: StreamId) -> Option<usize> {
        self.streams.iter().position(|s| s.id == id)
    }

    pub(crate) fn remove(&mut self, id: StreamId) -> Option<RefStream> {
        let removed = self.find(id).map(|i| self.streams.swap_remove(i));
        if let Some(r) = &removed {
            self.retired_mb += r.sent_mb;
        }
        removed
    }

    pub(crate) fn committed_mbps(&self, server: usize) -> f64 {
        self.streams
            .iter()
            .filter(|s| s.server == server)
            .map(|s| s.view_rate)
            .sum()
    }
}

/// Mirrors one migration hop in the reference: `victim` must be known,
/// must live on `from`, and `to` must hold its video; its reference
/// placement then moves to `to`. Shared by single-hop admissions,
/// chain-2 admissions (two calls, inner hop first — the order the
/// controller applies them), and assisted waitlist serves.
pub(crate) fn mirror_relocation(
    seed: u64,
    now: SimTime,
    reference: &mut RefCluster,
    map: &ReplicaMap,
    victim: StreamId,
    from: ServerId,
    to: ServerId,
) -> Result<(), Box<Divergence>> {
    let Some(vi) = reference.find(victim) else {
        diverge!(
            seed,
            now,
            Some(victim),
            Some(from),
            DivergenceKind::StreamSet,
            "migration victim unknown to the reference"
        );
    };
    let v = &mut reference.streams[vi];
    if v.server != from.index() {
        diverge!(
            seed,
            now,
            Some(victim),
            Some(from),
            DivergenceKind::Admission,
            "victim lived on server {} per the reference",
            v.server
        );
    }
    if !map.holds(to, v.video) {
        diverge!(
            seed,
            now,
            Some(victim),
            Some(to),
            DivergenceKind::Admission,
            "victim moved to a non-holder of its video"
        );
    }
    v.server = to.index();
    Ok(())
}
