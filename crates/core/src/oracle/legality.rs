//! Divergence reports and the invariant auditors: the standalone engine
//! audit ([`audit_engines`]) and the engines-vs-reference cross-check
//! run at every event boundary.

use std::fmt;

use sct_cluster::ServerId;
use sct_simcore::SimTime;
use sct_transmission::{ServerEngine, StreamId};

use super::mirror::RefCluster;
use super::stepper::{ORACLE_TOL_MB, ORACLE_TOL_MBPS};

// ---------------------------------------------------------------------------
// Divergence reports
// ---------------------------------------------------------------------------

/// What kind of disagreement was detected.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DivergenceKind {
    /// Per-stream transmitted volume disagrees.
    SentMb,
    /// Per-stream allocated rate disagrees.
    Rate,
    /// Per-stream staging-buffer occupancy disagrees.
    StagedMb,
    /// Per-server committed bandwidth ledger disagrees or drifted.
    CommittedMbps,
    /// Per-server allocated rates exceed capacity.
    Capacity,
    /// An unpaused stream fell below the minimum flow.
    MinFlow,
    /// Global transmitted volume disagrees with the reference ledger.
    Conservation,
    /// The two sides disagree about which streams exist / where they live.
    StreamSet,
    /// An admission decision was illegal for the observable state.
    Admission,
}

/// The first point where the event-driven simulator and the reference
/// integrator disagree. `seed` + `time` + `stream` make the failure
/// replayable: regenerate the scenario from the seed and break at `time`.
#[derive(Clone, Debug)]
pub struct Divergence {
    /// Scenario seed ([`OracleScenario::generate`](crate::oracle::OracleScenario::generate) reproduces the run).
    pub seed: u64,
    /// Simulation time of the check that failed.
    pub time: SimTime,
    /// Offending stream, when the check is stream-scoped.
    pub stream: Option<StreamId>,
    /// Offending server, when known.
    pub server: Option<ServerId>,
    /// Check category.
    pub kind: DivergenceKind,
    /// Human-readable magnitude / expectation.
    pub detail: String,
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "divergence[seed={} t={}", self.seed, self.time)?;
        if let Some(s) = self.stream {
            write!(f, " stream={s}")?;
        }
        if let Some(s) = self.server {
            write!(f, " server={s}")?;
        }
        write!(f, "] {:?}: {}", self.kind, self.detail)
    }
}

// ---------------------------------------------------------------------------
// The auditor
// ---------------------------------------------------------------------------

macro_rules! diverge {
    ($seed:expr, $time:expr, $stream:expr, $server:expr, $kind:expr, $($arg:tt)+) => {
        return Err(Box::new(Divergence {
            seed: $seed,
            time: $time,
            stream: $stream,
            server: $server,
            kind: $kind,
            detail: format!($($arg)+),
        }))
    };
}
pub(crate) use diverge;

/// Standalone invariant audit of live engines — the half of the oracle
/// that needs no reference replay. Checks the commitment ledger against
/// the stream list, the capacity bound, the minimum-flow guarantee, and
/// staging-buffer bounds. Cheap enough to call at every event of any
/// property test.
pub fn audit_engines(
    seed: u64,
    now: SimTime,
    engines: &[ServerEngine],
) -> Result<(), Box<Divergence>> {
    for e in engines {
        let sid = Some(e.id());
        let mut committed = 0.0;
        let mut total_rate = 0.0;
        for s in e.streams() {
            committed += s.view_rate;
            total_rate += s.rate();
            if !s.is_paused() && !s.is_finished() && s.rate() < s.view_rate - ORACLE_TOL_MBPS {
                diverge!(
                    seed,
                    now,
                    Some(s.id),
                    sid,
                    DivergenceKind::MinFlow,
                    "rate {} below view rate {}",
                    s.rate(),
                    s.view_rate
                );
            }
            let staged = s.staged_mb(now.max(e.clock()));
            if staged < -ORACLE_TOL_MB {
                diverge!(
                    seed,
                    now,
                    Some(s.id),
                    sid,
                    DivergenceKind::StagedMb,
                    "negative staging occupancy {staged}"
                );
            }
            if !s.client.is_unbounded_staging()
                && staged > s.client.staging_capacity_mb + s.view_rate * 1e-6 + ORACLE_TOL_MB
            {
                diverge!(
                    seed,
                    now,
                    Some(s.id),
                    sid,
                    DivergenceKind::StagedMb,
                    "staging overflow: {staged} > cap {}",
                    s.client.staging_capacity_mb
                );
            }
        }
        let n = e.streams().len() as f64;
        if (committed - e.committed_mbps()).abs() > ORACLE_TOL_MBPS * (1.0 + n) {
            diverge!(
                seed,
                now,
                None,
                sid,
                DivergenceKind::CommittedMbps,
                "ledger {} vs stream sum {committed}",
                e.committed_mbps()
            );
        }
        if total_rate > e.capacity_mbps() + ORACLE_TOL_MBPS * (1.0 + n) {
            diverge!(
                seed,
                now,
                None,
                sid,
                DivergenceKind::Capacity,
                "allocated {total_rate} exceeds capacity {}",
                e.capacity_mbps()
            );
        }
        if !e.is_online() && !e.streams().is_empty() {
            diverge!(
                seed,
                now,
                None,
                sid,
                DivergenceKind::StreamSet,
                "offline server holds {} streams",
                e.streams().len()
            );
        }
    }
    Ok(())
}

pub(crate) fn cross_check(
    seed: u64,
    now: SimTime,
    engines: &[ServerEngine],
    reference: &RefCluster,
) -> Result<(), Box<Divergence>> {
    audit_engines(seed, now, engines)?;

    let live: usize = engines.iter().map(|e| e.streams().len()).sum();
    if live != reference.streams.len() {
        diverge!(
            seed,
            now,
            None,
            None,
            DivergenceKind::StreamSet,
            "engines hold {live} streams, reference holds {}",
            reference.streams.len()
        );
    }

    for (idx, e) in engines.iter().enumerate() {
        let sid = Some(e.id());
        if (reference.capacity[idx] - e.capacity_mbps()).abs() > ORACLE_TOL_MBPS {
            diverge!(
                seed,
                now,
                None,
                sid,
                DivergenceKind::Capacity,
                "capacity {} vs reference {}",
                e.capacity_mbps(),
                reference.capacity[idx]
            );
        }
        if reference.online[idx] != e.is_online() {
            diverge!(
                seed,
                now,
                None,
                sid,
                DivergenceKind::StreamSet,
                "online={} but reference says {}",
                e.is_online(),
                reference.online[idx]
            );
        }
        let ref_committed = reference.committed_mbps(idx);
        let n = e.streams().len() as f64;
        if (ref_committed - e.committed_mbps()).abs() > ORACLE_TOL_MBPS * (1.0 + n) {
            diverge!(
                seed,
                now,
                None,
                sid,
                DivergenceKind::CommittedMbps,
                "committed {} vs reference {ref_committed}",
                e.committed_mbps()
            );
        }
        for s in e.streams() {
            let Some(r) = reference.find(s.id).map(|i| &reference.streams[i]) else {
                diverge!(
                    seed,
                    now,
                    Some(s.id),
                    sid,
                    DivergenceKind::StreamSet,
                    "stream unknown to the reference"
                );
            };
            if r.server != idx {
                diverge!(
                    seed,
                    now,
                    Some(s.id),
                    sid,
                    DivergenceKind::StreamSet,
                    "reference places it on server {}",
                    r.server
                );
            }
            if (r.sent_mb - s.sent_mb()).abs() > ORACLE_TOL_MB {
                diverge!(
                    seed,
                    now,
                    Some(s.id),
                    sid,
                    DivergenceKind::SentMb,
                    "sent {} vs reference {} (Δ={:+.3e})",
                    s.sent_mb(),
                    r.sent_mb,
                    s.sent_mb() - r.sent_mb
                );
            }
            if (r.rate - s.rate()).abs() > ORACLE_TOL_MBPS {
                diverge!(
                    seed,
                    now,
                    Some(s.id),
                    sid,
                    DivergenceKind::Rate,
                    "rate {} vs reference {} (Δ={:+.3e})",
                    s.rate(),
                    r.rate,
                    s.rate() - r.rate
                );
            }
            let staged = s.staged_mb(now.max(e.clock()));
            if (r.staged_mb() - staged).abs() > ORACLE_TOL_MB {
                diverge!(
                    seed,
                    now,
                    Some(s.id),
                    sid,
                    DivergenceKind::StagedMb,
                    "staged {} vs reference {}",
                    staged,
                    r.staged_mb()
                );
            }
        }
    }

    let transmitted: f64 = engines.iter().map(|e| e.transmitted_mb()).sum();
    let ledger = reference.total_sent_mb();
    if (transmitted - ledger).abs() > ORACLE_TOL_MB {
        diverge!(
            seed,
            now,
            None,
            None,
            DivergenceKind::Conservation,
            "cluster transmitted {transmitted} vs reference ledger {ledger} (Δ={:+.3e})",
            transmitted - ledger
        );
    }
    Ok(())
}
