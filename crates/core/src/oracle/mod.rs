//! Differential reference simulator and invariant auditor.
//!
//! The production [`crate::simulation::Simulation`] is *event-driven*:
//! engines integrate piecewise-linear stream state exactly between
//! predicted events, and a generation counter filters stale wakes. That
//! machinery is efficient but subtle — an allocator bug, a mis-predicted
//! wake, or a commitment-ledger drift silently corrupts results without
//! tripping any single assertion.
//!
//! This module provides the classic antidote (see ns-2/ns-3 validation
//! practice): a **deliberately simple reference simulator** that replays
//! the same trace with an independently written allocator and an
//! independent integrator, plus an **invariant auditor** that
//! cross-checks the two at every event boundary:
//!
//! * per-stream `sent_mb`, allocated rate, staging-buffer occupancy;
//! * per-server `committed_mbps` and capacity;
//! * global data conservation (Σ transmitted == Σ reference deltas);
//! * the minimum-flow guarantee (every unpaused stream ≥ `b_view`);
//! * admission legality (a `Direct` must come from the eligible holder
//!   set; a rejection implies that set was empty);
//! * replication-copy traces: a cluster-sourced copy is mirrored as a
//!   reference stream at the copy rate, and its `CopyDone` must install
//!   the replica that later admissions are checked against;
//! * waitlist service: rejected viewers queue with bounded patience and
//!   re-enter as fresh streams after departures, on a legal holder —
//!   optionally through the full admission path (migrations and chains
//!   performed on a waiter's behalf are mirrored too);
//! * two-step migration chains ([`Admission::WithChain`]): both hops are
//!   checked against the deterministic plan the controller's depth-2
//!   search must have found on the pre-admission state.
//!
//! Between trace events every per-stream rate is constant, so sent and
//! played volumes are piecewise linear in time. The default
//! [`RefStepper::Exact`] integrator exploits that: one closed-form slice
//! per event boundary, sub-sliced at stream-finish and playout-end
//! crossings found by solving the linear crossing time (see
//! [`exact_slice`]). Replay cost is therefore O(#events), independent of
//! simulated duration — hours-long drains cost a handful of slices. The
//! original fixed-Δt integrator survives as [`RefStepper::Naive`] (and as
//! the default under the `naive-stepper` feature) purely as a spot-check;
//! the clamped per-slice updates are exact for any Δt, so the two must
//! agree to float rounding, which the agreement tests assert.
//!
//! The first divergence aborts the replay and is reported with a
//! replayable **(seed, time, stream)** triple, so
//! `OracleScenario::generate(seed)` reproduces the failure exactly.
//! [`shrink_divergence`] then delta-debugs the scenario's trace to a
//! locally minimal reproduction, which is what the scenario fuzzer
//! reports on failure.
//!
//! Only compiled with the `differential` feature (which also unlocks the
//! introspection hooks in `sct-transmission` / `sct-admission`).

mod legality;
mod mirror;
mod scenario;
mod stepper;

pub use legality::{audit_engines, Divergence, DivergenceKind};
pub use scenario::{shrink_divergence, shrink_trace, OracleScenario, TraceOp};
pub use stepper::{
    default_stepper, exact_slice, RefStepper, SliceState, EPS_SECS, ORACLE_DT_SECS, ORACLE_TOL_MB,
    ORACLE_TOL_MBPS,
};

use legality::{cross_check, diverge};
use mirror::{mirror_relocation, RefCluster, RefStream};

use sct_admission::{
    Admission, AssignmentPolicy, Controller, CopyLaunch, CopySource, EvacuationPolicy,
    ReplicationManager, Waitlist,
};
use sct_cluster::{ClusterSpec, ReplicaMap, ServerId};
use sct_media::ClientProfile;
use sct_simcore::{Rng, SimTime};
use sct_transmission::{ServerEngine, Stream, StreamId, EPS_MB};

// ---------------------------------------------------------------------------
// The differential driver
// ---------------------------------------------------------------------------

/// Counters from a completed divergence-free replay.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OracleOutcome {
    /// Requests in the trace.
    pub arrivals: u64,
    /// Requests placed directly.
    pub accepted_direct: u64,
    /// Requests placed by migrating a victim (single hop).
    pub accepted_via_migration: u64,
    /// Placements that needed a two-step migration chain — arrivals
    /// admitted [`Admission::WithChain`] plus chain-assisted waiter
    /// serves.
    pub accepted_via_chain: u64,
    /// Requests turned away.
    pub rejected: u64,
    /// Streams that finished transmission during the replay (viewer
    /// streams only; finished copies count under `copies_completed`).
    pub completions: u64,
    /// Pause/resume operations that landed on a live stream (no-op
    /// pauses against finished or rejected streams are not counted).
    pub pauses_applied: u64,
    /// Replica copies the manager actually launched.
    pub copies_started: u64,
    /// Copy streams that finished and installed their replica.
    pub copies_completed: u64,
    /// Rejected requests parked on the waitlist.
    pub waitlisted: u64,
    /// Waiters later admitted off the queue (batched viewers included).
    pub waiters_served: u64,
    /// Waiters dropped because their patience ran out.
    pub waiters_expired: u64,
    /// Waiters served only after a migration or chain was performed on
    /// their behalf (chain-2 scenarios route waitlist serving through
    /// the full admission path).
    pub waiters_assisted: u64,
    /// Cross-checks performed (one per event boundary).
    pub checks: u64,
    /// Integration slices the reference performed over the whole replay.
    /// Under [`RefStepper::Exact`] this is O(#events), independent of
    /// simulated duration; under [`RefStepper::Naive`] it grows like
    /// duration / Δt.
    pub ref_slices: u64,
}

/// A deliberately injected allocator fault, for oracle self-tests: from
/// accepted arrival number `at_arrival` onward, the stream admitted by
/// that arrival has its rate silently perturbed by `delta_mbps` after
/// every reallocation, exactly as a systematically buggy allocator would.
/// (A one-shot perturbation can be healed by an immediate reallocation
/// with no observable data drift — correctly nothing to report.) The
/// oracle must localize the corruption.
#[derive(Clone, Copy, Debug)]
pub struct FaultInjection {
    /// Zero-based index of the accepted arrival whose stream to corrupt.
    pub at_arrival: u64,
    /// Rate perturbation in Mb/s, re-applied after each reallocation.
    pub delta_mbps: f64,
}

/// Replays `scenario` through the event-driven engines + controller while
/// the reference integrates alongside, cross-checking at every event
/// boundary. Returns the first [`Divergence`] found, or the replay
/// counters if the two simulators agree throughout. Integrates with
/// [`default_stepper`].
pub fn run_differential(scenario: &OracleScenario) -> Result<OracleOutcome, Box<Divergence>> {
    run_differential_full(scenario, None, default_stepper())
}

/// [`run_differential`] with an optional injected allocator fault.
pub fn run_differential_with_fault(
    scenario: &OracleScenario,
    fault: Option<FaultInjection>,
) -> Result<OracleOutcome, Box<Divergence>> {
    run_differential_full(scenario, fault, default_stepper())
}

/// [`run_differential`] under an explicit reference stepper, for
/// exact-vs-naive agreement tests and the stepper bench.
pub fn run_differential_with_stepper(
    scenario: &OracleScenario,
    stepper: RefStepper,
) -> Result<OracleOutcome, Box<Divergence>> {
    run_differential_full(scenario, None, stepper)
}

fn run_differential_full(
    scenario: &OracleScenario,
    fault: Option<FaultInjection>,
    stepper: RefStepper,
) -> Result<OracleOutcome, Box<Divergence>> {
    let seed = scenario.seed;
    let view = scenario.view_rate;
    let capacity = scenario.slots_per_server as f64 * view;
    if let Some(spec) = &scenario.replication {
        assert_eq!(
            spec.source,
            CopySource::Cluster,
            "the oracle only mirrors cluster-sourced copies (tertiary \
             transfers consume no engine bandwidth to cross-check)"
        );
    }
    let mut engines: Vec<ServerEngine> = (0..scenario.n_servers as u16)
        .map(|i| ServerEngine::new(ServerId(i), capacity, scenario.scheduler))
        .collect();
    let mut map = ReplicaMap::from_holders(scenario.n_servers, scenario.holders.clone());
    // Only the disk ledger matters to replication targeting; make it a
    // non-constraint so target choice stays purely load-driven.
    let cluster_spec = ClusterSpec::homogeneous(scenario.n_servers, capacity, 1_000.0);
    let mut controller =
        Controller::new(AssignmentPolicy::LeastLoaded, scenario.migration_policy());
    controller.evacuation = EvacuationPolicy {
        best_effort_restart: scenario.restart_on,
    };
    let mut replication = scenario.replication.map(ReplicationManager::new);
    let mut waitlist = scenario.waitlist.map(Waitlist::new);
    let mut rng = Rng::new(seed).fork(0xD1FF);
    let mut reference = RefCluster::new(scenario.n_servers, capacity, scenario.scheduler, stepper);
    // Chain-2 scenarios serve the waitlist through the full admission
    // path (direct → migration → chain); otherwise serving is
    // direct-placement only, as in the production simulation.
    let assisted_serving = scenario.chain2_on;
    let mut out = OracleOutcome::default();
    let mut accepted_seen: u64 = 0;
    let mut next_id: u64 = 0;
    // Copy streams live in their own id space so viewer stream ids keep
    // equalling arrival indices (which pause targets rely on).
    let mut copy_next_id: u64 = 1 << 32;
    // Armed once the faulty arrival is admitted: (stream, perturbation).
    let mut corruption: Option<(StreamId, f64)> = None;

    // Serve the wait queue after a slot may have freed: expire the
    // impatient first (`try_serve` asserts the queue holds no stale
    // waiters), admit in FIFO order, and mirror every non-batched serve
    // as a fresh reference stream — its parameters read back from the
    // engine, so the mirror observes rather than re-derives.
    macro_rules! serve_waitlist {
        ($now:expr) => {
            if let Some(wl) = waitlist.as_mut() {
                out.waiters_expired += wl.expire($now) as u64;
                let serve = if assisted_serving {
                    wl.try_serve_admitting(&mut controller, &mut engines, &map, $now, &mut rng)
                } else {
                    wl.try_serve(&mut engines, &map, $now)
                };
                // Migrations / chains performed on a waiter's behalf move
                // victims before the waiter's own stream appears; mirror
                // them first so the placement checks below see the
                // post-assist reference layout.
                for (wid, assist) in &serve.assists {
                    out.waiters_assisted += 1;
                    match assist {
                        Admission::WithMigration { server, victim, to } => {
                            mirror_relocation(
                                seed,
                                $now,
                                &mut reference,
                                &map,
                                *victim,
                                *server,
                                *to,
                            )?;
                        }
                        Admission::WithChain {
                            server,
                            first,
                            second,
                        } => {
                            out.accepted_via_chain += 1;
                            mirror_relocation(
                                seed,
                                $now,
                                &mut reference,
                                &map,
                                second.0,
                                first.1,
                                second.1,
                            )?;
                            mirror_relocation(
                                seed,
                                $now,
                                &mut reference,
                                &map,
                                first.0,
                                *server,
                                first.1,
                            )?;
                        }
                        _ => diverge!(
                            seed,
                            $now,
                            Some(*wid),
                            None,
                            DivergenceKind::Admission,
                            "direct or rejected serve reported as an assist"
                        ),
                    }
                }
                for w in &serve.served {
                    out.waiters_served += 1;
                    if !map.holds(w.server, w.video) {
                        diverge!(
                            seed,
                            $now,
                            Some(w.id),
                            Some(w.server),
                            DivergenceKind::Admission,
                            "waiter served by a non-holder of its video"
                        );
                    }
                    if !w.batched {
                        let Some(s) = engines[w.server.index()]
                            .streams()
                            .iter()
                            .find(|s| s.id == w.id)
                        else {
                            diverge!(
                                seed,
                                $now,
                                Some(w.id),
                                Some(w.server),
                                DivergenceKind::StreamSet,
                                "served waiter missing from its engine"
                            );
                        };
                        reference.streams.push(RefStream {
                            id: w.id,
                            video: w.video,
                            server: w.server.index(),
                            size_mb: s.size_mb,
                            view_rate: s.view_rate,
                            sent_mb: 0.0,
                            played_secs: 0.0,
                            sent_comp: 0.0,
                            played_comp: 0.0,
                            rate: 0.0,
                            paused: false,
                            client: s.client,
                        });
                    }
                }
                for sid in &serve.touched {
                    let e = &mut engines[sid.index()];
                    e.advance_to($now);
                    e.reschedule($now);
                    reference.reallocate(sid.index());
                }
            }
        };
    }

    // Drain engine events (completions / buffer-full reallocations) up to
    // `horizon`, keeping the reference in lock-step.
    macro_rules! drain_until {
        ($horizon:expr) => {
            loop {
                let next = engines
                    .iter()
                    .filter_map(|e| e.next_event_after(e.clock()).map(|(w, _)| (w, e.id())))
                    .min_by(|a, b| a.0.cmp(&b.0));
                match next {
                    Some((when, id)) if when <= $horizon => {
                        reference.integrate_to(when);
                        // `when` is the minimum next event over ALL engines,
                        // so advancing every engine to it crosses no event;
                        // the cross-check below needs them all at `when`.
                        for e in engines.iter_mut() {
                            e.advance_to(when);
                        }
                        let e = &mut engines[id.index()];
                        let mut reaped = false;
                        for done in e.reap_finished(when) {
                            reaped = true;
                            if done.is_copy() {
                                // CopyDone: the replica must be known to
                                // the manager and lands in the shared map,
                                // widening later admission candidate sets.
                                out.copies_completed += 1;
                                let known = replication
                                    .as_mut()
                                    .and_then(|m| m.on_copy_finished(done.id, &mut map));
                                if known.is_none() {
                                    diverge!(
                                        seed,
                                        when,
                                        Some(done.id),
                                        Some(id),
                                        DivergenceKind::StreamSet,
                                        "finished copy unknown to the replication manager"
                                    );
                                }
                            } else {
                                out.completions += 1;
                            }
                            match reference.remove(done.id) {
                                Some(r) if r.remaining_mb() <= ORACLE_TOL_MB + EPS_MB => {}
                                Some(r) => diverge!(
                                    seed,
                                    when,
                                    Some(done.id),
                                    Some(id),
                                    DivergenceKind::SentMb,
                                    "engine finished it, reference still owes {} Mb",
                                    r.remaining_mb()
                                ),
                                None => diverge!(
                                    seed,
                                    when,
                                    Some(done.id),
                                    Some(id),
                                    DivergenceKind::StreamSet,
                                    "finished stream unknown to the reference"
                                ),
                            }
                        }
                        e.reschedule(when);
                        reference.reallocate(id.index());
                        if reaped {
                            // A departure freed capacity somewhere.
                            serve_waitlist!(when);
                        }
                        if let Some((sid, delta)) = corruption {
                            for e in engines.iter_mut() {
                                e.inject_rate_error(sid, delta);
                            }
                        }
                        out.checks += 1;
                        cross_check(seed, when, &engines, &reference)?;
                    }
                    _ => break,
                }
            }
        };
    }

    let trace = scenario.trace.clone();
    for (when, op) in &trace {
        let now = *when;
        drain_until!(now);
        reference.integrate_to(now);
        // The drain guarantees no engine event remains before `now`.
        for e in engines.iter_mut() {
            e.advance_to(now);
        }
        match op {
            TraceOp::Arrival { video, size_mb } => {
                out.arrivals += 1;
                let id = StreamId(next_id);
                next_id += 1;
                let stream = Stream::new(id, *video, *size_mb, view, scenario.client, now);
                let candidates = controller.direct_candidates(*video, view, &engines, &map);
                let expected_direct = candidates
                    .iter()
                    .copied()
                    .min_by_key(|s| (engines[s.index()].active_count(), *s));
                // The deterministic depth-2 plan on the pre-admission
                // state: a `WithChain` outcome must equal it exactly,
                // and a rejection under a chain-2 policy implies none
                // existed.
                let expected_chain = if scenario.migration_on && scenario.chain2_on {
                    controller.chain2_plan(*video, &engines, &map, now)
                } else {
                    None
                };
                let (admission, touched) =
                    controller.admit(stream, &mut engines, &map, now, &mut rng);
                match admission {
                    Admission::Direct { server } => {
                        out.accepted_direct += 1;
                        if expected_direct != Some(server) {
                            diverge!(
                                seed,
                                now,
                                Some(id),
                                Some(server),
                                DivergenceKind::Admission,
                                "direct to {server}, least-loaded eligible was {expected_direct:?}"
                            );
                        }
                        reference.streams.push(RefStream {
                            id,
                            video: *video,
                            server: server.index(),
                            size_mb: *size_mb,
                            view_rate: view,
                            sent_mb: 0.0,
                            played_secs: 0.0,
                            sent_comp: 0.0,
                            played_comp: 0.0,
                            rate: 0.0,
                            paused: false,
                            client: scenario.client,
                        });
                    }
                    Admission::WithMigration { server, victim, to } => {
                        out.accepted_via_migration += 1;
                        if !scenario.migration_on {
                            diverge!(
                                seed,
                                now,
                                Some(id),
                                Some(server),
                                DivergenceKind::Admission,
                                "migration fired while disabled"
                            );
                        }
                        if expected_direct.is_some() {
                            diverge!(
                                seed,
                                now,
                                Some(id),
                                Some(server),
                                DivergenceKind::Admission,
                                "migrated although a direct slot existed on {expected_direct:?}"
                            );
                        }
                        mirror_relocation(seed, now, &mut reference, &map, victim, server, to)?;
                        reference.streams.push(RefStream {
                            id,
                            video: *video,
                            server: server.index(),
                            size_mb: *size_mb,
                            view_rate: view,
                            sent_mb: 0.0,
                            played_secs: 0.0,
                            sent_comp: 0.0,
                            played_comp: 0.0,
                            rate: 0.0,
                            paused: false,
                            client: scenario.client,
                        });
                    }
                    Admission::WithChain {
                        server,
                        first,
                        second,
                    } => {
                        out.accepted_via_chain += 1;
                        if scenario.migration_policy().max_chain_length < 2 {
                            diverge!(
                                seed,
                                now,
                                Some(id),
                                Some(server),
                                DivergenceKind::Admission,
                                "chain migration under a chain-1 policy"
                            );
                        }
                        if expected_direct.is_some() {
                            diverge!(
                                seed,
                                now,
                                Some(id),
                                Some(server),
                                DivergenceKind::Admission,
                                "chained although a direct slot existed on {expected_direct:?}"
                            );
                        }
                        if expected_chain != Some((server, first, second)) {
                            diverge!(
                                seed,
                                now,
                                Some(id),
                                Some(server),
                                DivergenceKind::Admission,
                                "chain {:?} does not match the deterministic plan {:?}",
                                (server, first, second),
                                expected_chain
                            );
                        }
                        // The controller clears room on `first.1` before
                        // moving the first victim there; mirror the hops
                        // in the same inner-first order so each
                        // relocation's placement checks see a legal
                        // intermediate state.
                        mirror_relocation(
                            seed,
                            now,
                            &mut reference,
                            &map,
                            second.0,
                            first.1,
                            second.1,
                        )?;
                        mirror_relocation(
                            seed,
                            now,
                            &mut reference,
                            &map,
                            first.0,
                            server,
                            first.1,
                        )?;
                        reference.streams.push(RefStream {
                            id,
                            video: *video,
                            server: server.index(),
                            size_mb: *size_mb,
                            view_rate: view,
                            sent_mb: 0.0,
                            played_secs: 0.0,
                            sent_comp: 0.0,
                            played_comp: 0.0,
                            rate: 0.0,
                            paused: false,
                            client: scenario.client,
                        });
                    }
                    Admission::Rejected => {
                        out.rejected += 1;
                        if let Some(s) = expected_direct {
                            diverge!(
                                seed,
                                now,
                                Some(id),
                                Some(s),
                                DivergenceKind::Admission,
                                "rejected although {s} had a free slot"
                            );
                        }
                        if expected_chain.is_some() {
                            diverge!(
                                seed,
                                now,
                                Some(id),
                                None,
                                DivergenceKind::Admission,
                                "rejected although the two-step chain {expected_chain:?} \
                                 was available"
                            );
                        }
                        // A turned-away viewer queues up (bounced when the
                        // queue is full); a later departure re-admits it.
                        if let Some(wl) = waitlist.as_mut() {
                            wl.expire(now);
                            if wl
                                .enqueue(id, *video, *size_mb, view, scenario.client, now)
                                .is_some()
                            {
                                out.waitlisted += 1;
                            }
                        }
                    }
                }
                for sid in &touched {
                    let e = &mut engines[sid.index()];
                    e.advance_to(now);
                    e.reschedule(now);
                    reference.reallocate(sid.index());
                }
                if let Some((sid, delta)) = corruption {
                    for e in engines.iter_mut() {
                        e.inject_rate_error(sid, delta);
                    }
                }
                out.checks += 1;
                cross_check(seed, now, &engines, &reference)?;
                if admission.accepted() {
                    if let Some(f) = fault {
                        if accepted_seen == f.at_arrival {
                            // Corrupt the newly admitted stream's rate —
                            // invisible to the reference, so the oracle
                            // must flag it at the next event boundary.
                            corruption = Some((id, f.delta_mbps));
                            for e in engines.iter_mut() {
                                e.inject_rate_error(id, f.delta_mbps);
                            }
                        }
                    }
                    accepted_seen += 1;
                }
            }
            TraceOp::Fail(server) => {
                let taken = engines[server.index()].fail(now);
                let taken_ids: Vec<StreamId> = taken.iter().map(|s| s.id).collect();
                let evac = controller.evacuate(taken, *server, &mut engines, &map, now);
                let touched = evac.touched;
                reference.online[server.index()] = false;
                // Mirror each victim's fate by observing where it landed.
                for vid in taken_ids {
                    let landed = engines
                        .iter()
                        .position(|e| e.streams().iter().any(|s| s.id == vid));
                    let restarted = evac.restarted.iter().any(|&(id, _)| id == vid);
                    match landed {
                        Some(target) => {
                            if restarted {
                                if !scenario.restart_on {
                                    diverge!(
                                        seed,
                                        now,
                                        Some(vid),
                                        Some(*server),
                                        DivergenceKind::Admission,
                                        "evacuation restarted a stream with the \
                                         best-effort policy off"
                                    );
                                }
                            } else if !scenario.migration_on {
                                diverge!(
                                    seed,
                                    now,
                                    Some(vid),
                                    Some(*server),
                                    DivergenceKind::Admission,
                                    "evacuation relocated a stream with migration off"
                                );
                            }
                            let Some(vi) = reference.find(vid) else {
                                diverge!(
                                    seed,
                                    now,
                                    Some(vid),
                                    Some(*server),
                                    DivergenceKind::StreamSet,
                                    "evacuated stream unknown to the reference"
                                );
                            };
                            if restarted {
                                // Best-effort restart: the client rewinds
                                // to its playback point, so the staged
                                // workahead leaves the live stream and is
                                // retransmitted by the new server. The
                                // flushed megabits stay in the conservation
                                // ledger — the dead server really did send
                                // them.
                                let r = &mut reference.streams[vi];
                                let viewed = r.played_secs * r.view_rate;
                                let flushed = (r.sent_mb - viewed).max(0.0);
                                reference.retired_mb += flushed;
                                r.sent_mb = viewed;
                                r.sent_comp = 0.0;
                                r.server = target;
                            } else {
                                reference.streams[vi].server = target;
                            }
                        }
                        None => {
                            // Dropped (or it had just finished): the viewer
                            // is gone either way.
                            reference.remove(vid);
                        }
                    }
                }
                for sid in &touched {
                    let e = &mut engines[sid.index()];
                    e.advance_to(now);
                    e.reschedule(now);
                    reference.reallocate(sid.index());
                }
                out.checks += 1;
                cross_check(seed, now, &engines, &reference)?;
            }
            TraceOp::Repair(server) => {
                engines[server.index()].repair(now);
                reference.online[server.index()] = true;
                // The repaired server came back empty — room for waiters.
                serve_waitlist!(now);
                if let Some((sid, delta)) = corruption {
                    for e in engines.iter_mut() {
                        e.inject_rate_error(sid, delta);
                    }
                }
                out.checks += 1;
                cross_check(seed, now, &engines, &reference)?;
            }
            TraceOp::StartCopy { video, size_mb } => {
                let launch = replication.as_mut().and_then(|m| {
                    m.maybe_replicate(
                        *video,
                        *size_mb,
                        &mut copy_next_id,
                        &mut engines,
                        &map,
                        &cluster_spec,
                        now,
                    )
                });
                match launch {
                    Some(CopyLaunch::FromServer { source, stream }) => {
                        out.copies_started += 1;
                        if !map.holds(source, *video) {
                            diverge!(
                                seed,
                                now,
                                Some(stream),
                                Some(source),
                                DivergenceKind::Admission,
                                "copy sourced from a non-holder of its video"
                            );
                        }
                        // Mirror the copy as a reference stream at the
                        // copy rate: unbounded staging, receive cap equal
                        // to the copy rate, so it rides the minimum flow
                        // with no workahead — exactly the engine's
                        // replica-copy semantics.
                        let copy_rate = scenario
                            .replication
                            .expect("launch implies a replication spec")
                            .copy_rate_mbps;
                        reference.streams.push(RefStream {
                            id: stream,
                            video: *video,
                            server: source.index(),
                            size_mb: *size_mb,
                            view_rate: copy_rate,
                            sent_mb: 0.0,
                            played_secs: 0.0,
                            sent_comp: 0.0,
                            played_comp: 0.0,
                            rate: 0.0,
                            paused: false,
                            client: ClientProfile::new(f64::INFINITY, copy_rate),
                        });
                        let e = &mut engines[source.index()];
                        e.reschedule(now);
                        reference.reallocate(source.index());
                    }
                    Some(CopyLaunch::FromTertiary { .. }) => {
                        unreachable!("cluster-sourced spec asserted above")
                    }
                    // Declined (cap, cooldown, no target, or no source
                    // with spare copy bandwidth) or replication disabled.
                    None => {}
                }
                if let Some((sid, delta)) = corruption {
                    for e in engines.iter_mut() {
                        e.inject_rate_error(sid, delta);
                    }
                }
                out.checks += 1;
                cross_check(seed, now, &engines, &reference)?;
            }
            TraceOp::Pause(stream) | TraceOp::Resume(stream) => {
                let paused = matches!(op, TraceOp::Pause(_));
                let sid = *stream;
                let mut engine_loc = None;
                for e in engines.iter_mut() {
                    if e.set_paused(sid, paused, now) {
                        engine_loc = Some(e.id());
                        break;
                    }
                }
                match (engine_loc, reference.find(sid)) {
                    (Some(server), Some(ri)) => {
                        if reference.streams[ri].server != server.index() {
                            diverge!(
                                seed,
                                now,
                                Some(sid),
                                Some(server),
                                DivergenceKind::StreamSet,
                                "paused stream lives on server {} per the reference",
                                reference.streams[ri].server
                            );
                        }
                        reference.streams[ri].paused = paused;
                        engines[server.index()].reschedule(now);
                        reference.reallocate(server.index());
                        out.pauses_applied += 1;
                    }
                    // Finished, dropped, or never admitted: nothing to do
                    // on either side.
                    (None, None) => {}
                    (Some(server), None) => diverge!(
                        seed,
                        now,
                        Some(sid),
                        Some(server),
                        DivergenceKind::StreamSet,
                        "engine holds a stream unknown to the reference"
                    ),
                    (None, Some(_)) => diverge!(
                        seed,
                        now,
                        Some(sid),
                        None,
                        DivergenceKind::StreamSet,
                        "reference holds a stream the engines lost"
                    ),
                }
                out.checks += 1;
                cross_check(seed, now, &engines, &reference)?;
            }
        }
    }

    // Let every remaining stream run to completion.
    let far = trace.last().map(|(t, _)| *t).unwrap_or(SimTime::ZERO) + 1.0e7;
    drain_until!(far);
    out.ref_slices = reference.slices;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_scenarios_have_no_divergence() {
        for seed in 0..16 {
            let sc = OracleScenario::generate(seed);
            if let Err(d) = run_differential(&sc) {
                panic!("{d}");
            }
        }
    }

    #[test]
    fn exact_slice_stops_at_the_nearest_crossing() {
        let streams = [
            SliceState {
                rate: 3.0,
                remaining_mb: 9.0,
                paused: false,
                play_left_secs: 10.0,
            },
            // Paused with nothing to send: contributes no crossing.
            SliceState {
                rate: 0.0,
                remaining_mb: 5.0,
                paused: true,
                play_left_secs: 2.0,
            },
            SliceState {
                rate: 6.0,
                remaining_mb: 1.5,
                paused: false,
                play_left_secs: 0.5,
            },
        ];
        // Nearest boundary: stream 2 finishes transmitting at 0.25 s.
        assert_eq!(exact_slice(100.0, &streams), 0.25);
        // Never steps past the event horizon.
        assert_eq!(exact_slice(0.1, &streams), 0.1);
        // No streams: one slice to the horizon.
        assert_eq!(exact_slice(100.0, &[]), 100.0);
        // Sub-epsilon residues are treated as already crossed.
        let residue = [SliceState {
            rate: 3.0,
            remaining_mb: EPS_MB / 2.0,
            paused: false,
            play_left_secs: EPS_SECS / 2.0,
        }];
        assert_eq!(exact_slice(7.0, &residue), 7.0);
    }

    #[test]
    fn exact_and_naive_steppers_agree() {
        // Seeds ≥ 64 skip the long-drain tail, keeping the naive replay
        // affordable at Δt = 10 ms. 68 has migration + chain-2 armed.
        for seed in [64, 68, 81] {
            let sc = OracleScenario::generate(seed);
            let exact = run_differential_with_stepper(&sc, RefStepper::Exact)
                .unwrap_or_else(|d| panic!("exact: {d}"));
            let naive = run_differential_with_stepper(
                &sc,
                RefStepper::Naive {
                    dt_secs: ORACLE_DT_SECS,
                },
            )
            .unwrap_or_else(|d| panic!("naive: {d}"));
            // Everything except the slice count must match exactly: both
            // steppers apply identical closed-form updates, only sliced
            // differently.
            let mut naive_counters = naive;
            naive_counters.ref_slices = exact.ref_slices;
            assert_eq!(exact, naive_counters, "seed {seed}");
            assert!(
                exact.ref_slices < naive.ref_slices,
                "seed {seed}: exact took {} slices, naive {}",
                exact.ref_slices,
                naive.ref_slices
            );
        }
    }

    #[test]
    fn chain2_scenarios_exercise_chains() {
        // Seeds 0..32 form the chain-armed block: every migration-on
        // seed in it generates the ring topology plus pressure wave.
        let mut chained = 0;
        for seed in 0..32 {
            let sc = OracleScenario::generate(seed);
            if !sc.chain2_on {
                continue;
            }
            let out = run_differential(&sc).unwrap_or_else(|d| panic!("{d}"));
            chained += out.accepted_via_chain;
        }
        assert!(chained > 0, "no chain-2 admission across the chain block");
    }

    #[test]
    fn shrinker_reduces_an_injected_divergence() {
        let sc = OracleScenario::generate(0);
        let fault = FaultInjection {
            at_arrival: 0,
            delta_mbps: 1.5,
        };
        let (min, d) = shrink_trace(&sc, |s| run_differential_with_fault(s, Some(fault)).err())
            .expect("an injected fault must diverge");
        assert!(min.trace.len() < sc.trace.len(), "nothing was shrunk");
        assert!(
            min.trace.len() <= 3,
            "expected a near-minimal trace, got {} ops",
            min.trace.len()
        );
        // The shrunken scenario replays to the reported divergence.
        let replay = run_differential_with_fault(&min, Some(fault))
            .expect_err("shrunken scenario must still diverge");
        assert_eq!(replay.seed, d.seed);
        assert_eq!(replay.time, d.time);
        assert_eq!(replay.kind, d.kind);
    }

    #[test]
    fn shrinker_returns_none_on_clean_scenarios() {
        let sc = OracleScenario::generate(1);
        assert!(shrink_divergence(&sc).is_none());
    }

    #[test]
    fn injected_fault_is_localized() {
        let sc = OracleScenario::generate(0);
        let fault = FaultInjection {
            at_arrival: 0,
            delta_mbps: 1.5,
        };
        let d = run_differential_with_fault(&sc, Some(fault))
            .expect_err("a corrupted rate must diverge");
        assert_eq!(d.seed, sc.seed);
        assert!(d.stream.is_some(), "report must name the stream: {d}");
        assert!(
            matches!(
                d.kind,
                DivergenceKind::Rate
                    | DivergenceKind::SentMb
                    | DivergenceKind::Capacity
                    | DivergenceKind::Conservation
            ),
            "unexpected kind: {d}"
        );
    }
}
