//! Replayable scenarios: the trace operation vocabulary, the seeded
//! scenario generator, and divergence shrinking (delta-debugging a
//! failing trace to a locally minimal reproduction).

use sct_admission::{CopySource, MigrationPolicy, ReplicationSpec, WaitlistSpec};
use sct_cluster::ServerId;
use sct_media::{ClientProfile, VideoId};
use sct_simcore::{Rng, SimTime};
use sct_transmission::{SchedulerKind, StreamId};

use super::legality::Divergence;
use super::run_differential;

// ---------------------------------------------------------------------------
// Scenarios
// ---------------------------------------------------------------------------

/// One operation of a replayable trace.
#[derive(Clone, Debug)]
pub enum TraceOp {
    /// A viewer requests `video` (`size_mb` megabits at the view rate).
    Arrival {
        /// Requested video.
        video: VideoId,
        /// Clip size in megabits.
        size_mb: f64,
    },
    /// A server crashes; the controller evacuates what it can.
    Fail(ServerId),
    /// A failed server comes back online, empty.
    Repair(ServerId),
    /// The viewer of the stream admitted by arrival number `.0` pauses
    /// playback (stream ids equal arrival indices). Pausing a stream that
    /// finished, was dropped, or was never admitted is a client-side no-op.
    Pause(StreamId),
    /// The same viewer resumes playback.
    Resume(StreamId),
    /// Directs the replication manager to attempt a cluster-sourced copy
    /// of `video` (`size_mb` megabits). A launch admits a real copy
    /// stream into the source engine, which the reference mirrors at the
    /// copy rate; `CopyDone` is observed via the engine reap path and
    /// must install the replica in the shared map. A no-op when the
    /// manager declines (no eligible target/source, cap, or cooldown) or
    /// when the scenario has no replication spec.
    StartCopy {
        /// Video to replicate.
        video: VideoId,
        /// Object size in megabits.
        size_mb: f64,
    },
}

/// A self-contained random scenario: cluster shape, policies, and a
/// timed trace. Fully determined by the seed passed to
/// [`OracleScenario::generate`].
#[derive(Clone, Debug)]
pub struct OracleScenario {
    /// The generating seed (echoed in divergence reports).
    pub seed: u64,
    /// Number of data servers.
    pub n_servers: usize,
    /// Minimum-flow slots per server (capacity = slots × view rate).
    pub slots_per_server: usize,
    /// View bandwidth `b_view` in Mb/s.
    pub view_rate: f64,
    /// Spare-bandwidth policy under test.
    pub scheduler: SchedulerKind,
    /// Whether dynamic request migration is enabled.
    pub migration_on: bool,
    /// Whether two-step migration chains are enabled (implies
    /// `migration_on`; the policy becomes [`MigrationPolicy::chain2`] and
    /// the waitlist, if any, serves through the full admission path).
    pub chain2_on: bool,
    /// Whether evacuation restarts streams that cannot hand off
    /// seamlessly (best-effort policy). Seed bit 7, *inverted*: off for
    /// every seed below 128, so the strict paper-faithful policy remains
    /// the default across the historical scenario corpus.
    pub restart_on: bool,
    /// Client staging/receive profile shared by all viewers.
    pub client: ClientProfile,
    /// Holder set per video (index = video id).
    pub holders: Vec<Vec<ServerId>>,
    /// Cluster-sourced dynamic replication, driven by
    /// [`TraceOp::StartCopy`] directives ([`CopySource::Tertiary`] is
    /// rejected — the reference only mirrors copies that consume real
    /// engine bandwidth).
    pub replication: Option<ReplicationSpec>,
    /// Patience-bounded wait queue served after departures and repairs.
    pub waitlist: Option<WaitlistSpec>,
    /// Time-ordered operations.
    pub trace: Vec<(SimTime, TraceOp)>,
}

impl OracleScenario {
    /// Deterministically derives a scenario from `seed`. The scheduler and
    /// migration switch are also seed-derived (`seed % 4` cycles the four
    /// [`SchedulerKind`]s, bit 2 toggles migration), so a contiguous seed
    /// range covers every configuration.
    pub fn generate(seed: u64) -> OracleScenario {
        let mut rng = Rng::new(seed).fork(0x0AC1E);
        Self::generate_inner(seed, &mut rng)
    }

    fn generate_inner(seed: u64, rng: &mut Rng) -> OracleScenario {
        let scheduler = SchedulerKind::ALL[(seed % 4) as usize];
        let migration_on = (seed / 4).is_multiple_of(2);
        // Bits 3 and 4 toggle the replication and waitlist extensions, so
        // a contiguous seed range still covers every combination.
        let replication_on = (seed / 8).is_multiple_of(2);
        let waitlist_on = (seed / 16).is_multiple_of(2);
        // Bit 5 arms two-step chains (meaningful only with migration on,
        // so chain-off seeds keep generating byte-identical scenarios);
        // bit 6 appends an hours-long lone drain the exact stepper must
        // cross in O(1) slices.
        let chain2_on = migration_on && (seed / 32).is_multiple_of(2);
        let long_drain = (seed / 64).is_multiple_of(2);
        // Bit 7 arms the best-effort evacuation restart — inverted so it
        // stays off (paper-faithful) for the whole historical seed range.
        let restart_on = !(seed / 128).is_multiple_of(2);
        let n_servers = if chain2_on {
            // The deterministic chain pressure wave needs three distinct
            // servers (full → full → open).
            rng.range_usize(3, 5)
        } else {
            rng.range_usize(2, 5)
        };
        let slots_per_server = rng.range_usize(3, 7);
        let view_rate = 3.0;
        let n_videos = if chain2_on {
            rng.range_usize(3, 7)
        } else {
            rng.range_usize(2, 7)
        };

        // Client profile: mix bounded, unbounded, and zero staging.
        let client = match rng.below(5) {
            0 => ClientProfile::unbounded(),
            1 => ClientProfile::no_staging(30.0),
            _ => ClientProfile::new(rng.range_f64(30.0, 400.0), 30.0),
        };

        // Non-empty holder set per video. Chain-2 scenarios use a ring
        // instead: video 0 lives only on s0, video v ≥ 1 straddles the
        // edge {s_{(v-1) mod n}, s_{v mod n}} — the topology where a
        // depth-2 chain can free a slot that no single hop can.
        let holders: Vec<Vec<ServerId>> = if chain2_on {
            (0..n_videos)
                .map(|v| {
                    if v == 0 {
                        vec![ServerId(0)]
                    } else {
                        vec![
                            ServerId(((v - 1) % n_servers) as u16),
                            ServerId((v % n_servers) as u16),
                        ]
                    }
                })
                .collect()
        } else {
            (0..n_videos)
                .map(|_| {
                    let k = rng.range_usize(1, n_servers + 1);
                    let mut picked = rng.sample_indices(n_servers, k);
                    picked.sort_unstable();
                    picked.into_iter().map(|i| ServerId(i as u16)).collect()
                })
                .collect()
        };

        // Arrivals with occasional zero gaps (the shrunken regression
        // scenarios showed simultaneous arrivals are where bugs hide).
        let n_arrivals = rng.range_usize(10, 26);
        let mut trace: Vec<(SimTime, TraceOp)> = Vec::with_capacity(n_arrivals + 2);
        let mut t = 0.0f64;
        for _ in 0..n_arrivals {
            if !rng.chance(0.25) {
                t += rng.range_f64(0.0, 30.0);
            }
            let video = VideoId(rng.below(n_videos) as u32);
            let size_mb = if rng.chance(0.2) {
                30.0
            } else {
                rng.range_f64(30.0, 600.0)
            };
            trace.push((SimTime::from_secs(t), TraceOp::Arrival { video, size_mb }));
        }

        // Sometimes a failure + repair lands mid-trace. Skipped when the
        // scenario also replicates: evacuating an in-flight copy stream
        // would strand the manager's bookkeeping on the dead source,
        // which is interplay the reference does not model.
        if !replication_on && rng.chance(0.35) {
            let victim = ServerId(rng.below(n_servers) as u16);
            let t_fail = rng.range_f64(0.0, t.max(1.0));
            let t_repair = t_fail + rng.range_f64(10.0, 200.0);
            trace.push((SimTime::from_secs(t_fail), TraceOp::Fail(victim)));
            trace.push((SimTime::from_secs(t_repair), TraceOp::Repair(victim)));
            trace.sort_by_key(|a| a.0);
        }

        // Sometimes viewers pause and resume mid-trace: the reference's
        // `paused` flag freezes playback while the engines drop the
        // stream's rate to zero, and both must agree on the data volumes
        // either way. Targets are arrival indices; a pause landing before
        // its arrival (or on a rejected request) is a no-op on both sides.
        if rng.chance(0.5) {
            let k = rng.range_usize(1, 4);
            let mut targets = rng.sample_indices(n_arrivals, k);
            targets.sort_unstable();
            for idx in targets {
                let t_pause = rng.range_f64(0.0, t.max(1.0));
                let t_resume = t_pause + rng.range_f64(5.0, 120.0);
                let sid = StreamId(idx as u64);
                trace.push((SimTime::from_secs(t_pause), TraceOp::Pause(sid)));
                trace.push((SimTime::from_secs(t_resume), TraceOp::Resume(sid)));
            }
            // Stable by time, so same-instant ops keep their push order.
            trace.sort_by_key(|a| a.0);
        }

        // Replication scenarios sprinkle copy directives through the
        // trace. The copy rate is two view slots, so a launch needs a
        // holder with real spare capacity — plenty of directives are
        // declined, which exercises the gating paths too.
        let replication = replication_on.then_some(ReplicationSpec {
            copy_rate_mbps: 2.0 * view_rate,
            max_concurrent: 2,
            cooldown_secs: 15.0,
            source: CopySource::Cluster,
        });
        if replication.is_some() {
            let k = rng.range_usize(1, 4);
            for _ in 0..k {
                let video = VideoId(rng.below(n_videos) as u32);
                let size_mb = rng.range_f64(30.0, 240.0);
                let t_copy = rng.range_f64(0.0, t.max(1.0));
                trace.push((
                    SimTime::from_secs(t_copy),
                    TraceOp::StartCopy { video, size_mb },
                ));
            }
            trace.sort_by_key(|a| a.0);
        }

        // Waitlist scenarios park rejected viewers in a patience-bounded
        // queue; departures then re-admit them as fresh streams the
        // reference must pick up mid-replay.
        let waitlist = waitlist_on.then(|| {
            let patience = rng.range_f64(30.0, 240.0);
            if rng.chance(0.3) {
                WaitlistSpec::batching(patience, 8)
            } else {
                WaitlistSpec::new(patience, 8)
            }
        });

        // Chain-2 pressure wave, appended once the random prefix has
        // provably drained (prefix streams last ≤ 200 s plus ≤ 120 s of
        // pause and ≤ 240 s of waitlist patience; repairs land by
        // t + 200). Two video-2 arrivals land one each on s1 and s2 by
        // least-loaded tie-break, then 2·slots − 1 video-1 arrivals fill
        // s0 and s1 exactly, leaving s2 the only server with room. A
        // video-0 chaser then fails direct (s0 full) and single-hop
        // (s1, the only other v1 holder, is full), so admission must
        // chain: the v2 stream on s1 moves to s2, a v1 stream on s0
        // moves into the freed s1 slot, and the chaser lands on s0.
        // Later chasers find no v2 left on s1 and exercise the
        // reject-implies-no-plan check (queueing when a waitlist runs).
        if chain2_on {
            let mut tw = t + 700.0;
            for _ in 0..2 {
                trace.push((
                    SimTime::from_secs(tw),
                    TraceOp::Arrival {
                        video: VideoId(2),
                        size_mb: rng.range_f64(3_000.0, 6_000.0),
                    },
                ));
            }
            for _ in 0..(2 * slots_per_server - 1) {
                trace.push((
                    SimTime::from_secs(tw),
                    TraceOp::Arrival {
                        video: VideoId(1),
                        size_mb: rng.range_f64(3_000.0, 6_000.0),
                    },
                ));
            }
            for _ in 0..rng.range_usize(1, 4) {
                tw += 2.0;
                trace.push((
                    SimTime::from_secs(tw),
                    TraceOp::Arrival {
                        video: VideoId(0),
                        size_mb: rng.range_f64(3_000.0, 6_000.0),
                    },
                ));
            }
            t = tw;
        }

        // Hours-long lone drain: one final viewer whose clip plays for
        // 2-4 simulated hours after everything else has wound down. The
        // exact stepper crosses the whole tail in a handful of slices;
        // the naive spot-check pays duration / Δt.
        if long_drain {
            let t_tail = t + 4_000.0;
            trace.push((
                SimTime::from_secs(t_tail),
                TraceOp::Arrival {
                    video: VideoId(0),
                    size_mb: rng.range_f64(21_600.0, 43_200.0),
                },
            ));
        }

        OracleScenario {
            seed,
            n_servers,
            slots_per_server,
            view_rate,
            scheduler,
            migration_on,
            chain2_on,
            restart_on,
            client,
            holders,
            replication,
            waitlist,
            trace,
        }
    }

    /// The migration policy this scenario runs under.
    pub fn migration_policy(&self) -> MigrationPolicy {
        if self.migration_on {
            let base = if self.chain2_on {
                MigrationPolicy::chain2()
            } else {
                MigrationPolicy::single_hop()
            };
            MigrationPolicy {
                handoff_latency_secs: 0.0,
                ..base
            }
        } else {
            MigrationPolicy::disabled()
        }
    }
}

// ---------------------------------------------------------------------------
// Divergence shrinking
// ---------------------------------------------------------------------------

/// `true` when every [`TraceOp::Fail`] lands on an online server and
/// every [`TraceOp::Repair`] on a failed one — the engines assert on
/// double faults, so trace shrinking must never produce an unpaired op.
fn trace_valid(trace: &[(SimTime, TraceOp)], n_servers: usize) -> bool {
    let mut online = vec![true; n_servers];
    for (_, op) in trace {
        match op {
            TraceOp::Fail(s) => {
                if s.index() >= n_servers || !online[s.index()] {
                    return false;
                }
                online[s.index()] = false;
            }
            TraceOp::Repair(s) => {
                if s.index() >= n_servers || online[s.index()] {
                    return false;
                }
                online[s.index()] = true;
            }
            _ => {}
        }
    }
    true
}

/// Shrinks a diverging scenario's trace while `check` keeps reporting a
/// divergence: first drops every op strictly after the divergence time,
/// then delta-debugs the rest with halving chunk sizes down to single
/// ops, skipping candidates that would unpair a fail/repair. Returns the
/// locally minimal scenario together with its divergence, or `None` when
/// `check` already passes on the input. The surviving divergence may
/// differ in kind or time from the original — any reproducible
/// divergence is an acceptable shrink target.
pub fn shrink_trace<F>(
    scenario: &OracleScenario,
    mut check: F,
) -> Option<(OracleScenario, Box<Divergence>)>
where
    F: FnMut(&OracleScenario) -> Option<Box<Divergence>>,
{
    let mut best = scenario.clone();
    let mut div = check(&best)?;
    // Ops strictly after the divergence time cannot have contributed.
    let cut: Vec<(SimTime, TraceOp)> = best
        .trace
        .iter()
        .filter(|(t, _)| *t <= div.time)
        .cloned()
        .collect();
    if cut.len() < best.trace.len() && trace_valid(&cut, best.n_servers) {
        let mut cand = best.clone();
        cand.trace = cut;
        if let Some(d) = check(&cand) {
            best = cand;
            div = d;
        }
    }
    let mut chunk = best.trace.len().div_ceil(2).max(1);
    loop {
        let mut progressed = false;
        let mut start = 0;
        while start < best.trace.len() {
            let end = (start + chunk).min(best.trace.len());
            let mut cand = best.clone();
            cand.trace.drain(start..end);
            if trace_valid(&cand.trace, cand.n_servers) {
                if let Some(d) = check(&cand) {
                    best = cand;
                    div = d;
                    progressed = true;
                    // The window now frames fresh ops; retry it.
                    continue;
                }
            }
            start = end;
        }
        if chunk > 1 {
            chunk = chunk.div_ceil(2).max(1);
        } else if !progressed {
            break;
        }
    }
    Some((best, div))
}

/// [`shrink_trace`] against the plain differential replay: reduces a
/// diverging scenario to a locally minimal reproduction whose report is
/// the replayable (seed, time, stream) triple to file. `None` when the
/// scenario replays clean.
pub fn shrink_divergence(scenario: &OracleScenario) -> Option<(OracleScenario, Box<Divergence>)> {
    shrink_trace(scenario, |sc| run_differential(sc).err())
}
