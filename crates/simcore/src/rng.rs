//! Self-contained pseudo-random number generation.
//!
//! The reproduction's headline numbers come from Monte-Carlo trials, so we
//! want bit-identical streams regardless of platform, `std` version, or
//! third-party crate upgrades. We therefore implement the generator
//! in-tree:
//!
//! * [`Rng`] — xoshiro256\*\* (Blackman & Vigna, 2018): 256-bit state,
//!   period 2²⁵⁶−1, passes BigCrush, and is a few ns per draw.
//! * Seeding uses SplitMix64, the sequence recommended by the xoshiro
//!   authors, so low-entropy seeds (0, 1, 2, …) still give well-mixed
//!   initial states.
//!
//! [`Rng::fork`] derives independent child streams for parallel trials: the
//! child state is seeded from the parent seed and a stream index through
//! SplitMix64, so trial *i* draws the same numbers whether trials run
//! sequentially or on 32 threads.

/// SplitMix64 step: advances `state` and returns the next output.
///
/// Used for seeding and for deriving child streams; also useful on its own
/// for hashing small integer tuples into seeds.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic xoshiro256\*\* pseudo-random number generator.
///
/// Not cryptographically secure — strictly for simulation.
///
/// ```
/// use sct_simcore::Rng;
/// let mut a = Rng::new(42);
/// let mut b = Rng::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());        // same seed, same stream
/// let mut child = a.fork(7);                      // independent sub-stream
/// assert!(child.next_f64() < 1.0);
/// ```
#[derive(Clone, Debug)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Creates a generator from a 64-bit seed.
    ///
    /// The 256-bit internal state is filled with four SplitMix64 outputs,
    /// so nearby seeds (0, 1, 2, …) produce unrelated streams.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng { s }
    }

    /// Derives an independent child generator for logical stream `stream`.
    ///
    /// Children with distinct stream ids are statistically independent of
    /// each other and of the parent's continued output.
    pub fn fork(&self, stream: u64) -> Rng {
        // Mix the *current* state with the stream id so forks taken at
        // different points of the parent's life differ.
        let mut sm =
            self.s[0] ^ self.s[2].rotate_left(17) ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng { s }
    }

    /// Next raw 64-bit output (xoshiro256\*\* scrambler).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)`, using the top 53 bits of one output.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        // 2^-53 * [0, 2^53): every representable value is equally likely.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[lo, hi)`. Requires `lo <= hi`.
    #[inline]
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(lo <= hi, "range_f64: lo {lo} > hi {hi}");
        lo + (hi - lo) * self.next_f64()
    }

    /// Uniform integer in `[0, n)`. Requires `n > 0`.
    ///
    /// Uses Lemire's multiply-shift rejection method: unbiased and one
    /// multiplication in the common case.
    #[inline]
    pub fn below(&mut self, n: usize) -> usize {
        debug_assert!(n > 0, "below(0) is meaningless");
        let n = n as u64;
        let mut x = self.next_u64();
        let mut m = (x as u128) * (n as u128);
        let mut lo = m as u64;
        if lo < n {
            let threshold = n.wrapping_neg() % n;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128) * (n as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as usize
    }

    /// Uniform integer in `[lo, hi)`. Requires `lo < hi`.
    #[inline]
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        debug_assert!(lo < hi, "range_usize: empty range {lo}..{hi}");
        lo + self.below(hi - lo)
    }

    /// Bernoulli draw: `true` with probability `p`.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Fisher–Yates shuffle of `slice`, in place.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.below(i + 1);
            slice.swap(i, j);
        }
    }

    /// A uniformly random element of `slice`, or `None` if it is empty.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[self.below(slice.len())])
        }
    }

    /// Samples `k` distinct indices from `0..n` (a uniform k-subset),
    /// returned in random order. Requires `k <= n`.
    ///
    /// Used by placement to pick the servers that receive a video's
    /// replicas. O(n) time, O(n) scratch — `n` is a server count here, so
    /// this is never hot.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot sample {k} distinct items from {n}");
        let mut pool: Vec<usize> = (0..n).collect();
        self.shuffle(&mut pool);
        pool.truncate(k);
        pool
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_values() {
        // Reference outputs for seed 1234567 from the public-domain
        // splitmix64.c (Vigna).
        let mut s = 1234567u64;
        assert_eq!(splitmix64(&mut s), 6457827717110365317);
        assert_eq!(splitmix64(&mut s), 3203168211198807973);
        assert_eq!(splitmix64(&mut s), 9817491932198370423);
    }

    #[test]
    fn deterministic_across_instances() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn fork_streams_are_independent_and_deterministic() {
        let root = Rng::new(7);
        let mut c1 = root.fork(0);
        let mut c2 = root.fork(1);
        let mut c1b = root.fork(0);
        let x: Vec<u64> = (0..16).map(|_| c1.next_u64()).collect();
        let y: Vec<u64> = (0..16).map(|_| c2.next_u64()).collect();
        let xb: Vec<u64> = (0..16).map(|_| c1b.next_u64()).collect();
        assert_eq!(x, xb, "same stream id must reproduce");
        assert_ne!(x, y, "distinct stream ids must differ");
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut r = Rng::new(9);
        for _ in 0..10_000 {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn next_f64_mean_near_half() {
        let mut r = Rng::new(11);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn below_is_unbiased_over_small_range() {
        let mut r = Rng::new(13);
        let mut counts = [0usize; 7];
        let n = 70_000;
        for _ in 0..n {
            counts[r.below(7)] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            let expect = n as f64 / 7.0;
            assert!(
                (c as f64 - expect).abs() < expect * 0.1,
                "bucket {i} count {c} vs {expect}"
            );
        }
    }

    #[test]
    fn range_usize_endpoints() {
        let mut r = Rng::new(17);
        let mut saw_lo = false;
        let mut saw_hi = false;
        for _ in 0..1000 {
            let v = r.range_usize(5, 8);
            assert!((5..8).contains(&v));
            saw_lo |= v == 5;
            saw_hi |= v == 7;
        }
        assert!(saw_lo && saw_hi);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = Rng::new(19);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..100).collect::<Vec<_>>(),
            "astronomically unlikely to be identity"
        );
    }

    #[test]
    fn sample_indices_distinct_and_in_range() {
        let mut r = Rng::new(23);
        for _ in 0..100 {
            let s = r.sample_indices(10, 4);
            assert_eq!(s.len(), 4);
            let mut d = s.clone();
            d.sort_unstable();
            d.dedup();
            assert_eq!(d.len(), 4, "indices must be distinct");
            assert!(s.iter().all(|&i| i < 10));
        }
    }

    #[test]
    fn sample_indices_full_set() {
        let mut r = Rng::new(29);
        let mut s = r.sample_indices(5, 5);
        s.sort_unstable();
        assert_eq!(s, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn choose_empty_is_none() {
        let mut r = Rng::new(31);
        let empty: [u8; 0] = [];
        assert!(r.choose(&empty).is_none());
        assert_eq!(r.choose(&[42]), Some(&42));
    }

    #[test]
    fn chance_extremes() {
        let mut r = Rng::new(37);
        assert!((0..100).all(|_| !r.chance(0.0)));
        assert!((0..100).all(|_| r.chance(1.0)));
    }
}
