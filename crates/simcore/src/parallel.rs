//! Parallel epochs: barrier-to-barrier bursts for *every* shard below a
//! common horizon, executed independently and merged back in global
//! `(time, seq)` order.
//!
//! The classic protocol in [`crate::sharded`] elects one shard per run.
//! An **epoch** generalizes the election: given a designated *plane*
//! shard (the shard that owns globally-coupled events), every *other*
//! shard whose head key lies strictly below the plane's head key is
//! elected at once, because each of their pending events precedes
//! anything the plane — and therefore any cross-shard coupling routed
//! through the plane — could do. Each elected shard's burst runs against
//! a private [`WorkerQueue`] with **no access to shared state**, so the
//! bursts can execute on worker threads; the barrier then replays their
//! outcomes in the exact global key order via [`ShardedQueue::end_epoch`].
//!
//! # Determinism argument
//!
//! The single-queue pop order is the total `(time, seq)` order. An epoch
//! with horizon `H` (the plane's head key) processes exactly the events
//! with key `< H`:
//!
//! * Pre-epoch events on elected shards with key `< H` are popped by
//!   their burst ([`WorkerQueue::pop`] enforces the bound).
//! * A burst's *own-shard* pushes are kept in a provisional local queue
//!   ordered by `(time, push index)`; a local event is popped only while
//!   its time is strictly below `H.time`. Since every final sequence
//!   number assigned at the barrier is `≥` the epoch's base (and
//!   `H.seq <` base), this time-only bound equals the full-key bound.
//! * *Foreign* pushes (to another shard) are buffered, never popped
//!   in-epoch, and must land at `time ≥ H.time` — the classic conservative
//!   lookahead contract, asserted at push time — so their final keys lie
//!   `> H`, after the epoch window, exactly where the single queue would
//!   process them.
//!
//! At the barrier the per-burst logs are k-way merged by final key. A
//! local entry's final sequence number is always resolvable when it
//! reaches the merge head, because the event that pushed it sits earlier
//! in the *same* burst log (its key is smaller), and visiting that
//! trigger assigns sequence numbers to its pushes in push order — which
//! is exactly the order the single-threaded loop would have assigned
//! them, since it processes the epoch's events in the same key order and
//! every push draws the next counter value at its trigger's turn. The
//! merged visit sequence is therefore bit-identical to the single-queue
//! pop sequence, independent of how many OS threads executed the bursts.
//!
//! Thread count is *not* part of the protocol: it only decides which
//! thread runs a burst, so any thread count (including fully inline
//! execution) produces identical queues, identical sequence numbers, and
//! an identical visit order. `parallel_epoch_model` pins this by
//! enumerating every interleaving of two bursts' steps, and the
//! `parallel_queue_prop` integration test fuzzes whole epoch/run
//! schedules against the plain [`EventQueue`].

use crate::event::EventQueue;
use crate::sharded::ShardedQueue;
use crate::time::SimTime;

/// Witness of an active epoch: which shards were elected (ascending head
/// key) and the shared horizon. Returned by [`ShardedQueue::begin_epoch`],
/// consumed by [`ShardedQueue::end_epoch`]. Not `Clone`: exactly one
/// epoch can be in flight.
#[derive(Debug)]
pub struct EpochToken {
    /// Elected shards with their pre-epoch head keys, ascending by key.
    elected: Vec<(usize, (SimTime, u64))>,
    /// The plane's head key; every epoch event's key is strictly below
    /// it. `None` when the plane is empty (the bursts drain fully).
    horizon: Option<(SimTime, u64)>,
    /// The shared sequence counter at election; final sequence numbers
    /// assigned at the barrier start here.
    base_seq: u64,
}

impl EpochToken {
    /// Number of elected shards.
    pub fn n_elected(&self) -> usize {
        self.elected.len()
    }

    /// The `i`-th elected shard (ascending pre-epoch head key).
    pub fn shard(&self, i: usize) -> usize {
        self.elected[i].0
    }

    /// The `i`-th elected shard's pre-epoch head key.
    pub fn head(&self, i: usize) -> (SimTime, u64) {
        self.elected[i].1
    }

    /// The epoch horizon (the plane's head key), `None` when unbounded.
    pub fn horizon(&self) -> Option<(SimTime, u64)> {
        self.horizon
    }
}

/// How a burst log entry locates the event it processed.
#[derive(Clone, Copy, Debug)]
enum EntryCls {
    /// A pre-epoch event; carries its (final) sequence number.
    Real(u64),
    /// An event the burst itself pushed; carries its push index, whose
    /// final sequence number is assigned at the barrier.
    Local(u32),
}

/// One processed event in a burst log: its time, identity, caller
/// annotation, and the range of pushes it performed.
#[derive(Debug)]
struct BurstEntry<E> {
    time: SimTime,
    cls: EntryCls,
    extra: E,
    push_start: u32,
    push_len: u32,
}

/// A foreign push buffered until the barrier.
#[derive(Debug)]
struct ForeignPush<T> {
    k: u32,
    shard: usize,
    time: SimTime,
    payload: T,
}

/// An event popped from a [`WorkerQueue`], waiting to be
/// [`WorkerQueue::record`]ed or [`WorkerQueue::discard`]ed.
#[derive(Debug)]
struct PendingPop {
    time: SimTime,
    cls: EntryCls,
    push_start: u32,
}

/// One elected shard's private queue during an epoch: the shard's real
/// event queue (detached from the [`ShardedQueue`]), a provisional queue
/// for the burst's own pushes, a buffer for foreign pushes, and the log
/// the barrier merges. Self-contained — a burst needs no access to the
/// `ShardedQueue` — so it can move to a worker thread.
///
/// The shell is reusable: [`ShardedQueue::load_worker`] re-arms it for
/// the next epoch without reallocating its buffers, which keeps the
/// epoch path allocation-free in steady state.
#[derive(Debug)]
pub struct WorkerQueue<T, E> {
    shard: usize,
    horizon: Option<(SimTime, u64)>,
    head: (SimTime, u64),
    /// The shard's detached pre-epoch queue (final sequence numbers).
    real: EventQueue<T>,
    /// Own-shard pushes made during the burst, keyed `(time, push idx)`.
    local: EventQueue<T>,
    n_pushes: u32,
    foreign: Vec<ForeignPush<T>>,
    log: Vec<BurstEntry<E>>,
    /// Push index → final sequence number (`u64::MAX` until assigned at
    /// the barrier).
    final_seq: Vec<u64>,
    pending: Option<PendingPop>,
    stalled: bool,
    loaded: bool,
}

impl<T, E> Default for WorkerQueue<T, E> {
    /// An empty shell, regardless of whether `T`/`E` implement `Default`
    /// (so shells can be `mem::take`n for thread hand-off).
    fn default() -> Self {
        Self::new()
    }
}

impl<T, E> WorkerQueue<T, E> {
    /// An empty, unloaded shell.
    pub fn new() -> Self {
        WorkerQueue {
            shard: 0,
            horizon: None,
            head: (SimTime::ZERO, 0),
            real: EventQueue::new(),
            local: EventQueue::new(),
            n_pushes: 0,
            foreign: Vec::new(),
            log: Vec::new(),
            final_seq: Vec::new(),
            pending: None,
            stalled: false,
            loaded: false,
        }
    }

    /// The shard this worker was loaded with.
    pub fn shard(&self) -> usize {
        self.shard
    }

    /// The epoch horizon this burst is bounded by (`None` = drain fully).
    pub fn horizon(&self) -> Option<(SimTime, u64)> {
        self.horizon
    }

    /// The shard's pre-epoch head key.
    pub fn head(&self) -> (SimTime, u64) {
        self.head
    }

    /// Events processed (recorded, i.e. excluding discarded pops) so far.
    pub fn events(&self) -> u64 {
        self.log.len() as u64
    }

    /// After [`ShardedQueue::end_epoch`]: `true` when the burst ended
    /// with events still pending on the shard (it stalled at the epoch
    /// horizon rather than draining).
    pub fn stalled(&self) -> bool {
        self.stalled
    }

    /// Foreign pushes this burst buffered for other shards (delivered at
    /// the barrier; the buffer drains in [`ShardedQueue::end_epoch`], so
    /// read this between the burst and the merge). An execution-plane
    /// observation point: the count never feeds back into the run.
    pub fn foreign_pushes(&self) -> usize {
        self.foreign.len()
    }

    /// Pops the burst's next event — the earlier head of the real and
    /// local queues — while it stays below the epoch horizon. At equal
    /// times the real head wins: its sequence number predates the epoch,
    /// while any local push's final number is assigned after the base.
    /// The caller must [`WorkerQueue::record`] or
    /// [`WorkerQueue::discard`] the event before the next pop.
    pub fn pop(&mut self) -> Option<(SimTime, T)> {
        assert!(
            self.pending.is_none(),
            "record or discard the previous event before popping"
        );
        let real_key = self.real.peek_key();
        let local_key = self.local.peek_key();
        let pick_real = match (real_key, local_key) {
            (None, None) => return None,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (Some(r), Some(l)) => r.0 <= l.0,
        };
        if pick_real {
            let key = real_key.unwrap();
            if self.horizon.is_some_and(|h| key >= h) {
                return None;
            }
            let e = self.real.pop().unwrap();
            self.pending = Some(PendingPop {
                time: e.time,
                cls: EntryCls::Real(e.seq),
                push_start: self.n_pushes,
            });
            Some((e.time, e.payload))
        } else {
            let (time, _) = local_key.unwrap();
            if self.horizon.is_some_and(|h| time >= h.0) {
                return None;
            }
            let e = self.local.pop().unwrap();
            self.pending = Some(PendingPop {
                time: e.time,
                cls: EntryCls::Local(e.seq as u32),
                push_start: self.n_pushes,
            });
            Some((e.time, e.payload))
        }
    }

    /// Schedules `payload` at `time` on this burst's own shard. Allowed
    /// only while handling a popped event (pushes are attributed to it).
    pub fn push(&mut self, time: SimTime, payload: T) {
        let pending = self.pending.as_ref().expect("push outside a popped event");
        debug_assert!(time >= pending.time, "push into the past");
        let k = self.n_pushes;
        self.n_pushes += 1;
        self.final_seq.push(u64::MAX);
        self.local.push_with_seq(time, k as u64, payload);
    }

    /// Buffers a push onto *another* shard until the barrier. Requires a
    /// bounded epoch and `time ≥` the horizon's time — the conservative
    /// lookahead contract that keeps the target's burst (and the merge)
    /// oblivious to in-flight foreign traffic.
    pub fn push_foreign(&mut self, shard: usize, time: SimTime, payload: T) {
        assert!(self.pending.is_some(), "push outside a popped event");
        assert_ne!(shard, self.shard, "foreign push to own shard");
        let h = self
            .horizon
            .expect("foreign pushes require a bounded epoch");
        assert!(time >= h.0, "foreign push below the epoch horizon");
        let k = self.n_pushes;
        self.n_pushes += 1;
        self.final_seq.push(u64::MAX);
        self.foreign.push(ForeignPush {
            k,
            shard,
            time,
            payload,
        });
    }

    /// Commits the popped event to the burst log with a caller
    /// annotation `extra` (replayed by the barrier's visit callback) and
    /// the range of pushes it made.
    pub fn record(&mut self, extra: E) {
        let p = self.pending.take().expect("record without a popped event");
        self.log.push(BurstEntry {
            time: p.time,
            cls: p.cls,
            extra,
            push_start: p.push_start,
            push_len: self.n_pushes - p.push_start,
        });
    }

    /// Drops the popped event without logging it (a stale wake-up). The
    /// event must not have pushed anything; it simply vanishes, exactly
    /// as the sequential loop's staleness `continue` makes it vanish.
    pub fn discard(&mut self) {
        let p = self.pending.take().expect("discard without a popped event");
        assert_eq!(p.push_start, self.n_pushes, "discarded event made pushes");
    }
}

impl<T> ShardedQueue<T> {
    /// Epoch barrier: elects every shard other than `plane` whose head
    /// key lies strictly below the plane's head key (all pending work
    /// when the plane is empty). Returns `None` when no shard qualifies —
    /// fall back to a classic [`ShardedQueue::begin_run`], which will
    /// elect the plane. The elected list is ordered by ascending head
    /// key, the order the sequential loop would first touch each shard.
    pub fn begin_epoch(&mut self, plane: usize) -> Option<EpochToken> {
        debug_assert!(self.active.is_none(), "begin_epoch during a run");
        let horizon = self.shards[plane].peek_key();
        let mut elected: Vec<(usize, (SimTime, u64))> = Vec::new();
        for (i, q) in self.shards.iter().enumerate() {
            if i == plane {
                continue;
            }
            let Some(key) = q.peek_key() else { continue };
            if horizon.is_none_or(|h| key < h) {
                elected.push((i, key));
            }
        }
        if elected.is_empty() {
            return None;
        }
        elected.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
        Some(EpochToken {
            elected,
            horizon,
            base_seq: self.next_seq,
        })
    }

    /// Arms `w` as the burst worker for the `i`-th elected shard:
    /// detaches that shard's queue into the shell and resets the shell's
    /// per-epoch state, reusing its buffers.
    pub fn load_worker<E>(&mut self, token: &EpochToken, i: usize, w: &mut WorkerQueue<T, E>) {
        assert!(!w.loaded, "worker shell already loaded");
        let (shard, head) = token.elected[i];
        w.shard = shard;
        w.horizon = token.horizon;
        w.head = head;
        w.real = std::mem::take(&mut self.shards[shard]);
        debug_assert_eq!(w.local.len(), 0);
        w.n_pushes = 0;
        w.foreign.clear();
        w.log.clear();
        w.final_seq.clear();
        w.pending = None;
        w.stalled = false;
        w.loaded = true;
        self.len -= w.real.len();
    }

    /// Epoch barrier merge. Replays the bursts' logs in global final-key
    /// order, assigning final sequence numbers to every push at its
    /// trigger's turn (the single-threaded assignment order), calling
    /// `visit(shard, time, &extra)` per event; then re-attaches the
    /// shards' queues with unconsumed local pushes folded in and
    /// delivers the buffered foreign pushes. `workers` must be the
    /// shells loaded for this token, in elected order.
    pub fn end_epoch<E>(
        &mut self,
        token: EpochToken,
        workers: &mut [&mut WorkerQueue<T, E>],
        mut visit: impl FnMut(usize, SimTime, &E),
    ) {
        assert_eq!(workers.len(), token.elected.len(), "worker set mismatch");
        debug_assert_eq!(token.base_seq, self.next_seq, "pushes during an epoch");
        for (w, &(shard, _)) in workers.iter().zip(&token.elected) {
            assert!(w.loaded && w.shard == shard, "worker/token mismatch");
            assert!(w.pending.is_none(), "unresolved pop at the barrier");
        }
        let mut next_seq = token.base_seq;
        let mut cursors = vec![0usize; workers.len()];
        let mut last_key: Option<(SimTime, u64)> = None;
        loop {
            // The merge head: the smallest resolved final key among the
            // logs' cursors. A `Local` head is always resolvable because
            // its trigger precedes it in the same log (strictly smaller
            // key) and assigned its final number when visited.
            let mut best: Option<(usize, (SimTime, u64))> = None;
            for (wi, w) in workers.iter().enumerate() {
                let Some(e) = w.log.get(cursors[wi]) else {
                    continue;
                };
                let key = match e.cls {
                    EntryCls::Real(seq) => (e.time, seq),
                    EntryCls::Local(k) => {
                        let s = w.final_seq[k as usize];
                        debug_assert_ne!(s, u64::MAX, "unresolved local merge head");
                        (e.time, s)
                    }
                };
                if best.is_none_or(|(_, bk)| key < bk) {
                    best = Some((wi, key));
                }
            }
            let Some((wi, key)) = best else { break };
            debug_assert!(
                last_key.is_none_or(|p| p < key),
                "merge order not strictly increasing"
            );
            debug_assert!(
                token.horizon.is_none_or(|h| key < h),
                "epoch event at or past the horizon"
            );
            last_key = Some(key);
            let w = &mut *workers[wi];
            let e = &w.log[cursors[wi]];
            cursors[wi] += 1;
            let (start, len) = (e.push_start, e.push_len);
            for k in start..start + len {
                w.final_seq[k as usize] = next_seq;
                next_seq += 1;
            }
            let e = &w.log[cursors[wi] - 1];
            visit(w.shard, e.time, &e.extra);
        }
        // Re-attach the real queues first (a foreign push may target an
        // elected shard, whose placeholder queue would otherwise be
        // overwritten), folding unconsumed local pushes in with their
        // final sequence numbers.
        for w in workers.iter_mut() {
            while let Some(e) = w.local.pop() {
                let s = w.final_seq[e.seq as usize];
                debug_assert_ne!(s, u64::MAX, "local push never attributed");
                w.real.push_with_seq(e.time, s, e.payload);
            }
            w.stalled = !w.real.is_empty();
            self.len += w.real.len();
            self.shards[w.shard] = std::mem::take(&mut w.real);
            w.loaded = false;
        }
        for w in workers.iter_mut() {
            for fp in w.foreign.drain(..) {
                let s = w.final_seq[fp.k as usize];
                debug_assert_ne!(s, u64::MAX, "foreign push never attributed");
                self.shards[fp.shard].push_with_seq(fp.time, s, fp.payload);
                self.len += 1;
            }
        }
        self.next_seq = next_seq;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventQueue;

    /// The scripted "handler" both the model and the oracle run: what a
    /// popped payload pushes. Only seed payloads (< 100) push, so the
    /// recursion is bounded. Foreign pushes land at or above the plane
    /// horizon time (10.0), per the epoch contract.
    fn script(p: u64, now: SimTime) -> Vec<(Target, SimTime, u64)> {
        if p >= 100 {
            return Vec::new();
        }
        match p % 4 {
            // An own-shard push below the horizon: consumed in-epoch,
            // exercising the provisional local queue and `Local` log
            // entries in the merge.
            0 => vec![(Target::Own, now + 1.5, 100 + p)],
            // A foreign push to the *other* worker at exactly the
            // horizon time (the tightest legal key).
            1 => vec![(Target::OtherWorker, SimTime::from_secs(10.0), 200 + p)],
            // A foreign push to the plane plus an own-shard push past
            // the horizon (reinstalled unconsumed at the barrier).
            2 => vec![
                (Target::Plane, SimTime::from_secs(15.0), 300 + p),
                (Target::Own, now + 30.0, 400 + p),
            ],
            _ => Vec::new(),
        }
    }

    #[derive(Clone, Copy)]
    enum Target {
        Own,
        OtherWorker,
        Plane,
    }

    /// Initial pushes: plane (shard 0) holds the horizon events, shards
    /// 1 and 2 the worker events. Same order on every rebuild, so
    /// sequence numbers are reproducible.
    fn build() -> ShardedQueue<u64> {
        let mut q = ShardedQueue::new(3, 16);
        q.push(0, SimTime::from_secs(10.0), 90);
        q.push(0, SimTime::from_secs(12.0), 91);
        q.push(1, SimTime::from_secs(1.0), 0);
        q.push(1, SimTime::from_secs(3.0), 1);
        q.push(1, SimTime::from_secs(6.0), 2);
        q.push(1, SimTime::from_secs(8.0), 3);
        q.push(2, SimTime::from_secs(2.0), 4);
        q.push(2, SimTime::from_secs(4.0), 5);
        q.push(2, SimTime::from_secs(7.0), 6);
        q.push(2, SimTime::from_secs(8.5), 7);
        q
    }

    /// One burst step on worker `w` (other worker shard `other`): pop,
    /// run the script, record. Returns false when the burst is done.
    fn step(w: &mut WorkerQueue<u64, u64>, other: usize) -> bool {
        let Some((now, p)) = w.pop() else {
            return false;
        };
        for (target, t, payload) in script(p, now) {
            match target {
                Target::Own => w.push(t, payload),
                Target::OtherWorker => w.push_foreign(other, t, payload),
                Target::Plane => w.push_foreign(0, t, payload),
            }
        }
        w.record(p);
        true
    }

    /// Runs one epoch with the two workers' steps executed in the
    /// interleaving given by `order` (false = worker on shard 1, true =
    /// worker on shard 2), then drains the post-barrier queue with
    /// classic runs. Returns the canonical observable state: the epoch's
    /// visit sequence and the full residual pop order with final keys.
    #[allow(clippy::type_complexity)]
    fn run_interleaving(order: &[bool]) -> (Vec<(usize, SimTime, u64)>, Vec<(SimTime, u64, u64)>) {
        let mut q = build();
        let token = q.begin_epoch(0).expect("workers below the plane head");
        assert_eq!(token.n_elected(), 2);
        let mut wa: WorkerQueue<u64, u64> = WorkerQueue::new();
        let mut wb: WorkerQueue<u64, u64> = WorkerQueue::new();
        q.load_worker(&token, 0, &mut wa);
        q.load_worker(&token, 1, &mut wb);
        let (sa, sb) = (wa.shard(), wb.shard());
        for &pick_b in order {
            let ok = if pick_b {
                step(&mut wb, 3 - sb)
            } else {
                step(&mut wa, 3 - sa)
            };
            assert!(ok, "scripted step had nothing to pop");
        }
        assert!(wa.pop().is_none(), "worker A burst not exhausted");
        assert!(wb.pop().is_none(), "worker B burst not exhausted");
        let mut visits = Vec::new();
        let mut workers = [&mut wa, &mut wb];
        q.end_epoch(token, &mut workers, |shard, time, &p| {
            visits.push((shard, time, p));
        });
        // Residual state, observed through the classic barrier protocol.
        let mut rest = Vec::new();
        while let Some(tok) = q.begin_run() {
            while let Some(e) = q.pop_run(&tok) {
                rest.push((e.time, e.seq, e.payload));
            }
            q.end_run(tok);
        }
        assert!(q.is_empty());
        (visits, rest)
    }

    /// Counts each worker's burst length (independent of interleaving,
    /// since the bursts share nothing).
    fn burst_lengths() -> (usize, usize) {
        let mut q = build();
        let token = q.begin_epoch(0).unwrap();
        let mut wa: WorkerQueue<u64, u64> = WorkerQueue::new();
        let mut wb: WorkerQueue<u64, u64> = WorkerQueue::new();
        q.load_worker(&token, 0, &mut wa);
        q.load_worker(&token, 1, &mut wb);
        let (mut na, mut nb) = (0, 0);
        let (oa, ob) = (3 - wa.shard(), 3 - wb.shard());
        while step(&mut wa, oa) {
            na += 1;
        }
        while step(&mut wb, ob) {
            nb += 1;
        }
        let mut workers = [&mut wa, &mut wb];
        q.end_epoch(token, &mut workers, |_, _, _| {});
        (na, nb)
    }

    /// The sequential oracle: the same pushes and the same script on one
    /// plain `EventQueue`. The epoch window is every pop below the plane
    /// head key; what remains afterwards is the expected post-barrier
    /// state.
    #[allow(clippy::type_complexity)]
    fn oracle() -> (Vec<(SimTime, u64)>, Vec<(SimTime, u64, u64)>) {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(10.0), 90);
        q.push(SimTime::from_secs(12.0), 91);
        q.push(SimTime::from_secs(1.0), 0);
        q.push(SimTime::from_secs(3.0), 1);
        q.push(SimTime::from_secs(6.0), 2);
        q.push(SimTime::from_secs(8.0), 3);
        q.push(SimTime::from_secs(2.0), 4);
        q.push(SimTime::from_secs(4.0), 5);
        q.push(SimTime::from_secs(7.0), 6);
        q.push(SimTime::from_secs(8.5), 7);
        let horizon = (SimTime::from_secs(10.0), 0u64);
        let mut visits = Vec::new();
        while q.peek_key().is_some_and(|k| k < horizon) {
            let e = q.pop().unwrap();
            for (_, t, payload) in script(e.payload, e.time) {
                q.push(t, payload);
            }
            visits.push((e.time, e.payload));
        }
        let mut rest = Vec::new();
        while let Some(e) = q.pop() {
            rest.push((e.time, e.seq, e.payload));
        }
        (visits, rest)
    }

    /// Satellite: every interleaving of two workers' burst steps —
    /// including own-shard, cross-worker, and plane-bound pushes — must
    /// yield the same visit order and the same post-barrier queue state
    /// (times, payloads, *and* final sequence numbers) as the sequential
    /// single-queue oracle. The bursts share no state, so enumerating
    /// step interleavings covers every possible thread schedule; there
    /// is no hidden nondeterminism left to sample.
    #[test]
    fn parallel_epoch_model() {
        let (na, nb) = burst_lengths();
        assert!(na >= 3 && nb >= 3, "script should grow both bursts");
        let (oracle_visits, oracle_rest) = oracle();
        let n = na + nb;
        assert!(n <= 16, "keep the enumeration exhaustive but bounded");
        let mut checked = 0u32;
        type Run = (Vec<(usize, SimTime, u64)>, Vec<(SimTime, u64, u64)>);
        let mut reference: Option<Run> = None;
        for mask in 0u32..(1 << n) {
            if mask.count_ones() as usize != nb {
                continue;
            }
            let order: Vec<bool> = (0..n).map(|i| mask >> i & 1 == 1).collect();
            let (visits, rest) = run_interleaving(&order);
            // Against the oracle: the visit stream is the oracle's pop
            // stream below the horizon, and the residual queue matches
            // key-for-key (same final sequence numbers).
            let visit_tp: Vec<(SimTime, u64)> = visits.iter().map(|&(_, t, p)| (t, p)).collect();
            assert_eq!(visit_tp, oracle_visits, "mask {mask:0n$b}");
            assert_eq!(rest, oracle_rest, "mask {mask:0n$b}");
            // And against every other interleaving (shards included).
            match &reference {
                None => reference = Some((visits, rest)),
                Some(r) => assert_eq!(*r, (visits, rest), "mask {mask:0n$b}"),
            }
            checked += 1;
        }
        assert!(checked > 100, "expected a dense interleaving space");
    }

    /// Election basics: only shards whose head key lies strictly below
    /// the plane head are elected, in ascending head-key order; with an
    /// empty plane every non-empty shard is elected and the epoch is
    /// unbounded.
    #[test]
    fn epoch_election_respects_the_plane_head() {
        let mut q = ShardedQueue::new(3, 8);
        q.push(0, SimTime::from_secs(5.0), 50);
        q.push(1, SimTime::from_secs(7.0), 70); // at/above plane head: not elected
        q.push(2, SimTime::from_secs(2.0), 20);
        let token = q.begin_epoch(0).unwrap();
        assert_eq!(token.n_elected(), 1);
        assert_eq!(token.shard(0), 2);
        assert_eq!(token.horizon(), Some((SimTime::from_secs(5.0), 0)));
        let mut w: WorkerQueue<u64, ()> = WorkerQueue::new();
        q.load_worker(&token, 0, &mut w);
        let (t, p) = w.pop().unwrap();
        assert_eq!((t, p), (SimTime::from_secs(2.0), 20));
        w.record(());
        assert!(w.pop().is_none());
        let mut workers = [&mut w];
        let mut n = 0;
        q.end_epoch(token, &mut workers, |shard, _, _| {
            assert_eq!(shard, 2);
            n += 1;
        });
        assert_eq!(n, 1);
        assert!(!w.stalled());
        assert_eq!(q.len(), 2);

        // Plane empty: unbounded epoch over all remaining shards.
        let mut q = ShardedQueue::new(3, 8);
        q.push(1, SimTime::from_secs(1.0), 1);
        q.push(2, SimTime::from_secs(2.0), 2);
        let token = q.begin_epoch(0).unwrap();
        assert_eq!(token.n_elected(), 2);
        assert_eq!(token.horizon(), None);
        assert_eq!((token.shard(0), token.shard(1)), (1, 2));

        // Nothing below the plane head: no epoch, classic run instead.
        let mut q = ShardedQueue::new(2, 8);
        q.push(0, SimTime::from_secs(1.0), 1);
        q.push(1, SimTime::from_secs(4.0), 4);
        assert!(q.begin_epoch(0).is_none());
        assert_eq!(q.begin_run().map(|t| t.shard()), Some(0));
    }

    /// A stale pop (`discard`) vanishes without a log entry, without a
    /// sequence number, and without counting as an event — exactly like
    /// the sequential loop's staleness `continue`.
    #[test]
    fn discard_is_invisible_at_the_barrier() {
        let mut q = ShardedQueue::new(2, 8);
        q.push(0, SimTime::from_secs(9.0), 99);
        q.push(1, SimTime::from_secs(1.0), 1);
        q.push(1, SimTime::from_secs(2.0), 2);
        let token = q.begin_epoch(0).unwrap();
        let mut w: WorkerQueue<u64, u64> = WorkerQueue::new();
        q.load_worker(&token, 0, &mut w);
        let (_, p) = w.pop().unwrap();
        assert_eq!(p, 1);
        w.discard();
        let (t, p) = w.pop().unwrap();
        assert_eq!(p, 2);
        w.push(t + 1.0, 20);
        w.record(p);
        // The own-shard push at t=3 is below the horizon (9.0), so the
        // burst consumes it too.
        let (_, p) = w.pop().unwrap();
        assert_eq!(p, 20);
        w.record(p);
        assert!(w.pop().is_none());
        assert_eq!(w.events(), 2, "the discarded pop is not an event");
        let mut visits = Vec::new();
        let mut workers = [&mut w];
        q.end_epoch(token, &mut workers, |_, _, &p| visits.push(p));
        assert_eq!(visits, vec![2, 20]);
        let mut order = Vec::new();
        while let Some(tok) = q.begin_run() {
            while let Some(e) = q.pop_run(&tok) {
                order.push((e.time, e.seq, e.payload));
            }
            q.end_run(tok);
        }
        assert_eq!(order, vec![(SimTime::from_secs(9.0), 0, 99)]);
    }
}
