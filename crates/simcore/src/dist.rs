//! Distributions used by the paper's workload model.
//!
//! * [`Exponential`] — inter-arrival times of the Poisson request process.
//! * [`UniformRange`] — video lengths ("chosen uniformly at random from the
//!   ranges indicated", §4.1).
//! * [`ZipfLike`] — the paper's Zipf-like popularity law (§4.1):
//!   `p_i = c / i^(1-θ)` with normalisation `c = 1 / Σ 1/i^(1-θ)`.
//!   θ = 1 is the uniform distribution, θ = 0 is "highly skewed", and the
//!   paper explores θ down to −1.5 (even more skewed). Note this is the
//!   *paper's* parameterisation — the exponent is `1-θ`, not θ.
//! * [`AliasTable`] — Vose's alias method for O(1) sampling from any finite
//!   discrete distribution. The workload samples a video id per request,
//!   millions of times per trial, so constant-time sampling matters.

use crate::rng::Rng;
use serde::{Deserialize, Serialize};

/// Exponential distribution with rate `lambda` (mean `1/lambda`).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Exponential {
    rate: f64,
}

impl Exponential {
    /// Creates an exponential distribution with the given rate (events per
    /// second). Requires `rate > 0`.
    pub fn new(rate: f64) -> Self {
        assert!(
            rate > 0.0 && rate.is_finite(),
            "rate must be positive, got {rate}"
        );
        Exponential { rate }
    }

    /// The rate parameter λ.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// The mean `1/λ`.
    pub fn mean(&self) -> f64 {
        1.0 / self.rate
    }

    /// Draws a sample via inversion. Always finite and strictly positive.
    #[inline]
    pub fn sample(&self, rng: &mut Rng) -> f64 {
        // 1 - U is in (0, 1], so ln() is finite and <= 0.
        -(1.0 - rng.next_f64()).ln() / self.rate
    }
}

/// Uniform distribution on `[lo, hi)` (degenerate point mass if `lo == hi`).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct UniformRange {
    lo: f64,
    hi: f64,
}

impl UniformRange {
    /// Creates a uniform distribution on `[lo, hi)`. Requires `lo <= hi`.
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(
            lo <= hi && lo.is_finite() && hi.is_finite(),
            "bad range [{lo}, {hi})"
        );
        UniformRange { lo, hi }
    }

    /// Lower bound.
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper bound.
    pub fn hi(&self) -> f64 {
        self.hi
    }

    /// The mean `(lo + hi) / 2`.
    pub fn mean(&self) -> f64 {
        0.5 * (self.lo + self.hi)
    }

    /// Draws a sample.
    #[inline]
    pub fn sample(&self, rng: &mut Rng) -> f64 {
        rng.range_f64(self.lo, self.hi)
    }
}

/// The paper's Zipf-like popularity distribution over items `1..=n`.
///
/// `p_i = c / i^(1-θ)`, `c = 1 / Σ_{i=1..n} i^(θ-1)`.
///
/// ```
/// use sct_simcore::ZipfLike;
/// let uniform = ZipfLike::new(4, 1.0);           // θ = 1 → uniform
/// assert!((uniform.prob(0) - 0.25).abs() < 1e-12);
/// let skewed = ZipfLike::new(4, 0.0);            // θ = 0 → p ∝ 1/i
/// assert!(skewed.prob(0) > 2.0 * skewed.prob(3));
/// ```
///
/// The probability vector is exposed for placement strategies (the
/// *predictive* scheme sizes replica counts by these probabilities) and an
/// [`AliasTable`] can be built from it for request sampling.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ZipfLike {
    theta: f64,
    probs: Vec<f64>,
}

impl ZipfLike {
    /// Builds the distribution for `n` items with skew parameter `theta`.
    ///
    /// Requires `n > 0`. `theta = 1` gives the uniform distribution;
    /// smaller (including negative) values skew mass toward item 1.
    pub fn new(n: usize, theta: f64) -> Self {
        assert!(n > 0, "ZipfLike needs at least one item");
        assert!(theta.is_finite(), "theta must be finite");
        let exponent = 1.0 - theta;
        let mut probs: Vec<f64> = (1..=n).map(|i| (i as f64).powf(-exponent)).collect();
        let norm: f64 = probs.iter().sum();
        for p in &mut probs {
            *p /= norm;
        }
        ZipfLike { theta, probs }
    }

    /// The skew parameter θ.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.probs.len()
    }

    /// `true` if there are no items (never; kept for API completeness).
    pub fn is_empty(&self) -> bool {
        self.probs.is_empty()
    }

    /// Probability of item `i` (0-based).
    pub fn prob(&self, i: usize) -> f64 {
        self.probs[i]
    }

    /// The full probability vector, most popular first.
    pub fn probs(&self) -> &[f64] {
        &self.probs
    }

    /// Builds an O(1) sampler for this distribution.
    pub fn sampler(&self) -> AliasTable {
        AliasTable::new(&self.probs)
    }
}

/// Vose's alias method: O(n) construction, O(1) sampling from a finite
/// discrete distribution.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct AliasTable {
    // For bucket i: with probability `accept[i]` return i, otherwise
    // return `alias[i]`.
    accept: Vec<f64>,
    alias: Vec<u32>,
}

impl AliasTable {
    /// Builds an alias table from (possibly unnormalised) non-negative
    /// weights. Requires at least one strictly positive weight.
    pub fn new(weights: &[f64]) -> Self {
        let n = weights.len();
        assert!(n > 0, "AliasTable needs at least one weight");
        assert!(n <= u32::MAX as usize, "too many categories");
        let total: f64 = weights.iter().sum();
        assert!(
            total > 0.0 && total.is_finite(),
            "weights must sum to a positive finite value, got {total}"
        );
        assert!(
            weights.iter().all(|&w| w >= 0.0),
            "weights must be non-negative"
        );

        // Scaled weights: mean 1.0.
        let mut scaled: Vec<f64> = weights.iter().map(|&w| w * n as f64 / total).collect();
        let mut accept = vec![0.0f64; n];
        let mut alias = vec![0u32; n];
        let mut small: Vec<u32> = Vec::with_capacity(n);
        let mut large: Vec<u32> = Vec::with_capacity(n);
        for (i, &s) in scaled.iter().enumerate() {
            if s < 1.0 {
                small.push(i as u32);
            } else {
                large.push(i as u32);
            }
        }
        // Note: test emptiness *before* popping — a `while let` on
        // `(small.pop(), large.pop())` would pop (and lose) a large entry
        // when only `small` is empty.
        while !small.is_empty() && !large.is_empty() {
            let (s, l) = (small.pop().unwrap(), large.pop().unwrap());
            accept[s as usize] = scaled[s as usize];
            alias[s as usize] = l;
            scaled[l as usize] = (scaled[l as usize] + scaled[s as usize]) - 1.0;
            if scaled[l as usize] < 1.0 {
                small.push(l);
            } else {
                large.push(l);
            }
        }
        // Leftovers are numerically ~1.0: they always accept.
        for i in small.into_iter().chain(large) {
            accept[i as usize] = 1.0;
            alias[i as usize] = i;
        }
        AliasTable { accept, alias }
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.accept.len()
    }

    /// `true` if the table is empty (cannot happen via `new`).
    pub fn is_empty(&self) -> bool {
        self.accept.is_empty()
    }

    /// Draws a category index in O(1).
    #[inline]
    pub fn sample(&self, rng: &mut Rng) -> usize {
        let i = rng.below(self.accept.len());
        if rng.next_f64() < self.accept[i] {
            i
        } else {
            self.alias[i] as usize
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> Rng {
        Rng::new(0xC0FFEE)
    }

    #[test]
    fn exponential_mean_matches() {
        let d = Exponential::new(0.25);
        assert_eq!(d.mean(), 4.0);
        let mut r = rng();
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| d.sample(&mut r)).sum::<f64>() / n as f64;
        assert!((mean - 4.0).abs() < 0.05, "sample mean {mean}");
    }

    #[test]
    fn exponential_samples_positive() {
        let d = Exponential::new(10.0);
        let mut r = rng();
        for _ in 0..10_000 {
            let s = d.sample(&mut r);
            assert!(s > 0.0 && s.is_finite());
        }
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn exponential_rejects_zero_rate() {
        Exponential::new(0.0);
    }

    #[test]
    fn uniform_stays_in_range_and_mean() {
        let d = UniformRange::new(600.0, 1800.0);
        assert_eq!(d.mean(), 1200.0);
        let mut r = rng();
        let n = 100_000;
        let mut acc = 0.0;
        for _ in 0..n {
            let s = d.sample(&mut r);
            assert!((600.0..1800.0).contains(&s));
            acc += s;
        }
        let mean = acc / n as f64;
        assert!((mean - 1200.0).abs() < 5.0, "sample mean {mean}");
    }

    #[test]
    fn zipf_theta_one_is_uniform() {
        let z = ZipfLike::new(10, 1.0);
        for i in 0..10 {
            assert!((z.prob(i) - 0.1).abs() < 1e-12);
        }
    }

    #[test]
    fn zipf_theta_zero_is_classic_zipf() {
        // p_i proportional to 1/i.
        let z = ZipfLike::new(4, 0.0);
        let h = 1.0 + 0.5 + 1.0 / 3.0 + 0.25;
        assert!((z.prob(0) - 1.0 / h).abs() < 1e-12);
        assert!((z.prob(1) - 0.5 / h).abs() < 1e-12);
        assert!((z.prob(3) - 0.25 / h).abs() < 1e-12);
    }

    #[test]
    fn zipf_negative_theta_is_more_skewed() {
        let mild = ZipfLike::new(100, 0.0);
        let harsh = ZipfLike::new(100, -1.5);
        assert!(harsh.prob(0) > mild.prob(0));
        assert!(harsh.prob(99) < mild.prob(99));
    }

    #[test]
    fn zipf_probs_sum_to_one_and_decrease() {
        for &theta in &[-1.5, -1.0, -0.5, 0.0, 0.5, 1.0] {
            let z = ZipfLike::new(100, theta);
            let sum: f64 = z.probs().iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "theta {theta} sum {sum}");
            for i in 1..100 {
                assert!(
                    z.prob(i - 1) >= z.prob(i) - 1e-15,
                    "probabilities must be non-increasing at theta {theta}"
                );
            }
        }
    }

    #[test]
    fn alias_table_matches_target_distribution() {
        let weights = [0.5, 0.2, 0.2, 0.1];
        let t = AliasTable::new(&weights);
        let mut r = rng();
        let n = 400_000;
        let mut counts = [0usize; 4];
        for _ in 0..n {
            counts[t.sample(&mut r)] += 1;
        }
        for (i, &w) in weights.iter().enumerate() {
            let freq = counts[i] as f64 / n as f64;
            assert!((freq - w).abs() < 0.005, "bucket {i}: {freq} vs {w}");
        }
    }

    #[test]
    fn alias_table_single_category() {
        let t = AliasTable::new(&[3.0]);
        let mut r = rng();
        for _ in 0..100 {
            assert_eq!(t.sample(&mut r), 0);
        }
    }

    #[test]
    fn alias_table_handles_zero_weights() {
        let t = AliasTable::new(&[0.0, 1.0, 0.0, 1.0]);
        let mut r = rng();
        for _ in 0..10_000 {
            let s = t.sample(&mut r);
            assert!(s == 1 || s == 3, "zero-weight category {s} sampled");
        }
    }

    #[test]
    #[should_panic(expected = "positive finite")]
    fn alias_table_rejects_all_zero() {
        AliasTable::new(&[0.0, 0.0]);
    }

    #[test]
    fn alias_table_agrees_with_zipf_probs() {
        let z = ZipfLike::new(50, 0.271);
        let t = z.sampler();
        let mut r = rng();
        let n = 500_000;
        let mut counts = vec![0usize; 50];
        for _ in 0..n {
            counts[t.sample(&mut r)] += 1;
        }
        // Check the head of the distribution closely.
        for (i, &c) in counts.iter().enumerate().take(5) {
            let freq = c as f64 / n as f64;
            assert!(
                (freq - z.prob(i)).abs() < 0.01,
                "item {i}: {freq} vs {}",
                z.prob(i)
            );
        }
    }
}
