//! Per-shard event queues under a conservative lower-bound-timestamp
//! barrier.
//!
//! A [`ShardedQueue`] partitions pending events over `n` calendar queues
//! (one per shard) while preserving the *global* `(time, seq)` total
//! order of a single [`EventQueue`]: sequence numbers are allocated from
//! one shared counter, so the merged pop order is a pure function of the
//! push order, exactly as in the single-queue contract.
//!
//! Execution alternates **barriers** and **runs**, the classic
//! conservative (lower-bound-timestamp) synchronization of parallel
//! discrete-event simulation, multiplexed deterministically on one
//! thread:
//!
//! 1. **Barrier** — [`ShardedQueue::begin_run`] picks the shard owning
//!    the globally-earliest key and computes its *horizon*: the minimum
//!    key pending on any *other* shard. The returned [`RunToken`] is the
//!    typestate witness of the active run.
//! 2. **Run** — [`ShardedQueue::pop_run`] drains the active shard while
//!    its head key stays below the horizon. Every event the run pushes
//!    onto a *foreign* shard (a cross-shard message) lowers the horizon,
//!    so the run can never overtake causality it just created.
//! 3. When the active shard's head reaches the horizon the run ends
//!    ([`ShardedQueue::end_run`] consumes the token) and the next
//!    barrier re-elects.
//!
//! The [`crate::parallel`] module generalizes a run to an **epoch** that
//! elects *every* shard below a common horizon at once and executes
//! their bursts independently (optionally on worker threads), merging
//! the results back in global key order at the barrier.
//!
//! **Observation points.** [`ShardedQueue::run_head`],
//! [`ShardedQueue::run_horizon`], [`ShardedQueue::shard_len`], and
//! [`ShardedQueue::len`] are O(1) reads with no effect on queue state;
//! they exist so election snapshots (run summaries) and the wall-clock
//! execution-plane recorder (`sct-core::exec`) can observe barriers
//! without perturbing them. The same contract covers
//! `WorkerQueue::{events, stalled, foreign_pushes}` on the epoch path.
//!
//! Because the horizon comparison uses the full `(time, seq)` key —
//! unique and totally ordered — the interleaving produced by any shard
//! count is *identical* to the single-queue pop order. Shard count
//! changes batching and accounting, never outcomes. The
//! `barrier_matches_single_queue` test pins this differentially, and
//! `barrier_model_exhaustive` walks every small push pattern, which is
//! what makes the single-thread-multiplexed barrier checkable without a
//! thread sanitizer: there is no interleaving nondeterminism left to
//! sample.

use crate::event::{EventEntry, EventQueue};
use crate::time::SimTime;

/// Proof that a run is active: returned by [`ShardedQueue::begin_run`],
/// required by [`ShardedQueue::pop_run`], consumed by
/// [`ShardedQueue::end_run`]. The begin/pop/end protocol is a typestate —
/// popping outside a run is a compile error, not a runtime panic — and
/// the token is deliberately neither `Clone` nor `Copy`, so exactly one
/// run can hold it.
#[derive(Debug)]
pub struct RunToken {
    shard: usize,
}

impl RunToken {
    /// The shard this run drains.
    pub fn shard(&self) -> usize {
        self.shard
    }
}

/// A set of per-shard event queues sharing one sequence-number namespace
/// and coordinated by a conservative barrier. See the module docs.
#[derive(Clone, Debug)]
pub struct ShardedQueue<T> {
    pub(crate) shards: Vec<EventQueue<T>>,
    pub(crate) next_seq: u64,
    pub(crate) len: usize,
    /// The shard a run is currently draining, if any.
    pub(crate) active: Option<usize>,
    /// The run's incoming cross-shard horizon: the minimum `(time, seq)`
    /// key the *other* shards hold, tightened by every foreign push the
    /// run performs. `None` means unbounded (no other shard has work).
    pub(crate) horizon: Option<(SimTime, u64)>,
}

impl<T> ShardedQueue<T> {
    /// Creates `n_shards` empty queues (at least one), each with room
    /// for `cap` events.
    pub fn new(n_shards: usize, cap: usize) -> Self {
        let n = n_shards.max(1);
        ShardedQueue {
            shards: (0..n).map(|_| EventQueue::with_capacity(cap / n)).collect(),
            next_seq: 0,
            len: 0,
            active: None,
            horizon: None,
        }
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// Total pending events across all shards.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if no events are pending on any shard.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Schedules `payload` at `time` on `shard`. The sequence number
    /// comes from the shared counter, so pushes order FIFO across shards
    /// exactly as they would in one queue. During a run, a push onto a
    /// foreign shard tightens the active shard's horizon (it is an
    /// incoming cross-shard message for its target).
    pub fn push(&mut self, shard: usize, time: SimTime, payload: T) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.shards[shard].push_with_seq(time, seq, payload);
        self.len += 1;
        if let Some(active) = self.active {
            if shard != active {
                let key = (time, seq);
                if self.horizon.is_none_or(|h| key < h) {
                    self.horizon = Some(key);
                }
            }
        }
    }

    /// Barrier: elects the shard owning the globally-minimal `(time,
    /// seq)` key, records the other shards' minimum as the run horizon,
    /// and returns the run's [`RunToken`]. `None` when every shard is
    /// empty.
    pub fn begin_run(&mut self) -> Option<RunToken> {
        debug_assert!(self.active.is_none(), "begin_run while a run is active");
        let mut best: Option<(usize, (SimTime, u64))> = None;
        let mut second: Option<(SimTime, u64)> = None;
        for (i, q) in self.shards.iter().enumerate() {
            let Some(key) = q.peek_key() else { continue };
            match best {
                None => best = Some((i, key)),
                Some((_, bk)) if key < bk => {
                    second = Some(bk);
                    best = Some((i, key));
                }
                _ => {
                    if second.is_none_or(|s| key < s) {
                        second = Some(key);
                    }
                }
            }
        }
        let (shard, _) = best?;
        self.active = Some(shard);
        self.horizon = second;
        Some(RunToken { shard })
    }

    /// Pops the active shard's next event while it stays strictly below
    /// the run horizon. Returns `None` when the shard drains or its head
    /// reaches the horizon — time for the next barrier. The token
    /// witnesses that a run is active, so there is no runtime state to
    /// misuse.
    pub fn pop_run(&mut self, token: &RunToken) -> Option<EventEntry<T>> {
        debug_assert_eq!(self.active, Some(token.shard), "stale run token");
        let key = self.shards[token.shard].peek_key()?;
        if let Some(h) = self.horizon {
            if key >= h {
                return None;
            }
        }
        let entry = self.shards[token.shard].pop();
        debug_assert!(entry.is_some());
        self.len -= 1;
        entry
    }

    /// Ends the run, consuming its token.
    pub fn end_run(&mut self, token: RunToken) {
        debug_assert_eq!(self.active, Some(token.shard), "stale run token");
        self.active = None;
        self.horizon = None;
    }

    /// The `(time, seq)` key at the head of the active shard, or `None`
    /// when no run is active or the shard has drained. Observational:
    /// barrier instrumentation reads it to timestamp a run's election.
    pub fn run_head(&self) -> Option<(SimTime, u64)> {
        self.shards[self.active?].peek_key()
    }

    /// The current run's horizon key — the earliest work pending on any
    /// *other* shard, as tightened by foreign pushes. `None` when no run
    /// is active or the run is unbounded (no other shard has work).
    pub fn run_horizon(&self) -> Option<(SimTime, u64)> {
        self.active?;
        self.horizon
    }

    /// Pending events on one shard. Observational: a run that ends with
    /// its shard non-empty stalled at the barrier horizon rather than
    /// draining.
    pub fn shard_len(&self, shard: usize) -> usize {
        self.shards[shard].len()
    }

    /// Aggregated internal scan counters across all shard queues.
    pub fn counters(&self) -> crate::event::QueueCounters {
        let mut total = crate::event::QueueCounters::default();
        for q in &self.shards {
            let c = q.counters();
            total.scanned += c.scanned;
            total.sweeps += c.sweeps;
            total.rebuilds += c.rebuilds;
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    /// Drains a sharded queue barrier-by-barrier, recording
    /// `(shard, time, seq, payload)` and pushing follow-up events the
    /// way a simulation handler would.
    fn drain<F>(mut q: ShardedQueue<u64>, mut follow_up: F) -> Vec<(SimTime, u64, u64)>
    where
        F: FnMut(&mut ShardedQueue<u64>, &EventEntry<u64>),
    {
        let mut order = Vec::new();
        while let Some(token) = q.begin_run() {
            while let Some(e) = q.pop_run(&token) {
                order.push((e.time, e.seq, e.payload));
                follow_up(&mut q, &e);
            }
            q.end_run(token);
        }
        order
    }

    /// The barrier protocol must reproduce the single-queue pop order for
    /// every shard count, including when handlers push new (possibly
    /// cross-shard, possibly same-time) events mid-run.
    #[test]
    fn barrier_matches_single_queue() {
        for n_shards in [1usize, 2, 3, 4, 7] {
            let mut rng = Rng::new(0xBA221E12 + n_shards as u64);
            // Seed both with an identical push sequence.
            let mut single = EventQueue::new();
            let mut sharded = ShardedQueue::new(n_shards, 64);
            let mut payload = 0u64;
            for _ in 0..200 {
                let t = SimTime::from_secs((rng.range_f64(0.0, 40.0) * 2.0).floor() / 2.0);
                single.push(t, payload);
                sharded.push(payload as usize % n_shards, t, payload);
                payload += 1;
            }
            // Reference order: plain pops, plus the same deterministic
            // follow-up rule the sharded side uses (every 5th event
            // schedules one future event on a rotated shard).
            let mut expect = Vec::new();
            while let Some(e) = single.pop() {
                expect.push((e.time, e.seq, e.payload));
                if e.payload % 5 == 0 && payload < 400 {
                    single.push(e.time + 1.5, payload);
                    payload += 1;
                }
            }
            let mut payload2 = 200u64;
            let got = drain(sharded, |q, e| {
                if e.payload % 5 == 0 && payload2 < 400 {
                    q.push(payload2 as usize % n_shards, e.time + 1.5, payload2);
                    payload2 += 1;
                }
            });
            assert_eq!(got, expect, "shard count {n_shards} reordered events");
        }
    }

    /// Exhaustive model check over every assignment of 6 timestamped
    /// events to 2 shards (all 64 patterns × a handful of time shapes):
    /// the multiplexed barrier has no hidden interleavings, so walking
    /// the full assignment space is a complete proof for this size.
    #[test]
    fn barrier_model_exhaustive() {
        let time_shapes: [[f64; 6]; 4] = [
            [1.0, 2.0, 3.0, 4.0, 5.0, 6.0],
            [1.0, 1.0, 1.0, 2.0, 2.0, 2.0],
            [3.0, 1.0, 2.0, 1.0, 3.0, 2.0],
            [1.0, 1.0, 1.0, 1.0, 1.0, 1.0],
        ];
        for times in &time_shapes {
            // Reference order from the single queue.
            let mut single = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                single.push(SimTime::from_secs(t), i as u64);
            }
            let mut expect = Vec::new();
            while let Some(e) = single.pop() {
                expect.push((e.time, e.seq, e.payload));
            }
            for mask in 0u32..64 {
                let mut q = ShardedQueue::new(2, 8);
                for (i, &t) in times.iter().enumerate() {
                    q.push(((mask >> i) & 1) as usize, SimTime::from_secs(t), i as u64);
                }
                let got = drain(q, |_, _| {});
                assert_eq!(got, expect, "times {times:?} mask {mask:06b}");
            }
        }
    }

    /// A run must stop at causality it creates: pushing an earlier
    /// cross-shard event mid-run tightens the horizon so the foreign
    /// shard gets elected before the active shard's later events.
    #[test]
    fn foreign_push_tightens_horizon() {
        let mut q = ShardedQueue::new(2, 8);
        q.push(0, SimTime::from_secs(1.0), 1);
        q.push(0, SimTime::from_secs(5.0), 5);
        let t = q.begin_run().unwrap();
        assert_eq!(t.shard(), 0);
        let first = q.pop_run(&t).unwrap();
        assert_eq!(first.payload, 1);
        // Handler effect: schedule work on shard 1 at t=3, before the
        // active shard's next event at t=5.
        q.push(1, SimTime::from_secs(3.0), 3);
        assert!(q.pop_run(&t).is_none(), "run must stop at the new horizon");
        q.end_run(t);
        let t = q.begin_run().unwrap();
        assert_eq!(t.shard(), 1);
        assert_eq!(q.pop_run(&t).unwrap().payload, 3);
        q.end_run(t);
        let t = q.begin_run().unwrap();
        assert_eq!(t.shard(), 0);
        assert_eq!(q.pop_run(&t).unwrap().payload, 5);
    }

    /// The observational accessors expose the elected head, the horizon,
    /// and per-shard backlogs without perturbing the run protocol.
    #[test]
    fn run_accessors_are_observational() {
        let mut q = ShardedQueue::new(2, 8);
        assert_eq!(q.run_head(), None, "no run active yet");
        assert_eq!(q.run_horizon(), None);
        q.push(0, SimTime::from_secs(1.0), 1);
        q.push(1, SimTime::from_secs(4.0), 4);
        let t = q.begin_run().unwrap();
        assert_eq!(t.shard(), 0);
        assert_eq!(q.run_head(), Some((SimTime::from_secs(1.0), 0)));
        assert_eq!(q.run_horizon(), Some((SimTime::from_secs(4.0), 1)));
        assert_eq!(q.shard_len(0), 1);
        assert_eq!(q.shard_len(1), 1);
        // Foreign push tightens the reported horizon too.
        q.push(1, SimTime::from_secs(2.0), 2);
        assert_eq!(q.run_horizon(), Some((SimTime::from_secs(2.0), 2)));
        q.pop_run(&t).unwrap();
        assert_eq!(q.run_head(), None, "active shard drained");
        assert_eq!(q.shard_len(0), 0);
        q.end_run(t);
        assert_eq!(q.run_head(), None, "accessors reset after end_run");
        assert_eq!(q.run_horizon(), None);
    }

    /// With one shard the barrier is vacuous: a single run drains the
    /// whole queue (the `shards = 1` fast path must not pay extra
    /// barriers).
    #[test]
    fn single_shard_drains_in_one_run() {
        let mut q = ShardedQueue::new(1, 8);
        for i in 0..50u64 {
            q.push(0, SimTime::from_secs((i % 10) as f64), i);
        }
        let t = q.begin_run().unwrap();
        assert_eq!(t.shard(), 0);
        let mut n = 0;
        while let Some(e) = q.pop_run(&t) {
            n += 1;
            // Same-time pushes mid-run stay in the same run.
            if e.payload == 7 {
                q.push(0, e.time, 1000);
            }
        }
        q.end_run(t);
        assert_eq!(n, 51);
        assert!(q.is_empty());
        assert!(q.begin_run().is_none());
    }
}
