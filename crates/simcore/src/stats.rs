//! Streaming statistics for trial aggregation.
//!
//! The paper reports each data point as the mean of 5 independent trials.
//! [`OnlineStats`] accumulates mean and variance in one pass (Welford's
//! algorithm — numerically stable for long runs), and [`Summary`] is the
//! serialisable digest the experiment harness stores per data point.

use serde::{Deserialize, Serialize};

/// One-pass mean/variance accumulator (Welford).
///
/// ```
/// use sct_simcore::OnlineStats;
/// let mut s = OnlineStats::new();
/// for x in [1.0, 2.0, 3.0] { s.push(x); }
/// assert_eq!(s.mean(), 2.0);
/// assert_eq!(s.variance(), 1.0);
/// ```
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    #[inline]
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merges another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0.0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (0.0 with fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean.
    pub fn std_err(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.std_dev() / (self.n as f64).sqrt()
        }
    }

    /// Minimum observation (`+inf` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Maximum observation (`-inf` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Half-width of a ~95 % normal confidence interval for the mean.
    ///
    /// With the paper's 5 trials the normal approximation is mildly
    /// optimistic versus Student's t, which is fine for the qualitative
    /// comparisons we report.
    pub fn ci95_half_width(&self) -> f64 {
        1.96 * self.std_err()
    }

    /// Finalises into a serialisable digest.
    pub fn summary(&self) -> Summary {
        Summary {
            n: self.n,
            mean: self.mean(),
            std_dev: self.std_dev(),
            ci95: self.ci95_half_width(),
            min: if self.n == 0 { 0.0 } else { self.min },
            max: if self.n == 0 { 0.0 } else { self.max },
        }
    }
}

/// Digest of a set of trial observations for one experiment data point.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of trials.
    pub n: u64,
    /// Mean over trials.
    pub mean: f64,
    /// Sample standard deviation.
    pub std_dev: f64,
    /// 95 % CI half-width.
    pub ci95: f64,
    /// Minimum trial value.
    pub min: f64,
    /// Maximum trial value.
    pub max: f64,
}

impl Summary {
    /// Builds a summary directly from a slice of observations.
    pub fn of(values: &[f64]) -> Summary {
        let mut s = OnlineStats::new();
        for &v in values {
            s.push(v);
        }
        s.summary()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats_are_zeroish() {
        let s = OnlineStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.std_err(), 0.0);
    }

    #[test]
    fn mean_and_variance_known_values() {
        let mut s = OnlineStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // Population variance is 4.0 → sample variance is 32/7.
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn single_observation() {
        let mut s = OnlineStats::new();
        s.push(3.5);
        assert_eq!(s.mean(), 3.5);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), 3.5);
        assert_eq!(s.max(), 3.5);
    }

    #[test]
    fn merge_matches_sequential() {
        let data: Vec<f64> = (0..1000)
            .map(|i| (i as f64 * 0.7).sin() * 10.0 + 3.0)
            .collect();
        let mut whole = OnlineStats::new();
        for &x in &data {
            whole.push(x);
        }
        let mut left = OnlineStats::new();
        let mut right = OnlineStats::new();
        for &x in &data[..333] {
            left.push(x);
        }
        for &x in &data[333..] {
            right.push(x);
        }
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-10);
        assert!((left.variance() - whole.variance()).abs() < 1e-8);
        assert_eq!(left.min(), whole.min());
        assert_eq!(left.max(), whole.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = OnlineStats::new();
        a.push(1.0);
        a.push(2.0);
        let before = a.summary();
        a.merge(&OnlineStats::new());
        assert_eq!(a.summary(), before);

        let mut empty = OnlineStats::new();
        empty.merge(&a);
        assert_eq!(empty.summary(), before);
    }

    #[test]
    fn summary_of_slice() {
        let s = Summary::of(&[1.0, 2.0, 3.0]);
        assert_eq!(s.n, 3);
        assert!((s.mean - 2.0).abs() < 1e-12);
        assert!((s.std_dev - 1.0).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
    }

    #[test]
    fn ci_shrinks_with_more_data() {
        let mut small = OnlineStats::new();
        let mut large = OnlineStats::new();
        for i in 0..10 {
            small.push((i % 3) as f64);
        }
        for i in 0..1000 {
            large.push((i % 3) as f64);
        }
        assert!(large.ci95_half_width() < small.ci95_half_width());
    }

    #[test]
    fn numerically_stable_for_large_offsets() {
        // Welford should not lose the variance of small jitter on a huge mean.
        let mut s = OnlineStats::new();
        for i in 0..10_000 {
            s.push(1e9 + (i % 2) as f64);
        }
        // Sample variance of a balanced 0/1 split is n/4/(n-1) ≈ 0.25003.
        assert!(
            (s.variance() - 0.25).abs() < 1e-4,
            "variance {}",
            s.variance()
        );
    }
}
