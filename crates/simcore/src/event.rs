//! Deterministic event queue.
//!
//! A binary-heap priority queue keyed by `(time, sequence)`: events at equal
//! timestamps pop in insertion order, which makes runs reproducible
//! regardless of heap internals. Payloads are generic; the simulation layer
//! uses lightweight enums.
//!
//! Cancellation is handled by the *generation* pattern at the call site
//! (each server keeps a wake-generation counter and ignores stale wakes)
//! rather than by tombstones inside the queue — that keeps this structure
//! trivial and allocation-free per operation after warm-up.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An event scheduled at a point in simulated time.
#[derive(Clone, Debug)]
pub struct EventEntry<T> {
    /// When the event fires.
    pub time: SimTime,
    /// Global insertion sequence number; breaks timestamp ties FIFO.
    pub seq: u64,
    /// The event payload.
    pub payload: T,
}

impl<T> PartialEq for EventEntry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<T> Eq for EventEntry<T> {}

impl<T> PartialOrd for EventEntry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for EventEntry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest-first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A min-priority queue of timed events with FIFO tie-breaking.
#[derive(Clone, Debug)]
pub struct EventQueue<T> {
    heap: BinaryHeap<EventEntry<T>>,
    next_seq: u64,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Creates an empty queue with room for `cap` events.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(cap),
            next_seq: 0,
        }
    }

    /// Schedules `payload` at `time`. Panics on non-finite times — an
    /// infinite wake must be expressed by *not* scheduling.
    pub fn push(&mut self, time: SimTime, payload: T) {
        assert!(
            time.is_finite(),
            "cannot schedule an event at infinite time"
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(EventEntry { time, seq, payload });
    }

    /// Removes and returns the earliest event, or `None` if empty.
    pub fn pop(&mut self) -> Option<EventEntry<T>> {
        self.heap.pop()
    }

    /// The timestamp of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drops all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(3.0), "c");
        q.push(SimTime::from_secs(1.0), "a");
        q.push(SimTime::from_secs(2.0), "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(5.0);
        for i in 0..100 {
            q.push(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn interleaved_push_pop() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(10.0), 10);
        q.push(SimTime::from_secs(1.0), 1);
        assert_eq!(q.pop().unwrap().payload, 1);
        q.push(SimTime::from_secs(5.0), 5);
        q.push(SimTime::from_secs(0.5), 0);
        // 0.5 is in the "past" relative to popped 1.0 — the queue itself
        // doesn't enforce monotonicity; the simulation loop asserts it.
        assert_eq!(q.pop().unwrap().payload, 0);
        assert_eq!(q.pop().unwrap().payload, 5);
        assert_eq!(q.pop().unwrap().payload, 10);
        assert!(q.pop().is_none());
    }

    #[test]
    fn peek_time_matches_next_pop() {
        let mut q = EventQueue::new();
        assert!(q.peek_time().is_none());
        q.push(SimTime::from_secs(2.0), ());
        q.push(SimTime::from_secs(1.0), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(1.0)));
        q.pop();
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(2.0)));
    }

    #[test]
    fn len_and_clear() {
        let mut q = EventQueue::with_capacity(8);
        assert!(q.is_empty());
        q.push(SimTime::ZERO, 1);
        q.push(SimTime::ZERO, 2);
        assert_eq!(q.len(), 2);
        q.clear();
        assert!(q.is_empty());
    }

    #[test]
    #[should_panic(expected = "infinite time")]
    fn rejects_infinite_time() {
        let mut q = EventQueue::new();
        q.push(SimTime::FAR_FUTURE, ());
    }
}
