//! Deterministic event queue.
//!
//! A calendar queue (Brown 1988) keyed by `(time, sequence)`: pending
//! events hash into `buckets.len()` "days" by `floor(time / width) mod
//! days`, and a cursor walks one "year" of days per pop, so the common
//! case touches a handful of nearly-empty buckets instead of rebalancing
//! a heap. Events at equal timestamps pop in insertion order — the
//! explicit `seq` counter makes runs reproducible regardless of bucket
//! internals, which heap-based queues do not guarantee for free.
//!
//! Determinism contract: `pop` always returns the pending entry with the
//! minimum `(time, seq)` pair. Because `seq` is unique, that key is a
//! total order, so the pop sequence is a pure function of the push
//! sequence — bucket count, bucket width, and resize history cannot
//! change it.
//!
//! Resizing is hysteretic: the calendar grows at `len > 2·days` and
//! shrinks only below `days / 8`, so a workload hovering at one
//! threshold cannot alternate O(len) rebuilds. Width derivation samples
//! the *earliest* entries (see `rebuild`), and a pop that had to fall
//! back to the full far-future sweep re-centers the calendar on the
//! surviving tail — both guards exist because an alternating
//! near/far-future spacing pattern used to collapse the dense head into
//! one bucket and pay an O(len) scan on every pop.
//!
//! Cancellation is handled by the *generation* pattern at the call site
//! (each server keeps a wake-generation counter and ignores stale wakes)
//! rather than by tombstones inside the queue — that keeps this structure
//! trivial and allocation-free per operation after warm-up.

use crate::time::SimTime;
use std::cell::Cell;
use std::cmp::Ordering;

/// An event scheduled at a point in simulated time.
#[derive(Clone, Debug)]
pub struct EventEntry<T> {
    /// When the event fires.
    pub time: SimTime,
    /// Global insertion sequence number; breaks timestamp ties FIFO.
    pub seq: u64,
    /// The event payload.
    pub payload: T,
}

impl<T> PartialEq for EventEntry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<T> Eq for EventEntry<T> {}

impl<T> PartialOrd for EventEntry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for EventEntry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed (earliest-first), so entries drop into a max-heap or
        // `sort` + `pop` pattern unchanged from the old binary-heap days.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Fewest buckets the calendar ever holds.
const MIN_BUCKETS: usize = 8;
/// Narrowest bucket width (seconds); bounds the slot index range.
const MIN_WIDTH: f64 = 1e-9;
/// Head-sample size for width derivation: the earliest `WIDTH_SAMPLE`
/// entries set the working timescale, so one far-future outlier cannot
/// inflate the width and collapse the dense head into a single bucket.
const WIDTH_SAMPLE: usize = 64;

/// Work counters for the calendar's internal scans; used by regression
/// tests to pin amortized cost, not by the simulation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct QueueCounters {
    /// Entries examined across all `locate` scans.
    pub scanned: u64,
    /// Times `locate` fell back to the O(len) full sweep.
    pub sweeps: u64,
    /// Bucket-array rebuilds (grow, shrink, or sweep re-centering).
    pub rebuilds: u64,
}

/// A min-priority queue of timed events with FIFO tie-breaking, backed by
/// a calendar queue.
#[derive(Clone, Debug)]
pub struct EventQueue<T> {
    /// One unsorted `Vec` per calendar day.
    buckets: Vec<Vec<EventEntry<T>>>,
    /// Total pending entries across all buckets.
    len: usize,
    next_seq: u64,
    /// Seconds spanned by one bucket ("day length").
    width: f64,
    /// Absolute day index (`floor(time / width)`) the pop scan starts
    /// from. Invariant: no pending entry lives in an earlier day —
    /// `push` rewinds the cursor when scheduling into the past.
    cursor_slot: i64,
    /// Scan-work counters (`Cell` so `locate` can stay `&self`).
    scanned: Cell<u64>,
    sweeps: Cell<u64>,
    rebuilds: u64,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::with_capacity(0)
    }

    /// Creates an empty queue with room for `cap` events.
    pub fn with_capacity(cap: usize) -> Self {
        let days = (cap / 2).next_power_of_two().clamp(MIN_BUCKETS, 4096);
        EventQueue {
            buckets: (0..days).map(|_| Vec::new()).collect(),
            len: 0,
            next_seq: 0,
            width: 1.0,
            cursor_slot: 0,
            scanned: Cell::new(0),
            sweeps: Cell::new(0),
            rebuilds: 0,
        }
    }

    /// Absolute day index for `time` under the current width.
    fn slot_of(&self, time: SimTime) -> i64 {
        // `as i64` saturates on overflow, which keeps even absurd
        // timestamps ordered correctly (they all land in the last day and
        // the (time, seq) scan inside it still picks the true minimum).
        (time.as_secs() / self.width).floor() as i64
    }

    /// Schedules `payload` at `time`. Panics on non-finite times — an
    /// infinite wake must be expressed by *not* scheduling.
    pub fn push(&mut self, time: SimTime, payload: T) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.push_with_seq(time, seq, payload);
    }

    /// Schedules `payload` at `time` under an externally-assigned `seq`.
    /// Used by [`crate::sharded::ShardedQueue`], which allocates sequence
    /// numbers globally so the merged pop order across shard queues
    /// equals the single-queue order. The caller must keep `seq` unique
    /// and monotone across all queues sharing the namespace.
    pub(crate) fn push_with_seq(&mut self, time: SimTime, seq: u64, payload: T) {
        assert!(
            time.is_finite(),
            "cannot schedule an event at infinite time"
        );
        let slot = self.slot_of(time);
        // Scheduling into the past (relative to the last pop) is legal:
        // rewind the cursor so the scan cannot skip the new entry.
        if self.len == 0 || slot < self.cursor_slot {
            self.cursor_slot = slot;
        }
        let days = self.buckets.len();
        self.buckets[slot.rem_euclid(days as i64) as usize].push(EventEntry { time, seq, payload });
        self.len += 1;
        if self.len > 2 * days {
            self.rebuild(2 * days);
        }
    }

    /// Finds the pending entry with the minimum `(time, seq)` key:
    /// `(bucket index, position in bucket, its day, swept)`. Scans at
    /// most one calendar year from the cursor, then falls back to a
    /// direct sweep for sparse far-future tails (`swept = true`, so `pop`
    /// can re-center the calendar on the surviving tail).
    fn locate(&self) -> Option<(usize, usize, i64, bool)> {
        if self.len == 0 {
            return None;
        }
        let days = self.buckets.len() as i64;
        let mut scanned = 0u64;
        for offset in 0..days {
            let slot = self.cursor_slot + offset;
            let bucket = slot.rem_euclid(days) as usize;
            let mut best: Option<usize> = None;
            scanned += self.buckets[bucket].len() as u64;
            for (pos, e) in self.buckets[bucket].iter().enumerate() {
                // Entries from later years share the bucket; skip them.
                // The integer day test is exact, unlike a `time < edge`
                // comparison which can mis-round at bucket boundaries.
                if self.slot_of(e.time) > slot {
                    continue;
                }
                let better = match best {
                    None => true,
                    Some(b) => {
                        let cur = &self.buckets[bucket][b];
                        (e.time, e.seq) < (cur.time, cur.seq)
                    }
                };
                if better {
                    best = Some(pos);
                }
            }
            if let Some(pos) = best {
                self.scanned.set(self.scanned.get() + scanned);
                return Some((bucket, pos, slot, false));
            }
        }
        // Nothing within a year of the cursor: sweep everything for the
        // global minimum. O(len); the caller re-centers afterwards so a
        // sparse far-future tail cannot pay this price per pop.
        self.sweeps.set(self.sweeps.get() + 1);
        self.scanned
            .set(self.scanned.get() + scanned + self.len as u64);
        let mut best: Option<(usize, usize)> = None;
        for (b, bucket) in self.buckets.iter().enumerate() {
            for (pos, e) in bucket.iter().enumerate() {
                let better = match best {
                    None => true,
                    Some((bb, bp)) => {
                        let cur = &self.buckets[bb][bp];
                        (e.time, e.seq) < (cur.time, cur.seq)
                    }
                };
                if better {
                    best = Some((b, pos));
                }
            }
        }
        best.map(|(b, pos)| (b, pos, self.slot_of(self.buckets[b][pos].time), true))
    }

    /// Removes and returns the earliest event, or `None` if empty.
    pub fn pop(&mut self) -> Option<EventEntry<T>> {
        let (bucket, pos, slot, swept) = self.locate()?;
        self.cursor_slot = slot;
        let entry = self.buckets[bucket].swap_remove(pos);
        self.len -= 1;
        let days = self.buckets.len();
        if swept && self.len > 1 {
            // The head the width was derived from has drained and the
            // survivors live beyond a calendar year: re-derive the width
            // from them so the next pops walk days again instead of
            // sweeping. Same O(len) as the sweep just paid, and it
            // converts every following pop back to the cheap path.
            self.rebuild(days);
        } else if days > MIN_BUCKETS && self.len < days / 8 {
            self.rebuild(days / 2);
        }
        Some(entry)
    }

    /// The timestamp of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.locate()
            .map(|(b, pos, _, _)| self.buckets[b][pos].time)
    }

    /// The full `(time, seq)` key of the earliest pending event. Keys are
    /// totally ordered (seq is unique), which is what the cross-shard
    /// barrier compares when deciding how far a shard may advance.
    pub fn peek_key(&self) -> Option<(SimTime, u64)> {
        self.locate().map(|(b, pos, _, _)| {
            let e = &self.buckets[b][pos];
            (e.time, e.seq)
        })
    }

    /// Internal scan-work counters (see [`QueueCounters`]).
    pub fn counters(&self) -> QueueCounters {
        QueueCounters {
            scanned: self.scanned.get(),
            sweeps: self.sweeps.get(),
            rebuilds: self.rebuilds,
        }
    }

    /// Redistributes every entry over `days` buckets, re-deriving the
    /// bucket width from the observed inter-event spacing (Brown's rule
    /// of thumb: a day should hold a few events on average). The width
    /// comes from the *earliest* [`WIDTH_SAMPLE`] entries: a global
    /// `(max - min) / len` estimate lets one far-future outlier inflate
    /// the width until the whole dense head lands in a single bucket and
    /// every pop degenerates to an O(len) bucket scan.
    fn rebuild(&mut self, days: usize) {
        self.rebuilds += 1;
        let mut all: Vec<EventEntry<T>> = Vec::with_capacity(self.len);
        for b in &mut self.buckets {
            all.append(b);
        }
        if all.len() >= 2 {
            let mut times: Vec<f64> = all.iter().map(|e| e.time.as_secs()).collect();
            let k = times.len().min(WIDTH_SAMPLE);
            times.select_nth_unstable_by(k - 1, f64::total_cmp);
            let head = &mut times[..k];
            head.sort_by(f64::total_cmp);
            let head_span = head[k - 1] - head[0];
            if head_span > 0.0 {
                self.width = (2.0 * head_span / k as f64).max(MIN_WIDTH);
            } else {
                // Degenerate head (an equal-time burst): fall back to the
                // global span so the tail still spreads over the year.
                let min_t = times[0];
                let max_t = times.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                if max_t > min_t {
                    self.width = (2.0 * (max_t - min_t) / all.len() as f64).max(MIN_WIDTH);
                }
            }
        }
        if self.buckets.len() != days {
            self.buckets.resize_with(days, Vec::new);
            self.buckets.truncate(days);
        }
        // Width changed, so every slot assignment changes: realign the
        // cursor to the earliest entry's day to restore the invariant.
        if let Some(first) = all.first() {
            let mut min_slot = self.slot_of(first.time);
            for e in &all[1..] {
                min_slot = min_slot.min(self.slot_of(e.time));
            }
            self.cursor_slot = min_slot;
        }
        for e in all {
            let bucket = self.slot_of(e.time).rem_euclid(days as i64) as usize;
            self.buckets[bucket].push(e);
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Drops all pending events. The sequence counter keeps counting, so
    /// FIFO ordering is preserved across a clear.
    pub fn clear(&mut self) {
        for b in &mut self.buckets {
            b.clear();
        }
        self.len = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(3.0), "c");
        q.push(SimTime::from_secs(1.0), "a");
        q.push(SimTime::from_secs(2.0), "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(5.0);
        for i in 0..100 {
            q.push(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn interleaved_push_pop() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(10.0), 10);
        q.push(SimTime::from_secs(1.0), 1);
        assert_eq!(q.pop().unwrap().payload, 1);
        q.push(SimTime::from_secs(5.0), 5);
        q.push(SimTime::from_secs(0.5), 0);
        // 0.5 is in the "past" relative to popped 1.0 — the queue itself
        // doesn't enforce monotonicity; the simulation loop asserts it.
        assert_eq!(q.pop().unwrap().payload, 0);
        assert_eq!(q.pop().unwrap().payload, 5);
        assert_eq!(q.pop().unwrap().payload, 10);
        assert!(q.pop().is_none());
    }

    #[test]
    fn peek_time_matches_next_pop() {
        let mut q = EventQueue::new();
        assert!(q.peek_time().is_none());
        q.push(SimTime::from_secs(2.0), ());
        q.push(SimTime::from_secs(1.0), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(1.0)));
        q.pop();
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(2.0)));
    }

    #[test]
    fn len_and_clear() {
        let mut q = EventQueue::with_capacity(8);
        assert!(q.is_empty());
        q.push(SimTime::ZERO, 1);
        q.push(SimTime::ZERO, 2);
        assert_eq!(q.len(), 2);
        q.clear();
        assert!(q.is_empty());
    }

    #[test]
    #[should_panic(expected = "infinite time")]
    fn rejects_infinite_time() {
        let mut q = EventQueue::new();
        q.push(SimTime::FAR_FUTURE, ());
    }

    /// A trivially-correct model: pops the minimum `(time, seq)` pair.
    struct ModelQueue {
        pending: Vec<(SimTime, u64, u64)>,
        next_seq: u64,
    }

    impl ModelQueue {
        fn new() -> Self {
            ModelQueue {
                pending: Vec::new(),
                next_seq: 0,
            }
        }
        fn push(&mut self, time: SimTime, payload: u64) {
            self.pending.push((time, self.next_seq, payload));
            self.next_seq += 1;
        }
        fn pop(&mut self) -> Option<(SimTime, u64)> {
            let best = self
                .pending
                .iter()
                .enumerate()
                .min_by_key(|(_, &(t, s, _))| (t, s))?
                .0;
            let (t, _, p) = self.pending.swap_remove(best);
            Some((t, p))
        }
    }

    /// The seq-counter FIFO contract, differentially: an arbitrary
    /// deterministic push/pop interleaving (duplicate timestamps, pushes
    /// into the past, bursts big enough to force several grows and
    /// shrinks) must match the reference model event for event.
    #[test]
    fn fifo_contract_matches_reference_model() {
        let mut rng = crate::Rng::new(0x5EC_C0FFEE);
        let mut q = EventQueue::new();
        let mut model = ModelQueue::new();
        let mut payload = 0u64;
        for round in 0..2000 {
            if rng.chance(0.6) || q.is_empty() {
                // Coarse quantisation makes duplicate timestamps common.
                let t = SimTime::from_secs((rng.range_f64(0.0, 50.0) * 4.0).floor() / 4.0);
                q.push(t, payload);
                model.push(t, payload);
                payload += 1;
                if round % 7 == 0 {
                    // Same-time burst: FIFO among equals is the contract.
                    for _ in 0..3 {
                        q.push(t, payload);
                        model.push(t, payload);
                        payload += 1;
                    }
                }
            } else {
                let got = q.pop().map(|e| (e.time, e.payload));
                assert_eq!(got, model.pop(), "divergence at round {round}");
                assert_eq!(
                    q.peek_time(),
                    model
                        .pending
                        .iter()
                        .map(|&(t, s, _)| (t, s))
                        .min()
                        .map(|(t, _)| t)
                );
            }
            assert_eq!(q.len(), model.pending.len());
        }
        while let Some(e) = q.pop() {
            assert_eq!(Some((e.time, e.payload)), model.pop());
        }
        assert!(model.pop().is_none());
    }

    /// FIFO among equal timestamps survives internal resizes: a burst of
    /// 1000 same-time events forces several bucket-doubling rebuilds on
    /// the way in and halving rebuilds on the way out, none of which may
    /// reorder the tie-broken sequence.
    #[test]
    fn fifo_contract_survives_resizes() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(7.25);
        for i in 0..1000u32 {
            q.push(t, i);
        }
        // Interleave a distinct earlier and later event to exercise the
        // cursor across the burst.
        q.push(SimTime::from_secs(1.0), u32::MAX);
        q.push(SimTime::from_secs(90.0), u32::MAX - 1);
        assert_eq!(q.pop().unwrap().payload, u32::MAX);
        for i in 0..1000u32 {
            assert_eq!(q.pop().unwrap().payload, i, "tie order broken at {i}");
        }
        assert_eq!(q.pop().unwrap().payload, u32::MAX - 1);
        assert!(q.is_empty());
    }

    /// Far-future outliers (beyond one calendar year from the cursor)
    /// exercise the direct-sweep fallback and still pop in key order.
    #[test]
    fn far_future_events_pop_in_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_hours(2.0), "soak");
        q.push(SimTime::from_secs(0.5), "now");
        q.push(SimTime::from_hours(2.0), "soak2");
        assert_eq!(q.pop().unwrap().payload, "now");
        assert_eq!(q.pop().unwrap().payload, "soak");
        assert_eq!(q.pop().unwrap().payload, "soak2");
    }

    /// The pathological alternating-spacing workload: a dense head of
    /// closely-spaced events interleaved with far-future outliers. Before
    /// the head-sampled width derivation, every rebuild set
    /// `width ≈ 2·(max−min)/len`, which the outliers inflated until the
    /// whole head hashed into a single bucket — every pop then scanned
    /// O(len) entries. This pins the amortized scan cost.
    #[test]
    fn alternating_spacing_stays_amortized() {
        let mut q = EventQueue::new();
        let mut ops = 0u64;
        // Dense head: 1 s spacing. Outliers: ~30 years out, one per 40
        // near events, far enough that the head's year never reaches
        // them.
        for i in 0..4000u64 {
            q.push(SimTime::from_secs(i as f64), i);
            ops += 1;
            if i % 40 == 0 {
                q.push(SimTime::from_secs(1e9 + i as f64), i);
                ops += 1;
            }
        }
        let mut last = (SimTime::ZERO, 0);
        while let Some(e) = q.pop() {
            ops += 1;
            assert!((e.time, e.seq) >= last, "order violated");
            last = (e.time, e.seq);
        }
        let c = q.counters();
        assert!(
            c.scanned < 64 * ops,
            "amortized scan cost blew up: {} entries examined over {ops} ops ({c:?})",
            c.scanned
        );
        // Rebuilds stay logarithmic-ish in the population, not per-op.
        assert!(c.rebuilds < 64, "resize thrash: {c:?}");
    }

    /// A sparse far-future tail (the sweep fallback) must re-center
    /// instead of sweeping once per pop: total sweeps stay O(1)-ish even
    /// with hundreds of events spread over decades.
    #[test]
    fn far_future_tail_does_not_sweep_per_pop() {
        let mut q = EventQueue::new();
        // Dense head that fixes a ~seconds-scale width...
        for i in 0..500u64 {
            q.push(SimTime::from_secs(i as f64 * 0.25), i);
        }
        // ...and a tail of 400 events spread over ~12 years.
        for i in 0..400u64 {
            q.push(SimTime::from_secs(1e6 + i as f64 * 1e3), 1000 + i);
        }
        let mut n = 0;
        let mut last = (SimTime::ZERO, 0);
        while let Some(e) = q.pop() {
            assert!((e.time, e.seq) >= last);
            last = (e.time, e.seq);
            n += 1;
        }
        assert_eq!(n, 900);
        let c = q.counters();
        assert!(
            c.sweeps <= 4,
            "far-future tail swept {} times over 900 pops ({c:?})",
            c.sweeps
        );
    }

    /// Hysteresis: a push/pop workload hovering exactly at the growth
    /// threshold must not rebuild on every oscillation.
    #[test]
    fn resize_hysteresis_under_alternating_push_pop() {
        let mut q = EventQueue::new();
        // Fill to just past a growth trigger so `days` settles.
        for i in 0..1025u64 {
            q.push(SimTime::from_secs(i as f64), i);
        }
        let base = q.counters().rebuilds;
        // Alternate push/pop right at the settled size for many rounds.
        for i in 0..2000u64 {
            q.push(SimTime::from_secs(2000.0 + i as f64), i);
            q.pop();
        }
        let c = q.counters();
        assert!(
            c.rebuilds - base <= 2,
            "alternating push/pop rebuilt {} times ({c:?})",
            c.rebuilds - base
        );
    }

    /// `clear` must not reset the sequence counter: events pushed after a
    /// clear still order FIFO against nothing, and a fresh same-time batch
    /// stays in its own insertion order.
    #[test]
    fn clear_preserves_seq_monotonicity() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(1.0), 0);
        q.clear();
        let t = SimTime::from_secs(1.0);
        for i in 1..=5 {
            q.push(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, vec![1, 2, 3, 4, 5]);
    }
}
