//! Deterministic discrete-event simulation substrate.
//!
//! This crate provides the domain-agnostic machinery that the rest of the
//! workspace builds on:
//!
//! * [`time`] — a strongly-typed simulation clock ([`SimTime`]) measured in
//!   seconds, with helpers for the units the paper uses (minutes, hours).
//! * [`event`] — a deterministic event queue ([`EventQueue`]) with strict
//!   FIFO tie-breaking so that runs are bit-for-bit reproducible.
//! * [`sharded`] — per-shard event queues ([`ShardedQueue`]) under a
//!   conservative lower-bound-timestamp barrier, preserving the global
//!   pop order for any shard count.
//! * [`parallel`] — epochs: simultaneous barrier-to-barrier bursts for
//!   every shard below a common horizon ([`WorkerQueue`]), merged back
//!   in global key order so outcomes stay bit-identical for any shard
//!   *and* thread count.
//! * [`rng`] — a self-contained xoshiro256\*\* PRNG ([`Rng`]) seeded via
//!   SplitMix64. We implement the generator ourselves (rather than pulling
//!   in `rand`) so that experiment outputs are stable across platforms and
//!   dependency upgrades.
//! * [`dist`] — the distributions the paper's workload needs: exponential
//!   inter-arrival times, uniform video lengths, and the Zipf-like
//!   popularity law `p_i = c / i^(1-θ)`, sampled in O(1) via Vose's alias
//!   method.
//! * [`stats`] — streaming (Welford) statistics and trial summaries.
//!
//! Everything here is deterministic given a seed; no global state, no
//! wall-clock access.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dist;
pub mod event;
pub mod parallel;
pub mod rng;
pub mod sharded;
pub mod stats;
pub mod time;

pub use dist::{AliasTable, Exponential, UniformRange, ZipfLike};
pub use event::{EventEntry, EventQueue, QueueCounters};
pub use parallel::{EpochToken, WorkerQueue};
pub use rng::Rng;
pub use sharded::{RunToken, ShardedQueue};
pub use stats::{OnlineStats, Summary};
pub use time::SimTime;
