//! Simulation time.
//!
//! Time is a thin newtype over `f64` seconds. The paper works in a mix of
//! units (videos are 10 minutes to 2 hours, trials are 1000 hours, rates
//! are Mb/s), so [`SimTime`] offers constructors and accessors for each and
//! keeps the arithmetic honest at the type level: a `SimTime` is a point on
//! the simulation clock, and differences/offsets are plain `f64` seconds.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, in seconds since the start of the run.
///
/// `SimTime` is totally ordered (the simulation never produces NaN
/// timestamps; constructors debug-assert this) and cheap to copy.
#[derive(Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize, Default)]
pub struct SimTime(f64);

impl SimTime {
    /// The origin of the simulation clock.
    pub const ZERO: SimTime = SimTime(0.0);

    /// A time later than any event the simulation will schedule.
    pub const FAR_FUTURE: SimTime = SimTime(f64::INFINITY);

    /// Creates a time from seconds.
    #[inline]
    pub fn from_secs(secs: f64) -> Self {
        debug_assert!(!secs.is_nan(), "SimTime must not be NaN");
        SimTime(secs)
    }

    /// Creates a time from minutes.
    #[inline]
    pub fn from_mins(mins: f64) -> Self {
        Self::from_secs(mins * 60.0)
    }

    /// Creates a time from hours.
    #[inline]
    pub fn from_hours(hours: f64) -> Self {
        Self::from_secs(hours * 3600.0)
    }

    /// This time as seconds since the origin.
    #[inline]
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// This time as minutes since the origin.
    #[inline]
    pub fn as_mins(self) -> f64 {
        self.0 / 60.0
    }

    /// This time as hours since the origin.
    #[inline]
    pub fn as_hours(self) -> f64 {
        self.0 / 3600.0
    }

    /// `true` if this is a finite point in time (not [`SimTime::FAR_FUTURE`]).
    #[inline]
    pub fn is_finite(self) -> bool {
        self.0.is_finite()
    }

    /// Returns the earlier of two times.
    #[inline]
    pub fn min(self, other: SimTime) -> SimTime {
        if other.0 < self.0 {
            other
        } else {
            self
        }
    }

    /// Returns the later of two times.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        if other.0 > self.0 {
            other
        } else {
            self
        }
    }
}

impl Eq for SimTime {}

#[allow(clippy::derive_ord_xor_partial_ord)]
impl Ord for SimTime {
    #[inline]
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Timestamps are never NaN (constructors assert), so total_cmp
        // agrees with the IEEE order on the values we produce.
        self.0.total_cmp(&other.0)
    }
}

impl PartialOrd<f64> for SimTime {
    #[inline]
    fn partial_cmp(&self, other: &f64) -> Option<std::cmp::Ordering> {
        self.0.partial_cmp(other)
    }
}

impl PartialEq<f64> for SimTime {
    #[inline]
    fn eq(&self, other: &f64) -> bool {
        self.0 == *other
    }
}

impl Add<f64> for SimTime {
    type Output = SimTime;
    /// Advances the clock by `rhs` seconds.
    #[inline]
    fn add(self, rhs: f64) -> SimTime {
        SimTime::from_secs(self.0 + rhs)
    }
}

impl AddAssign<f64> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: f64) {
        self.0 += rhs;
        debug_assert!(!self.0.is_nan());
    }
}

impl Sub for SimTime {
    type Output = f64;
    /// The elapsed seconds from `rhs` to `self`.
    #[inline]
    fn sub(self, rhs: SimTime) -> f64 {
        self.0 - rhs.0
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 3600.0 {
            write!(f, "{:.2}h", self.as_hours())
        } else if self.0 >= 60.0 {
            write!(f, "{:.2}m", self.as_mins())
        } else {
            write!(f, "{:.3}s", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_conversions_round_trip() {
        let t = SimTime::from_hours(2.5);
        assert!((t.as_secs() - 9000.0).abs() < 1e-12);
        assert!((t.as_mins() - 150.0).abs() < 1e-12);
        assert!((t.as_hours() - 2.5).abs() < 1e-12);
        let m = SimTime::from_mins(90.0);
        assert!((m.as_hours() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn ordering_is_total_and_sane() {
        let a = SimTime::from_secs(1.0);
        let b = SimTime::from_secs(2.0);
        assert!(a < b);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
        assert!(SimTime::ZERO < SimTime::FAR_FUTURE);
        assert!(!SimTime::FAR_FUTURE.is_finite());
        assert!(a.is_finite());
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_secs(10.0);
        let b = a + 5.0;
        assert_eq!(b.as_secs(), 15.0);
        assert_eq!(b - a, 5.0);
        let mut c = a;
        c += 2.5;
        assert_eq!(c.as_secs(), 12.5);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(format!("{}", SimTime::from_secs(5.0)), "5.000s");
        assert_eq!(format!("{}", SimTime::from_secs(120.0)), "2.00m");
        assert_eq!(format!("{}", SimTime::from_hours(3.0)), "3.00h");
    }

    #[test]
    fn comparison_with_f64() {
        let t = SimTime::from_secs(7.0);
        assert!(t > 6.0);
        assert!(t == 7.0);
        assert!(t < 8.0);
    }
}
