//! Property tests for the simulation substrate.

use proptest::prelude::*;
use sct_simcore::{AliasTable, EventQueue, OnlineStats, Rng, SimTime, Summary, ZipfLike};

proptest! {
    /// The event queue pops strictly by (time, insertion order) — i.e. a
    /// stable sort of the pushed entries.
    #[test]
    fn event_queue_is_a_stable_time_sort(times in prop::collection::vec(0.0f64..1e6, 0..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::from_secs(t), i);
        }
        let mut expected: Vec<(f64, usize)> =
            times.iter().copied().enumerate().map(|(i, t)| (t, i)).collect();
        expected.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        let mut popped = Vec::new();
        while let Some(e) = q.pop() {
            popped.push((e.time.as_secs(), e.payload));
        }
        prop_assert_eq!(popped, expected);
    }

    /// Welford merge is equivalent to sequential accumulation for any
    /// split point.
    #[test]
    fn stats_merge_any_split(
        data in prop::collection::vec(-1e6f64..1e6, 1..300),
        split_frac in 0.0f64..1.0,
    ) {
        let split = ((data.len() as f64) * split_frac) as usize;
        let mut whole = OnlineStats::new();
        for &x in &data {
            whole.push(x);
        }
        let mut left = OnlineStats::new();
        let mut right = OnlineStats::new();
        for &x in &data[..split] {
            left.push(x);
        }
        for &x in &data[split..] {
            right.push(x);
        }
        left.merge(&right);
        prop_assert_eq!(left.count(), whole.count());
        prop_assert!((left.mean() - whole.mean()).abs() <= 1e-6 * (1.0 + whole.mean().abs()));
        prop_assert!(
            (left.variance() - whole.variance()).abs()
                <= 1e-6 * (1.0 + whole.variance().abs())
        );
        prop_assert_eq!(left.min(), whole.min());
        prop_assert_eq!(left.max(), whole.max());
    }

    /// Summary::of agrees with the accumulator and orders its fields.
    #[test]
    fn summary_fields_are_consistent(data in prop::collection::vec(-1e3f64..1e3, 1..100)) {
        let s = Summary::of(&data);
        prop_assert_eq!(s.n, data.len() as u64);
        prop_assert!(s.min <= s.mean + 1e-9 && s.mean <= s.max + 1e-9);
        prop_assert!(s.std_dev >= 0.0);
        prop_assert!(s.ci95 >= 0.0);
    }

    /// The paper's Zipf-like law is a valid pmf for any finite skew, and
    /// non-increasing in rank throughout the studied range θ ≤ 1
    /// (θ = 1 is uniform; beyond it the exponent flips sign and the law
    /// would favour the tail — outside the paper's domain).
    #[test]
    fn zipf_is_a_monotone_pmf(n in 1usize..400, theta in -2.5f64..=1.0) {
        let z = ZipfLike::new(n, theta);
        let sum: f64 = z.probs().iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-9);
        for w in z.probs().windows(2) {
            prop_assert!(w[0] >= w[1] - 1e-15);
        }
        prop_assert!(z.probs().iter().all(|&p| p > 0.0));
    }

    /// Alias sampling stays in range and never returns a zero-weight
    /// category.
    #[test]
    fn alias_table_respects_support(
        weights in prop::collection::vec(0.0f64..10.0, 1..64),
        seed in any::<u64>(),
    ) {
        prop_assume!(weights.iter().any(|&w| w > 1e-9));
        let t = AliasTable::new(&weights);
        let mut rng = Rng::new(seed);
        for _ in 0..256 {
            let i = t.sample(&mut rng);
            prop_assert!(i < weights.len());
            prop_assert!(
                weights[i] > 0.0,
                "sampled zero-weight category {} (weights {:?})",
                i,
                weights
            );
        }
    }

    /// below(n) is always within range, for any n and seed.
    #[test]
    fn rng_below_in_range(n in 1usize..1_000_000, seed in any::<u64>()) {
        let mut rng = Rng::new(seed);
        for _ in 0..64 {
            prop_assert!(rng.below(n) < n);
        }
    }

    /// Shuffling preserves multiset contents.
    #[test]
    fn shuffle_is_permutation(mut v in prop::collection::vec(any::<i32>(), 0..100), seed in any::<u64>()) {
        let mut sorted_before = v.clone();
        sorted_before.sort_unstable();
        let mut rng = Rng::new(seed);
        rng.shuffle(&mut v);
        v.sort_unstable();
        prop_assert_eq!(v, sorted_before);
    }

    /// Forked streams are reproducible functions of (parent seed, stream).
    #[test]
    fn fork_reproducible(seed in any::<u64>(), stream in any::<u64>()) {
        let a: Vec<u64> = {
            let mut r = Rng::new(seed).fork(stream);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = Rng::new(seed).fork(stream);
            (0..8).map(|_| r.next_u64()).collect()
        };
        prop_assert_eq!(a, b);
    }

    /// sample_indices returns exactly k distinct in-range indices.
    #[test]
    fn sample_indices_contract(n in 1usize..64, frac in 0.0f64..1.0, seed in any::<u64>()) {
        let k = ((n as f64) * frac) as usize;
        let mut rng = Rng::new(seed);
        let s = rng.sample_indices(n, k);
        prop_assert_eq!(s.len(), k);
        let mut d = s.clone();
        d.sort_unstable();
        d.dedup();
        prop_assert_eq!(d.len(), k);
        prop_assert!(s.iter().all(|&i| i < n));
    }
}
