//! Property test for the parallel epoch protocol: for random
//! push/pop/foreign-push schedules, the full epoch + classic-run loop
//! over a [`ShardedQueue`] visits exactly the plain [`EventQueue`]'s
//! pop order (extends the sharded `barrier_matches_single_queue`
//! property to the threaded path).
//!
//! The harness mirrors how `sct-core` drives the queue: epochs are
//! attempted until no shard is electable, then one classic run, until
//! the queue drains. Scripted follow-ups exercise every push kind —
//! own-shard pushes below and above the horizon, and foreign pushes at
//! or above it. Foreign pushes are gated on the epoch being bounded
//! (`WorkerQueue::horizon().is_some()`); the oracle mirrors that gate
//! with "initial plane events not yet popped", which is equivalent:
//! an epoch event precedes the plane's head in global order, so the
//! head is still unpopped exactly when the horizon exists.

use proptest::prelude::*;
use sct_simcore::{EventQueue, ShardedQueue, SimTime, WorkerQueue};

/// One generated seed event: raw shard pick, time, own-push delay,
/// foreign-push delay. The vendored proptest has no `Option` strategy,
/// so negative delays encode "no push".
type Entry = (usize, f64, f64, f64);

fn delay(d: f64) -> Option<f64> {
    (d >= 0.0).then_some(d)
}

/// Foreign pushes land at `FBASE + now + d`, above every initial plane
/// time (< 1000) — hence at or above any epoch horizon.
const FBASE: f64 = 1000.0;

/// The follow-up rule for initial event `id` (pushed events never push,
/// bounding the recursion). Returns (own push time, foreign push
/// (target, time)). Plane events never push, so the plane's times stay
/// below `FBASE` for the whole run.
fn script(
    id: u32,
    now: SimTime,
    entries: &[Entry],
    shards: &[usize],
    n_shards: usize,
    foreign_ok: bool,
) -> (Option<SimTime>, Option<(usize, SimTime)>) {
    let Some(&(_, _, own_d, foreign_d)) = entries.get(id as usize) else {
        return (None, None); // a pushed event: no follow-ups
    };
    let my = shards[id as usize];
    if my == 0 {
        return (None, None);
    }
    let own = delay(own_d).map(|d| now + d);
    let foreign = delay(foreign_d).and_then(|d| {
        if !foreign_ok {
            return None;
        }
        // Deterministic non-plane target other than my own shard.
        let candidates: Vec<usize> = (1..n_shards).filter(|&s| s != my).collect();
        if candidates.is_empty() {
            return None;
        }
        let target = candidates[id as usize % candidates.len()];
        Some((target, SimTime::from_secs(FBASE) + (now.as_secs() + d)))
    });
    (own, foreign)
}

/// Ids of pushed events, unique per (parent, kind) since only initial
/// ids (< entries.len()) push.
fn own_id(entries: &[Entry], parent: u32) -> u32 {
    entries.len() as u32 + 2 * parent
}
fn foreign_id(entries: &[Entry], parent: u32) -> u32 {
    entries.len() as u32 + 2 * parent + 1
}

fn shard_assignment(entries: &[Entry], n_shards: usize) -> Vec<usize> {
    entries.iter().map(|&(raw, ..)| raw % n_shards).collect()
}

/// The oracle: one plain queue, same seed pushes, same scripts, popped
/// in the global total order.
fn run_oracle(entries: &[Entry], n_shards: usize) -> Vec<(SimTime, u32)> {
    let shards = shard_assignment(entries, n_shards);
    let mut plane_remaining = shards.iter().filter(|&&s| s == 0).count();
    let mut q = EventQueue::new();
    for (id, &(_, t, ..)) in entries.iter().enumerate() {
        q.push(SimTime::from_secs(t), id as u32);
    }
    let mut visits = Vec::new();
    while let Some(e) = q.pop() {
        let id = e.payload;
        if (id as usize) < shards.len() && shards[id as usize] == 0 {
            plane_remaining -= 1;
        }
        let (own, foreign) = script(id, e.time, entries, &shards, n_shards, plane_remaining > 0);
        if let Some(t) = own {
            q.push(t, own_id(entries, id));
        }
        if let Some((_, t)) = foreign {
            q.push(t, foreign_id(entries, id));
        }
        visits.push((e.time, id));
    }
    visits
}

/// The parallel runner: epochs until no shard is electable, then one
/// classic run, until the queue drains. `rev` flips the order bursts
/// execute in (the outcome must not care).
fn run_parallel(entries: &[Entry], n_shards: usize, rev: bool) -> Vec<(SimTime, u32)> {
    let shards = shard_assignment(entries, n_shards);
    let mut plane_remaining = shards.iter().filter(|&&s| s == 0).count();
    let mut q = ShardedQueue::new(n_shards, 8);
    for (id, &(_, t, ..)) in entries.iter().enumerate() {
        q.push(shards[id], SimTime::from_secs(t), id as u32);
    }
    let mut visits: Vec<(SimTime, u32)> = Vec::new();
    loop {
        while let Some(token) = q.begin_epoch(0) {
            let n = token.n_elected();
            let mut shells: Vec<WorkerQueue<u32, u32>> =
                (0..n).map(|_| WorkerQueue::new()).collect();
            for (i, w) in shells.iter_mut().enumerate() {
                q.load_worker(&token, i, w);
            }
            // Bursts share nothing, so any execution order must merge
            // identically; `rev` exercises two of them.
            let order: Vec<usize> = if rev {
                (0..n).rev().collect()
            } else {
                (0..n).collect()
            };
            for &i in &order {
                let w = &mut shells[i];
                while let Some((now, id)) = w.pop() {
                    let foreign_ok = w.horizon().is_some();
                    let (own, foreign) = script(id, now, entries, &shards, n_shards, foreign_ok);
                    if let Some(t) = own {
                        w.push(t, own_id(entries, id));
                    }
                    if let Some((target, t)) = foreign {
                        w.push_foreign(target, t, foreign_id(entries, id));
                    }
                    w.record(id);
                }
            }
            let mut refs: Vec<&mut WorkerQueue<u32, u32>> = shells.iter_mut().collect();
            q.end_epoch(token, &mut refs, |_, time, &id| visits.push((time, id)));
        }
        let Some(tok) = q.begin_run() else { break };
        while let Some(e) = q.pop_run(&tok) {
            let id = e.payload;
            if (id as usize) < shards.len() && shards[id as usize] == 0 {
                plane_remaining -= 1;
            }
            let (own, foreign) =
                script(id, e.time, entries, &shards, n_shards, plane_remaining > 0);
            if let Some(t) = own {
                q.push(shards[id as usize], t, own_id(entries, id));
            }
            if let Some((target, t)) = foreign {
                q.push(target, t, foreign_id(entries, id));
            }
            visits.push((e.time, id));
        }
        q.end_run(tok);
    }
    assert!(q.is_empty(), "parallel runner left events behind");
    visits
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// For any seed schedule, shard count, and burst execution order,
    /// the parallel runner's merged visit order equals the plain
    /// single-queue pop order, event for event.
    #[test]
    fn parallel_runner_matches_the_single_queue(
        n_shards in 2usize..5,
        entries in prop::collection::vec(
            // Negative delay = no push (~1/3 of draws each).
            (0usize..8, 0.0f64..1000.0, -25.0f64..50.0, -25.0f64..50.0),
            0..40,
        ),
        rev in any::<bool>(),
    ) {
        let expected = run_oracle(&entries, n_shards);
        let got = run_parallel(&entries, n_shards, rev);
        prop_assert_eq!(got, expected);
    }
}
