//! Fairness metrics for per-server load distributions.

/// Jain's fairness index: `(Σx)² / (n · Σx²)`.
///
/// 1.0 means perfectly even values; `1/n` means one server carries
/// everything. Used to quantify how evenly the cluster's servers are
/// utilized, e.g. under heterogeneity or skewed placements.
///
/// ```
/// use sct_analysis::fairness::jain_index;
/// assert_eq!(jain_index(&[1.0, 1.0, 1.0, 1.0]), 1.0);
/// assert_eq!(jain_index(&[1.0, 0.0, 0.0, 0.0]), 0.25);
/// ```
pub fn jain_index(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "fairness of nothing is undefined");
    assert!(
        values.iter().all(|&v| v >= 0.0),
        "fairness is defined for non-negative loads"
    );
    let sum: f64 = values.iter().sum();
    let sum_sq: f64 = values.iter().map(|&v| v * v).sum();
    if sum_sq == 0.0 {
        // All zeros: every server is equally (un)used.
        return 1.0;
    }
    sum * sum / (values.len() as f64 * sum_sq)
}

/// Max/min ratio of a load vector (∞ if some value is zero but not all).
pub fn max_min_ratio(values: &[f64]) -> f64 {
    assert!(!values.is_empty());
    let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
    if min == 0.0 {
        if max == 0.0 {
            1.0
        } else {
            f64::INFINITY
        }
    } else {
        max / min
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jain_bounds() {
        // Always within [1/n, 1].
        let cases: [&[f64]; 4] = [
            &[5.0, 5.0, 5.0],
            &[1.0, 2.0, 3.0],
            &[10.0, 0.1, 0.1],
            &[0.9, 0.91, 0.89, 0.95],
        ];
        for v in cases {
            let j = jain_index(v);
            assert!(j <= 1.0 + 1e-12);
            assert!(j >= 1.0 / v.len() as f64 - 1e-12);
        }
    }

    #[test]
    fn jain_detects_imbalance_ordering() {
        let even = jain_index(&[0.9, 0.9, 0.9]);
        let mild = jain_index(&[0.8, 0.9, 1.0]);
        let harsh = jain_index(&[0.1, 0.9, 1.0]);
        assert!(even > mild && mild > harsh);
    }

    #[test]
    fn jain_all_zero_is_fair() {
        assert_eq!(jain_index(&[0.0, 0.0]), 1.0);
    }

    #[test]
    fn max_min_ratios() {
        assert_eq!(max_min_ratio(&[2.0, 4.0]), 2.0);
        assert_eq!(max_min_ratio(&[0.0, 0.0]), 1.0);
        assert!(max_min_ratio(&[0.0, 1.0]).is_infinite());
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn jain_rejects_negative() {
        jain_index(&[-1.0, 1.0]);
    }
}
