//! Erlang-B loss model.
//!
//! A single video server running *continuous* transmission (no staging, no
//! migration) with minimum-flow admission is an **M/G/k/k loss system**:
//!
//! * `k` = ⌊server bandwidth / view bandwidth⌋ — the SVBR, i.e. the number
//!   of "circuits";
//! * service time = video length (data trickles at exactly `b_view`);
//! * blocked requests leave (the controller rejects them).
//!
//! The blocking probability of M/G/k/k is *insensitive* to the service
//! distribution beyond its mean, so the Erlang-B formula applies exactly
//! even with uniformly distributed video lengths. At the paper's operating
//! point the offered load is 100 %: `a = k` erlangs, and
//!
//! ```text
//! expected utilization = carried load / k = (1 − B(k, k)).
//! ```
//!
//! The paper reports (§3.2) that this analytical curve closely matches its
//! simulations; experiment E5 (`svbr` harness) repeats that validation.

/// Erlang-B blocking probability `B(k, a)`: `k` servers, offered load `a`
/// erlangs. Computed with the numerically stable recurrence
/// `B(0) = 1`, `B(j) = a·B(j−1) / (j + a·B(j−1))`.
///
/// ```
/// use sct_analysis::erlang::erlang_b;
/// assert!((erlang_b(1, 1.0) - 0.5).abs() < 1e-12);   // one circuit, 1 erlang
/// assert!(erlang_b(100, 50.0) < 1e-6);               // overprovisioned
/// ```
pub fn erlang_b(k: usize, a: f64) -> f64 {
    assert!(a >= 0.0 && a.is_finite(), "offered load must be >= 0");
    let mut b = 1.0;
    for j in 1..=k {
        b = a * b / (j as f64 + a * b);
    }
    b
}

/// Expected bandwidth utilization of one server at 100 % offered load as a
/// function of its SVBR `k`: `(1 − B(k, k)) · k · b_view / b_server`.
///
/// When `b_server` is an exact multiple of `b_view` this simplifies to
/// `1 − B(k, k)`; otherwise the fractional residue `b_server − k·b_view`
/// can never carry a stream and caps utilization below that.
pub fn expected_utilization_vs_svbr(server_bandwidth: f64, view_rate: f64) -> f64 {
    assert!(server_bandwidth > 0.0 && view_rate > 0.0);
    let k = (server_bandwidth / view_rate).floor() as usize;
    if k == 0 {
        return 0.0;
    }
    let a = k as f64; // 100 % offered load in erlangs
    let carried = a * (1.0 - erlang_b(k, a));
    carried * view_rate / server_bandwidth
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn textbook_values() {
        // Classic reference points for Erlang B.
        assert!((erlang_b(1, 1.0) - 0.5).abs() < 1e-12);
        assert!((erlang_b(2, 1.0) - 0.2).abs() < 1e-12);
        // B(2, 2) = (2^2/2!) / (1 + 2 + 2) = 2/5.
        assert!((erlang_b(2, 2.0) - 0.4).abs() < 1e-12);
        // B(3, 2) = (8/6) / (1 + 2 + 2 + 8/6) = (4/3)/(19/3) = 4/19.
        assert!((erlang_b(3, 2.0) - 4.0 / 19.0).abs() < 1e-12);
    }

    #[test]
    fn zero_load_never_blocks() {
        assert_eq!(erlang_b(5, 0.0), 0.0);
        assert_eq!(erlang_b(0, 0.0), 1.0, "no servers: everything blocks");
    }

    #[test]
    fn blocking_decreases_with_more_servers() {
        let a = 10.0;
        let mut prev = 1.0;
        for k in 1..=40 {
            let b = erlang_b(k, a);
            assert!(b < prev, "B must strictly decrease in k");
            assert!((0.0..=1.0).contains(&b));
            prev = b;
        }
    }

    #[test]
    fn blocking_increases_with_load() {
        let mut prev = 0.0;
        for a in [1.0, 2.0, 5.0, 10.0, 50.0] {
            let b = erlang_b(10, a);
            assert!(b > prev);
            prev = b;
        }
    }

    #[test]
    fn utilization_grows_with_svbr() {
        // The paper's observation: bigger SVBR → higher achievable
        // utilization at 100 % offered load (statistical multiplexing).
        let u33 = expected_utilization_vs_svbr(99.0, 3.0); // k = 33
        let u100 = expected_utilization_vs_svbr(300.0, 3.0); // k = 100
        let u10 = expected_utilization_vs_svbr(30.0, 3.0); // k = 10
        assert!(u10 < u33 && u33 < u100, "{u10} {u33} {u100}");
        // Known scale: 1 − B(k,k) ≈ 1 − 0.8/sqrt(k) for large k; sanity
        // bounds only.
        assert!(u100 > 0.9 && u100 < 1.0);
        assert!(u10 > 0.7);
    }

    #[test]
    fn fractional_residue_caps_utilization() {
        // 100 Mb/s at 3 Mb/s view: k = 33 streams use at most 99 Mb/s.
        let u = expected_utilization_vs_svbr(100.0, 3.0);
        assert!(u <= 0.99);
        let u_exact = expected_utilization_vs_svbr(99.0, 3.0);
        assert!(u_exact > u, "an exact multiple wastes nothing");
    }

    #[test]
    fn degenerate_server_slower_than_one_stream() {
        assert_eq!(expected_utilization_vs_svbr(2.0, 3.0), 0.0);
    }

    #[test]
    fn large_k_is_numerically_stable() {
        let b = erlang_b(10_000, 10_000.0);
        assert!(b.is_finite() && (0.0..1.0).contains(&b));
        // Asymptotic: B(k, k) ≈ sqrt(2/(π k)) for large k → ~0.008.
        assert!((b - (2.0 / (std::f64::consts::PI * 10_000.0)).sqrt()).abs() < 1e-3);
    }
}
