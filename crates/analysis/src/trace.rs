//! Reader for the JSONL event traces `sctsim --trace` exports.
//!
//! Each line of a trace file is one simulation event:
//!
//! ```json
//! {"t":1.25,"event":{"Admitted":{"stream":0,"video":3,"server":1,"path":"Direct"}}}
//! ```
//!
//! `t` is the simulation time in seconds; `event` is the
//! externally-tagged record the core emitted. This crate sits *below*
//! sct-core in the dependency graph, so the reader does not know the
//! concrete event enum — it parses the wire format generically into
//! tag + payload, which is exactly what trace analyses (counting,
//! filtering, reconciliation against a summary) need.

use serde::{DeError, Deserialize, Value};
use std::collections::BTreeMap;

/// One parsed trace line: when it happened, what kind it was, and the
/// variant payload (a map for struct variants, [`Value::Null`] for unit
/// variants).
#[derive(Clone, Debug, PartialEq)]
pub struct TraceEvent {
    /// Simulation time of the event, seconds.
    pub t: f64,
    /// The event's variant tag, e.g. `"Admitted"` or `"ServerDown"`.
    pub kind: String,
    /// The variant's fields.
    pub payload: Value,
}

impl TraceEvent {
    /// Looks up a numeric field of the payload (integers widen to f64).
    pub fn num_field(&self, name: &str) -> Option<f64> {
        match self.payload.as_map()?.iter().find(|(k, _)| k == name)? {
            (_, Value::Num(x)) => Some(*x),
            (_, Value::Int(i)) => Some(*i as f64),
            _ => None,
        }
    }
}

// The vendored serde's `from_str` deserialises into a concrete type; a
// trace line's shape is only known at the tag level, so this wrapper
// captures the raw tree.
struct RawValue(Value);

impl Deserialize for RawValue {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(RawValue(v.clone()))
    }
}

/// A fully parsed trace: events in file order.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Trace {
    /// The events, in the order the simulation emitted them.
    pub events: Vec<TraceEvent>,
}

impl Trace {
    /// Parses JSONL trace text. Fails on the first malformed line with a
    /// message naming its 1-based line number; blank lines are ignored.
    /// Verifies that timestamps never decrease (the loop emits in
    /// simulation-time order, so a violation means a corrupt file).
    pub fn parse(text: &str) -> Result<Trace, String> {
        let mut events = Vec::new();
        let mut last_t = f64::NEG_INFINITY;
        for (idx, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let lineno = idx + 1;
            let RawValue(root) = serde_json::from_str(line)
                .map_err(|e| format!("line {lineno}: invalid JSON: {e}"))?;
            let map = root
                .as_map()
                .ok_or_else(|| format!("line {lineno}: not a JSON object"))?;
            let t = match map.iter().find(|(k, _)| k == "t") {
                Some((_, Value::Num(x))) => *x,
                Some((_, Value::Int(i))) => *i as f64,
                _ => return Err(format!("line {lineno}: missing numeric `t`")),
            };
            if t < last_t {
                return Err(format!(
                    "line {lineno}: time went backwards ({t} after {last_t})"
                ));
            }
            last_t = t;
            let event = map
                .iter()
                .find(|(k, _)| k == "event")
                .map(|(_, v)| v)
                .ok_or_else(|| format!("line {lineno}: missing `event`"))?;
            let (kind, payload) = match event {
                // Externally tagged struct/tuple variant: {"Tag": {...}}.
                Value::Map(entries) if entries.len() == 1 => {
                    (entries[0].0.clone(), entries[0].1.clone())
                }
                // Unit variant: just the tag string.
                Value::Str(tag) => (tag.clone(), Value::Null),
                _ => return Err(format!("line {lineno}: malformed `event` value")),
            };
            events.push(TraceEvent { t, kind, payload });
        }
        Ok(Trace { events })
    }

    /// Number of events in the trace.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace holds no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// How many events of each kind the trace holds, sorted by kind.
    pub fn counts_by_kind(&self) -> BTreeMap<String, u64> {
        let mut counts = BTreeMap::new();
        for e in &self.events {
            *counts.entry(e.kind.clone()).or_insert(0) += 1;
        }
        counts
    }

    /// Count of events with the given kind tag.
    pub fn count(&self, kind: &str) -> u64 {
        self.events.iter().filter(|e| e.kind == kind).count() as u64
    }

    /// The events with the given kind tag, in emission order.
    pub fn of_kind<'a>(&'a self, kind: &'a str) -> impl Iterator<Item = &'a TraceEvent> + 'a {
        self.events.iter().filter(move |e| e.kind == kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = concat!(
        r#"{"t":0,"event":{"Admitted":{"stream":0,"video":3,"server":1,"path":"Direct"}}}"#,
        "\n",
        r#"{"t":4.5,"event":{"Rejected":{"stream":1,"video":0}}}"#,
        "\n",
        r#"{"t":9.25,"event":{"WindowSample":{"index":0,"utilization":0.75}}}"#,
        "\n",
    );

    #[test]
    fn parses_lines_and_counts_kinds() {
        let trace = Trace::parse(SAMPLE).unwrap();
        assert_eq!(trace.len(), 3);
        assert_eq!(trace.count("Admitted"), 1);
        assert_eq!(trace.count("Rejected"), 1);
        let counts = trace.counts_by_kind();
        assert_eq!(counts.get("WindowSample"), Some(&1));
        assert_eq!(trace.events[1].t, 4.5);
        assert_eq!(trace.events[2].num_field("utilization"), Some(0.75));
        assert_eq!(trace.events[0].num_field("server"), Some(1.0));
    }

    #[test]
    fn unit_variants_and_blank_lines_are_fine() {
        let text = "{\"t\":1,\"event\":\"Checkpoint\"}\n\n";
        let trace = Trace::parse(text).unwrap();
        assert_eq!(trace.len(), 1);
        assert_eq!(trace.events[0].kind, "Checkpoint");
        assert_eq!(trace.events[0].payload, Value::Null);
    }

    #[test]
    fn rejects_backwards_time() {
        let text = concat!(
            r#"{"t":5,"event":{"ServerUp":{"server":0}}}"#,
            "\n",
            r#"{"t":4,"event":{"ServerUp":{"server":1}}}"#,
            "\n",
        );
        let err = Trace::parse(text).unwrap_err();
        assert!(err.contains("line 2"), "{err}");
        assert!(err.contains("backwards"), "{err}");
    }

    #[test]
    fn rejects_malformed_lines_with_line_numbers() {
        assert!(Trace::parse("not json\n").unwrap_err().contains("line 1"));
        let missing_t = r#"{"event":{"ServerUp":{"server":0}}}"#;
        assert!(Trace::parse(missing_t).unwrap_err().contains("`t`"));
        let missing_event = r#"{"t":1}"#;
        assert!(Trace::parse(missing_event).unwrap_err().contains("`event`"));
    }

    #[test]
    fn rejects_malformed_event_tags_naming_the_line() {
        // An `event` that is neither a single-entry map nor a tag string
        // cannot be an externally-tagged variant.
        for bad in [
            r#"{"t":10,"event":[1,2]}"#,
            r#"{"t":10,"event":7}"#,
            r#"{"t":10,"event":{"A":1,"B":2}}"#,
            r#"{"t":10,"event":null}"#,
        ] {
            let text = format!("{SAMPLE}{bad}\n");
            let err = Trace::parse(&text).unwrap_err();
            assert!(err.contains("line 4"), "{bad}: {err}");
            assert!(err.contains("malformed `event`"), "{bad}: {err}");
        }
    }

    #[test]
    fn rejects_non_monotonic_timestamps_mid_file() {
        // A regression sandwiched between valid lines must name exactly
        // the offending line, and the good prefix must not leak out.
        let text = concat!(
            r#"{"t":1,"event":{"ServerUp":{"server":0}}}"#,
            "\n",
            r#"{"t":8,"event":{"ServerUp":{"server":1}}}"#,
            "\n",
            r#"{"t":7.999,"event":{"ServerUp":{"server":2}}}"#,
            "\n",
            r#"{"t":9,"event":{"ServerUp":{"server":3}}}"#,
            "\n",
        );
        let err = Trace::parse(text).unwrap_err();
        assert!(err.contains("line 3"), "{err}");
        assert!(err.contains("time went backwards"), "{err}");
        assert!(err.contains("7.999"), "{err}");
    }

    #[test]
    fn rejects_a_truncated_final_line() {
        // A trace cut off mid-write (crash before the buffered line
        // completed) fails cleanly, naming the last line.
        let text = format!("{SAMPLE}{}", r#"{"t":9.5,"event":{"Adm"#);
        let err = Trace::parse(&text).unwrap_err();
        assert!(err.contains("line 4"), "{err}");
        assert!(err.contains("invalid JSON"), "{err}");
    }
}
