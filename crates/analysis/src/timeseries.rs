//! The flight-recorder wire schema: fixed-width virtual-time windows.
//!
//! A [`TimeSeriesRecording`] is what `sctsim run --timeseries FILE`
//! exports: the event stream and state-view boundary publications folded
//! into fixed-width windows of virtual time ([`WindowRow`]), plus the
//! sharded loop's barrier accounting ([`ShardSeries`]) and the alerts an
//! online [`crate::slo`] policy fired while the windows closed.
//!
//! Two determinism invariants shape the schema:
//!
//! 1. The `windows` and `alerts` sections are a pure fold of the event
//!    stream and state views, which the conservative barrier makes
//!    *identical for every shard count* — so those sections are
//!    bit-identical across `--shards` values.
//! 2. The `shards` section describes the barrier protocol itself (runs,
//!    horizon slack, stalls, cross-shard edges). It is empty on the
//!    monolithic loop and varies *by shard count*, but is a pure
//!    function of virtual time, hence bit-identical across repeated
//!    runs at any fixed shard count.
//!
//! [`TimeSeriesRecording::merge`] folds trials together the way
//! `MetricsSnapshot` does (counters add, means average), [`diff`] aligns
//! two recordings window-by-window to localize when and where runs
//! diverge, and [`render_dashboard`] draws the terminal dashboard
//! `sctsim watch` displays.

use crate::slo::SloAlert;
use serde::{Deserialize, Serialize};

/// One closed window: event counts over `[start, start+span)` and
/// time-weighted gauge means over the same interval.
///
/// Counters count *every* event from virtual time zero (warm-up
/// included), so summing a counter over all windows reproduces the
/// run-level `MetricsSnapshot` counter exactly. Utilization instead
/// honours the measurement convention: it integrates only over the
/// window's overlap with `[warmup, duration]` (`measured_secs`), so the
/// measured-seconds-weighted mean over all windows reproduces
/// `SimOutcome.utilization`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct WindowRow {
    /// Zero-based window index.
    pub index: u32,
    /// Window start, virtual seconds.
    pub start_secs: f64,
    /// Window width, seconds (the last window may be truncated).
    pub span_secs: f64,
    /// Overlap of the window with the measurement interval
    /// `[warmup, duration]`, seconds.
    pub measured_secs: f64,
    /// Requests that arrived (admitted + rejected).
    pub arrivals: u64,
    /// Requests admitted with a free slot.
    pub admitted: u64,
    /// Requests admitted via single-victim migration (DRM).
    pub admitted_drm: u64,
    /// Requests admitted via a two-step migration chain.
    pub admitted_chained: u64,
    /// Requests rejected.
    pub rejected: u64,
    /// Viewer streams that finished.
    pub completions: u64,
    /// Planned stream relocations (DRM hand-offs).
    pub migrations: u64,
    /// Emergency relocations off failed servers.
    pub evacuations: u64,
    /// Server failures.
    pub failures: u64,
    /// Server repairs.
    pub repairs: u64,
    /// Streams dropped by failures.
    pub dropped: u64,
    /// Viewer pauses.
    pub pauses: u64,
    /// Viewer resumes.
    pub resumes: u64,
    /// Replication copies started.
    pub copies_started: u64,
    /// Replication copies finished (installed or aborted).
    pub copies_done: u64,
    /// Requests that entered the waitlist.
    pub waitlist_queued: u64,
    /// Waitlisted requests finally served.
    pub waitlist_served: u64,
    /// Waiters that gave up.
    pub waitlist_expired: u64,
    /// Time-weighted mean waitlist depth over the window.
    pub waitlist_depth: f64,
    /// Time-weighted mean active streams over the window.
    pub active_streams: f64,
    /// Staged megabits across all client buffers, sampled at the
    /// window's first event boundary (carried forward through windows
    /// with no events). A sample, not a mean: the aggregate walks every
    /// stream, so the recorder reads it once per window.
    pub staged_mb: f64,
    /// Cluster utilization over the window's measured overlap (0 when
    /// the window lies entirely inside the warm-up).
    pub utilization: f64,
    /// Per-server utilization over the measured overlap, by server.
    pub server_utilization: Vec<f64>,
}

impl WindowRow {
    /// The window metrics [`WindowRow::metric`] resolves, in diff order:
    /// the raw counters, then the gauges (derived rates resolve too but
    /// are redundant for diffing).
    pub const METRICS: [&'static str; 22] = [
        "arrivals",
        "admitted",
        "admitted_drm",
        "admitted_chained",
        "rejected",
        "completions",
        "migrations",
        "evacuations",
        "failures",
        "repairs",
        "dropped",
        "pauses",
        "resumes",
        "copies_started",
        "copies_done",
        "waitlist_queued",
        "waitlist_served",
        "waitlist_expired",
        "waitlist_depth",
        "active_streams",
        "staged_mb",
        "utilization",
    ];

    /// An all-zero window covering `[start_secs, start_secs+span_secs)`.
    pub fn empty(
        index: u32,
        start_secs: f64,
        span_secs: f64,
        measured_secs: f64,
        n_servers: usize,
    ) -> WindowRow {
        WindowRow {
            index,
            start_secs,
            span_secs,
            measured_secs,
            arrivals: 0,
            admitted: 0,
            admitted_drm: 0,
            admitted_chained: 0,
            rejected: 0,
            completions: 0,
            migrations: 0,
            evacuations: 0,
            failures: 0,
            repairs: 0,
            dropped: 0,
            pauses: 0,
            resumes: 0,
            copies_started: 0,
            copies_done: 0,
            waitlist_queued: 0,
            waitlist_served: 0,
            waitlist_expired: 0,
            waitlist_depth: 0.0,
            active_streams: 0.0,
            staged_mb: 0.0,
            utilization: 0.0,
            server_utilization: vec![0.0; n_servers],
        }
    }

    /// Resolves a metric by name: every [`WindowRow::METRICS`] entry,
    /// `server_utilization/<i>`, and the derived per-second rates
    /// (`arrival_rate`, `rejection_rate`, `migration_rate`, `drm_rate`,
    /// `chain2_rate`, `evacuation_rate`, `completion_rate`) plus the
    /// dimensionless `rejection_ratio` (`rejected / arrivals`, 0 when
    /// idle). Unknown names return `None`.
    pub fn metric(&self, name: &str) -> Option<f64> {
        if let Some(idx) = name.strip_prefix("server_utilization/") {
            let idx: usize = idx.parse().ok()?;
            return self.server_utilization.get(idx).copied();
        }
        let per_sec = |count: u64| count as f64 / self.span_secs;
        Some(match name {
            "arrivals" => self.arrivals as f64,
            "admitted" => self.admitted as f64,
            "admitted_drm" => self.admitted_drm as f64,
            "admitted_chained" => self.admitted_chained as f64,
            "rejected" => self.rejected as f64,
            "completions" => self.completions as f64,
            "migrations" => self.migrations as f64,
            "evacuations" => self.evacuations as f64,
            "failures" => self.failures as f64,
            "repairs" => self.repairs as f64,
            "dropped" => self.dropped as f64,
            "pauses" => self.pauses as f64,
            "resumes" => self.resumes as f64,
            "copies_started" => self.copies_started as f64,
            "copies_done" => self.copies_done as f64,
            "waitlist_queued" => self.waitlist_queued as f64,
            "waitlist_served" => self.waitlist_served as f64,
            "waitlist_expired" => self.waitlist_expired as f64,
            "waitlist_depth" => self.waitlist_depth,
            "active_streams" => self.active_streams,
            "staged_mb" => self.staged_mb,
            "utilization" => self.utilization,
            "arrival_rate" => per_sec(self.arrivals),
            "rejection_rate" => per_sec(self.rejected),
            "migration_rate" => per_sec(self.migrations),
            "drm_rate" => per_sec(self.admitted_drm),
            "chain2_rate" => per_sec(self.admitted_chained),
            "evacuation_rate" => per_sec(self.evacuations),
            "completion_rate" => per_sec(self.completions),
            "rejection_ratio" => {
                if self.arrivals == 0 {
                    0.0
                } else {
                    self.rejected as f64 / self.arrivals as f64
                }
            }
            _ => return None,
        })
    }
}

/// Per-window barrier accounting for one shard of the sharded loop.
/// Every vector is indexed by window; a run is attributed to the window
/// containing its election time. Virtual-time-only quantities, so the
/// series is deterministic per shard count.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ShardSeries {
    /// The shard index.
    pub shard: u32,
    /// Barrier-to-barrier runs this shard won.
    pub runs: Vec<u64>,
    /// Runs that ended with work still pending (stalled at the horizon).
    pub stalled_runs: Vec<u64>,
    /// Runs whose horizon was bounded by foreign work.
    pub bounded_runs: Vec<u64>,
    /// Summed election slack (horizon − head, virtual seconds) over the
    /// bounded runs; mean slack = `slack_secs / bounded_runs`.
    pub slack_secs: Vec<f64>,
    /// Events dispatched by this shard's runs.
    pub events: Vec<u64>,
    /// `CrossShard` channel records leaving this shard.
    pub cross_edges_out: Vec<u64>,
}

impl ShardSeries {
    /// An all-zero series for `shard` over `n_windows` windows.
    pub fn empty(shard: u32, n_windows: usize) -> ShardSeries {
        ShardSeries {
            shard,
            runs: vec![0; n_windows],
            stalled_runs: vec![0; n_windows],
            bounded_runs: vec![0; n_windows],
            slack_secs: vec![0.0; n_windows],
            events: vec![0; n_windows],
            cross_edges_out: vec![0; n_windows],
        }
    }
}

/// A complete flight-recorder export. See the module docs for the two
/// determinism invariants splitting `windows`/`alerts` from `shards`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TimeSeriesRecording {
    /// Schema version (1).
    pub version: u32,
    /// Trials merged into this recording.
    pub trials: u32,
    /// Window width, seconds.
    pub window_secs: f64,
    /// Warm-up length, seconds (utilization measurement starts here).
    pub warmup_secs: f64,
    /// Run duration, seconds.
    pub duration_secs: f64,
    /// Servers in the cluster.
    pub n_servers: u32,
    /// The shard-invariant windowed series, in window order.
    pub windows: Vec<WindowRow>,
    /// Barrier accounting per shard (empty on the monolithic loop;
    /// counts summed across merged trials).
    pub shards: Vec<ShardSeries>,
    /// Alerts the online SLO policy fired, in window order (then trial
    /// order after a merge).
    pub alerts: Vec<SloAlert>,
}

impl TimeSeriesRecording {
    /// Parses a recording from its JSON export.
    pub fn from_json(text: &str) -> Result<TimeSeriesRecording, String> {
        serde_json::from_str(text).map_err(|e| format!("invalid time-series recording: {e}"))
    }

    /// Serialises the recording as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("recording serialises")
    }

    /// Tags every alert with the trial that produced it (call before
    /// merging per-trial recordings).
    pub fn set_trial(&mut self, trial: u32) {
        for a in &mut self.alerts {
            a.trial = trial;
        }
    }

    /// Merges another trial of the *same configuration* into this
    /// recording: counters (and shard counts) add, gauge means average
    /// weighted by trial count, alerts concatenate. Errs when the window
    /// grids or cluster shapes disagree.
    pub fn merge(&mut self, other: &TimeSeriesRecording) -> Result<(), String> {
        if self.window_secs != other.window_secs
            || self.windows.len() != other.windows.len()
            || self.n_servers != other.n_servers
            || self.warmup_secs != other.warmup_secs
            || self.duration_secs != other.duration_secs
        {
            return Err(format!(
                "incompatible recordings: {}x{}s windows over {} servers vs {}x{}s over {}",
                self.windows.len(),
                self.window_secs,
                self.n_servers,
                other.windows.len(),
                other.window_secs,
                other.n_servers,
            ));
        }
        if self.shards.len() != other.shards.len() {
            return Err(format!(
                "incompatible recordings: {} shards vs {}",
                self.shards.len(),
                other.shards.len()
            ));
        }
        let (wa, wb) = (self.trials as f64, other.trials as f64);
        let avg = |a: f64, b: f64| (a * wa + b * wb) / (wa + wb);
        for (w, o) in self.windows.iter_mut().zip(&other.windows) {
            w.arrivals += o.arrivals;
            w.admitted += o.admitted;
            w.admitted_drm += o.admitted_drm;
            w.admitted_chained += o.admitted_chained;
            w.rejected += o.rejected;
            w.completions += o.completions;
            w.migrations += o.migrations;
            w.evacuations += o.evacuations;
            w.failures += o.failures;
            w.repairs += o.repairs;
            w.dropped += o.dropped;
            w.pauses += o.pauses;
            w.resumes += o.resumes;
            w.copies_started += o.copies_started;
            w.copies_done += o.copies_done;
            w.waitlist_queued += o.waitlist_queued;
            w.waitlist_served += o.waitlist_served;
            w.waitlist_expired += o.waitlist_expired;
            w.waitlist_depth = avg(w.waitlist_depth, o.waitlist_depth);
            w.active_streams = avg(w.active_streams, o.active_streams);
            w.staged_mb = avg(w.staged_mb, o.staged_mb);
            w.utilization = avg(w.utilization, o.utilization);
            for (s, os) in w.server_utilization.iter_mut().zip(&o.server_utilization) {
                *s = avg(*s, *os);
            }
        }
        for (s, o) in self.shards.iter_mut().zip(&other.shards) {
            for i in 0..s.runs.len() {
                s.runs[i] += o.runs[i];
                s.stalled_runs[i] += o.stalled_runs[i];
                s.bounded_runs[i] += o.bounded_runs[i];
                s.slack_secs[i] += o.slack_secs[i];
                s.events[i] += o.events[i];
                s.cross_edges_out[i] += o.cross_edges_out[i];
            }
        }
        self.alerts.extend(other.alerts.iter().cloned());
        self.trials += other.trials;
        Ok(())
    }
}

/// The first window/metric where two recordings part ways.
#[derive(Clone, Debug, PartialEq)]
pub struct DiffPoint {
    /// Window index.
    pub window: u32,
    /// Window start, virtual seconds.
    pub start_secs: f64,
    /// The diverging metric.
    pub metric: String,
    /// Value in recording A.
    pub a: f64,
    /// Value in recording B.
    pub b: f64,
}

/// Result of aligning two recordings window-by-window.
#[derive(Clone, Debug, PartialEq)]
pub struct RecordingDiff {
    /// Windows compared.
    pub windows: u32,
    /// The earliest divergence (window-major, then metric order), or
    /// `None` when the series agree within tolerance everywhere.
    pub first: Option<DiffPoint>,
    /// `(metric, divergent window count)` for every metric that diverged
    /// anywhere, in metric order.
    pub per_metric: Vec<(String, u32)>,
}

impl RecordingDiff {
    /// Human-readable report: the triage summary `sctsim diff` prints.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        match &self.first {
            None => {
                out.push_str(&format!(
                    "recordings agree: {} windows, no metric diverged\n",
                    self.windows
                ));
            }
            Some(p) => {
                out.push_str(&format!(
                    "first divergence: window {} (t = {:.0}s) metric {} (a = {}, b = {})\n",
                    p.window, p.start_secs, p.metric, p.a, p.b
                ));
                out.push_str(&format!(
                    "divergent metrics ({} windows compared):\n",
                    self.windows
                ));
                for (name, count) in &self.per_metric {
                    out.push_str(&format!("  {name}: {count} window(s)\n"));
                }
            }
        }
        out
    }
}

/// Aligns two recordings window-by-window and reports where they
/// diverge: every [`WindowRow::METRICS`] entry, per-server utilization,
/// and (when both runs were sharded alike) the per-shard barrier series.
/// Floats compare with absolute tolerance `tol`. Errs when the window
/// grids are incomparable.
pub fn diff(
    a: &TimeSeriesRecording,
    b: &TimeSeriesRecording,
    tol: f64,
) -> Result<RecordingDiff, String> {
    if a.window_secs != b.window_secs || a.windows.len() != b.windows.len() {
        return Err(format!(
            "recordings are not comparable: {} windows of {}s vs {} of {}s",
            a.windows.len(),
            a.window_secs,
            b.windows.len(),
            b.window_secs
        ));
    }
    if a.n_servers != b.n_servers {
        return Err(format!(
            "recordings are not comparable: {} servers vs {}",
            a.n_servers, b.n_servers
        ));
    }
    let mut metrics: Vec<String> = WindowRow::METRICS.iter().map(|m| m.to_string()).collect();
    for i in 0..a.n_servers {
        metrics.push(format!("server_utilization/{i}"));
    }
    let mut first: Option<DiffPoint> = None;
    let mut counts: Vec<u32> = vec![0; metrics.len()];
    for (wa, wb) in a.windows.iter().zip(&b.windows) {
        for (mi, name) in metrics.iter().enumerate() {
            let (va, vb) = (
                wa.metric(name).expect("known metric"),
                wb.metric(name).expect("known metric"),
            );
            if (va - vb).abs() > tol {
                counts[mi] += 1;
                if first.is_none() {
                    first = Some(DiffPoint {
                        window: wa.index,
                        start_secs: wa.start_secs,
                        metric: name.clone(),
                        a: va,
                        b: vb,
                    });
                }
            }
        }
    }
    // Barrier series are comparable only for equal shard counts; when
    // they differ the main series already tell the divergence story.
    if a.shards.len() == b.shards.len() {
        for (sa, sb) in a.shards.iter().zip(&b.shards) {
            let series: [(&str, Vec<f64>, Vec<f64>); 6] = [
                ("runs", to_f64(&sa.runs), to_f64(&sb.runs)),
                (
                    "stalled_runs",
                    to_f64(&sa.stalled_runs),
                    to_f64(&sb.stalled_runs),
                ),
                (
                    "bounded_runs",
                    to_f64(&sa.bounded_runs),
                    to_f64(&sb.bounded_runs),
                ),
                ("slack_secs", sa.slack_secs.clone(), sb.slack_secs.clone()),
                ("events", to_f64(&sa.events), to_f64(&sb.events)),
                (
                    "cross_edges_out",
                    to_f64(&sa.cross_edges_out),
                    to_f64(&sb.cross_edges_out),
                ),
            ];
            for (name, va, vb) in &series {
                let full = format!("shard{}/{name}", sa.shard);
                let mut n = 0u32;
                for (w, (x, y)) in va.iter().zip(vb).enumerate() {
                    if (x - y).abs() > tol {
                        n += 1;
                        if first.is_none() {
                            first = Some(DiffPoint {
                                window: w as u32,
                                start_secs: a.windows[w].start_secs,
                                metric: full.clone(),
                                a: *x,
                                b: *y,
                            });
                        }
                    }
                }
                if n > 0 {
                    metrics.push(full);
                    counts.push(n);
                }
            }
        }
    }
    let per_metric = metrics
        .into_iter()
        .zip(counts)
        .filter(|(_, n)| *n > 0)
        .collect();
    Ok(RecordingDiff {
        windows: a.windows.len() as u32,
        first,
        per_metric,
    })
}

fn to_f64(v: &[u64]) -> Vec<f64> {
    v.iter().map(|&x| x as f64).collect()
}

/// Scales a series onto the eight-level block ramp, `cols` characters
/// wide (series longer than `cols` average down into buckets). A flat
/// series renders as the lowest block.
fn sparkline(values: &[f64], cols: usize) -> String {
    const RAMP: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    if values.is_empty() || cols == 0 {
        return String::new();
    }
    let buckets: Vec<f64> = if values.len() <= cols {
        values.to_vec()
    } else {
        (0..cols)
            .map(|c| {
                let lo = c * values.len() / cols;
                let hi = ((c + 1) * values.len() / cols).max(lo + 1);
                values[lo..hi].iter().sum::<f64>() / (hi - lo) as f64
            })
            .collect()
    };
    let lo = buckets.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = buckets.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    buckets
        .iter()
        .map(|&v| {
            if hi <= lo {
                RAMP[0]
            } else {
                let level = ((v - lo) / (hi - lo) * 7.0).round() as usize;
                RAMP[level.min(7)]
            }
        })
        .collect()
}

/// Renders the terminal dashboard `sctsim watch` shows: a header, a
/// sparkline per headline metric, per-shard barrier rows when the run
/// was sharded, and the alert tail. Pure text, deterministic.
pub fn render_dashboard(rec: &TimeSeriesRecording, cols: usize) -> String {
    let cols = cols.clamp(10, 200);
    let n_shards = rec.shards.len().max(1);
    let mut out = format!(
        "Time-series recording: {} windows x {:.0}s, {} trial{}, {} servers, {} shard{}\n\n",
        rec.windows.len(),
        rec.window_secs,
        rec.trials,
        if rec.trials == 1 { "" } else { "s" },
        rec.n_servers,
        n_shards,
        if n_shards == 1 { "" } else { "s" },
    );
    let rows: [(&str, &str); 7] = [
        ("utilization", "utilization"),
        ("arrival_rate", "arrivals/s"),
        ("rejection_ratio", "rejection ratio"),
        ("active_streams", "active streams"),
        ("waitlist_depth", "waitlist depth"),
        ("staged_mb", "staged Mb"),
        ("migration_rate", "migrations/s"),
    ];
    for (metric, label) in &rows {
        let series: Vec<f64> = rec
            .windows
            .iter()
            .map(|w| w.metric(metric).unwrap_or(0.0))
            .collect();
        let last = series.last().copied().unwrap_or(0.0);
        let mean = if series.is_empty() {
            0.0
        } else {
            series.iter().sum::<f64>() / series.len() as f64
        };
        out.push_str(&format!(
            "{label:>16}  last {last:>9.3}  mean {mean:>9.3}  {}\n",
            sparkline(&series, cols)
        ));
    }
    if !rec.shards.is_empty() {
        out.push('\n');
        for s in &rec.shards {
            let runs: u64 = s.runs.iter().sum();
            let stalled: u64 = s.stalled_runs.iter().sum();
            let bounded: u64 = s.bounded_runs.iter().sum();
            let slack: f64 = s.slack_secs.iter().sum();
            let events: u64 = s.events.iter().sum();
            let cross: u64 = s.cross_edges_out.iter().sum();
            let mean_slack = if bounded == 0 {
                0.0
            } else {
                slack / bounded as f64
            };
            out.push_str(&format!(
                "shard {}: {runs} runs ({stalled} stalled), mean slack {mean_slack:.3}s, \
                 {events} events, {cross} cross-shard edges out  {}\n",
                s.shard,
                sparkline(&to_f64(&s.events), cols)
            ));
        }
    }
    out.push('\n');
    if rec.alerts.is_empty() {
        out.push_str("alerts: none\n");
    } else {
        out.push_str(&format!("alerts ({}):\n", rec.alerts.len()));
        for a in &rec.alerts {
            out.push_str(&format!(
                "  [trial {} window {} @ {:.0}s] {}: {} = {:.4} vs {:.4}\n",
                a.trial, a.window, a.time_secs, a.rule, a.metric, a.value, a.threshold
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn recording(seed: u64) -> TimeSeriesRecording {
        let mut windows = Vec::new();
        for i in 0..4u32 {
            let mut w = WindowRow::empty(i, i as f64 * 100.0, 100.0, 100.0, 2);
            w.arrivals = 10 + i as u64 + seed;
            w.admitted = 8 + i as u64;
            w.rejected = 2 + seed;
            w.utilization = 0.5 + 0.1 * i as f64;
            w.server_utilization = vec![0.4, 0.6];
            windows.push(w);
        }
        TimeSeriesRecording {
            version: 1,
            trials: 1,
            window_secs: 100.0,
            warmup_secs: 0.0,
            duration_secs: 400.0,
            n_servers: 2,
            windows,
            shards: vec![ShardSeries::empty(0, 4), ShardSeries::empty(1, 4)],
            alerts: vec![SloAlert {
                trial: 0,
                window: 2,
                time_secs: 300.0,
                rule: "r".into(),
                metric: "utilization".into(),
                value: 0.7,
                threshold: 0.6,
            }],
        }
    }

    #[test]
    fn json_round_trip_is_exact() {
        let rec = recording(0);
        let back = TimeSeriesRecording::from_json(&rec.to_json()).unwrap();
        assert_eq!(back, rec);
        assert!(TimeSeriesRecording::from_json("nope").is_err());
    }

    #[test]
    fn metric_resolves_rates_and_per_server() {
        let rec = recording(0);
        let w = &rec.windows[1];
        assert_eq!(w.metric("arrivals"), Some(11.0));
        assert_eq!(w.metric("arrival_rate"), Some(0.11));
        assert_eq!(w.metric("server_utilization/1"), Some(0.6));
        assert_eq!(w.metric("server_utilization/9"), None);
        assert_eq!(w.metric("made_up"), None);
        let ratio = w.metric("rejection_ratio").unwrap();
        assert!((ratio - 2.0 / 11.0).abs() < 1e-12);
    }

    #[test]
    fn merge_adds_counters_and_averages_gauges() {
        let mut a = recording(0);
        let b = recording(0);
        a.merge(&b).unwrap();
        assert_eq!(a.trials, 2);
        assert_eq!(a.windows[0].arrivals, 20);
        assert!((a.windows[0].utilization - 0.5).abs() < 1e-12);
        assert_eq!(a.alerts.len(), 2);
        // Weighted average: merging a third trial with weight 1 vs 2.
        let mut c = recording(0);
        c.windows[0].utilization = 0.8;
        a.merge(&c).unwrap();
        assert!((a.windows[0].utilization - 0.6).abs() < 1e-12);
    }

    #[test]
    fn merge_rejects_incompatible_grids() {
        let mut a = recording(0);
        let mut b = recording(0);
        b.window_secs = 50.0;
        assert!(a.merge(&b).is_err());
        let mut c = recording(0);
        c.shards.pop();
        assert!(a.merge(&c).is_err());
    }

    #[test]
    fn diff_finds_first_divergent_window_and_metric() {
        let a = recording(0);
        let mut b = recording(0);
        b.windows[2].admitted += 1;
        b.windows[3].utilization += 0.5;
        let d = diff(&a, &b, 1e-9).unwrap();
        let first = d.first.unwrap();
        assert_eq!(first.window, 2);
        assert_eq!(first.metric, "admitted");
        assert_eq!((first.a, first.b), (10.0, 11.0));
        assert_eq!(d.per_metric.len(), 2);
        let text = diff(&a, &b, 1e-9).unwrap().to_text();
        assert!(text.contains("first divergence: window 2"), "{text}");
        assert!(text.contains("admitted"), "{text}");
    }

    #[test]
    fn diff_tolerance_and_identity() {
        let a = recording(0);
        let mut b = recording(0);
        b.windows[1].staged_mb += 1e-12;
        assert!(diff(&a, &b, 1e-9).unwrap().first.is_none());
        let d = diff(&a, &a, 0.0).unwrap();
        assert!(d.first.is_none());
        assert!(d.to_text().contains("recordings agree"));
        let mut c = recording(0);
        c.windows.pop();
        assert!(diff(&a, &c, 1e-9).is_err());
    }

    #[test]
    fn diff_sees_barrier_series() {
        let a = recording(0);
        let mut b = recording(0);
        b.shards[1].stalled_runs[3] = 5;
        let d = diff(&a, &b, 1e-9).unwrap();
        let first = d.first.unwrap();
        assert_eq!(first.metric, "shard1/stalled_runs");
        assert_eq!(first.window, 3);
    }

    #[test]
    fn dashboard_renders_headlines_shards_and_alerts() {
        let text = render_dashboard(&recording(0), 60);
        assert!(text.contains("4 windows x 100s"));
        assert!(text.contains("utilization"));
        assert!(text.contains("arrivals/s"));
        assert!(text.contains("shard 0:"));
        assert!(text.contains("alerts (1):"));
        assert!(text.contains('▁'), "sparkline missing:\n{text}");
        let mut quiet = recording(0);
        quiet.alerts.clear();
        quiet.shards.clear();
        let text = render_dashboard(&quiet, 60);
        assert!(text.contains("alerts: none"));
        assert!(!text.contains("shard 0:"));
    }

    #[test]
    fn sparkline_shapes() {
        assert_eq!(sparkline(&[], 10), "");
        assert_eq!(sparkline(&[1.0, 1.0, 1.0], 10), "▁▁▁");
        let s = sparkline(&[0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0], 8);
        assert_eq!(s, "▁▂▃▄▅▆▇█");
        // Downsampling: 100 points into 10 columns, monotone ramp.
        let long: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let s = sparkline(&long, 10);
        assert_eq!(s.chars().count(), 10);
        assert_eq!(s.chars().next(), Some('▁'));
        assert_eq!(s.chars().last(), Some('█'));
    }
}
