//! Plain table rendering for harness output.

use serde::{Deserialize, Serialize};

/// A simple string table with a header row, rendered as markdown or
/// aligned plain text.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Table {
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows; each must match the header width.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (width-checked).
    pub fn push_row<S: Into<String>>(&mut self, row: Vec<S>) {
        let row: Vec<String> = row.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.headers.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders as a markdown table.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push('|');
        for h in &self.headers {
            out.push_str(&format!(" {h} |"));
        }
        out.push('\n');
        out.push('|');
        for _ in &self.headers {
            out.push_str("---|");
        }
        out.push('\n');
        for row in &self.rows {
            out.push('|');
            for cell in row {
                out.push_str(&format!(" {cell} |"));
            }
            out.push('\n');
        }
        out
    }

    /// Renders as aligned plain text (for terminals).
    pub fn to_text(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for i in 0..ncols {
                line.push_str(&format!("{:width$}  ", cells[i], width = widths[i]));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (ncols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new(vec!["policy", "theta", "utilization"]);
        t.push_row(vec!["P1", "0.0", "0.812"]);
        t.push_row(vec!["P4", "0.0", "0.973"]);
        t
    }

    #[test]
    fn markdown_layout() {
        let md = sample().to_markdown();
        let lines: Vec<&str> = md.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[0], "| policy | theta | utilization |");
        assert_eq!(lines[1], "|---|---|---|");
        assert!(lines[3].contains("0.973"));
    }

    #[test]
    fn text_alignment() {
        let txt = sample().to_text();
        let lines: Vec<&str> = txt.lines().collect();
        assert!(lines[0].starts_with("policy"));
        // Columns align: "utilization" header starts at same offset in all rows.
        let off = lines[0].find("utilization").unwrap();
        assert_eq!(&lines[2][off..off + 5], "0.812");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        let mut t = sample();
        t.push_row(vec!["only-one"]);
    }

    #[test]
    fn len_and_empty() {
        assert!(Table::new(vec!["a"]).is_empty());
        assert_eq!(sample().len(), 2);
    }
}
