//! Request-lifecycle spans, causal edges, and their exporters.
//!
//! A [`SpanSet`] is the wire form of the core's span probe
//! (`sct-core::spans`, exported by `sctsim run --spans FILE`): one
//! [`Span`] per request (and per replication copy) covering its whole
//! life — arrival, waitlist wait, admission, migration hops,
//! completion — plus the [`CausalEdge`]s that explain *why* individual
//! streams moved (a DRM victim was displaced by an admission, a chain-2
//! inner hop served an outer hop, an evacuation was forced by a server
//! failure, a waitlist serve rode a freed slot).
//!
//! This crate sits *below* sct-core, so the schema is self-contained:
//! stream/server ids are raw integers and times are seconds. Exporters:
//!
//! * [`SpanSet::to_perfetto`] — Chrome-trace/Perfetto JSON (`ph:"X"`
//!   duration events per span and segment, `ph:"s"/"f"` flow events per
//!   causal edge, `ph:"i"` instants for server failures) loadable in
//!   `ui.perfetto.dev` or `chrome://tracing`.
//! * [`SpanSet::critical_path`] / [`SpanSet::critical_path_report`] —
//!   for any completed request, the dominant-latency component: queue
//!   wait vs transmission (staging workahead) vs paused time. Migration
//!   hops are counted but contribute no latency component of their own:
//!   per the paper's §4 hand-off rule a victim is only feasible when its
//!   staging buffer covers the hand-off latency, so hops are jitter-free
//!   by construction.

use serde::{Deserialize, Serialize};

/// What kind of stream a span narrates.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum SpanKind {
    /// A viewer request (the unit of admission control).
    Viewer,
    /// A dynamic-replication copy stream.
    Copy,
}

/// How a span's life ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum SpanOutcome {
    /// Transmission finished (for copies: the replica installed).
    Completed,
    /// Turned away at arrival and never queued.
    Rejected,
    /// Queued, then ran out of patience.
    Expired,
    /// Lost service (failure drop, or a copy aborted mid-flight).
    Dropped,
    /// Still alive when the simulation horizon closed.
    Open,
}

/// How an accepted request obtained its slot.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum AdmitVia {
    /// A replica holder had a free slot at arrival.
    Direct,
    /// A single DRM victim hand-off freed the slot.
    Migrated,
    /// A two-step migration chain freed the slot.
    Chained,
    /// Served from the admission wait queue.
    Waitlist,
}

/// What a span was doing during one segment of its life.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum SegmentKind {
    /// Queued in the waitlist (no resources held).
    Wait,
    /// Being transmitted by a server.
    Serve,
    /// Playback paused (slot still held; staging may keep filling).
    Pause,
}

/// One contiguous phase of a span's life.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Segment {
    /// What the request was doing.
    pub kind: SegmentKind,
    /// Hosting server for `Serve`/`Pause` segments; `None` while waiting.
    pub server: Option<u16>,
    /// Segment start, seconds.
    pub start_secs: f64,
    /// Segment end, seconds; `None` when still open at the horizon.
    pub end_secs: Option<f64>,
}

impl Segment {
    /// The segment's duration against `horizon` when still open.
    pub fn duration_secs(&self, horizon: f64) -> f64 {
        (self.end_secs.unwrap_or(horizon) - self.start_secs).max(0.0)
    }
}

/// One request's (or copy's) whole observable life.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Span {
    /// The stream id (unique per trial; copies share the id space).
    pub stream: u64,
    /// Requested video index.
    pub video: u32,
    /// Viewer request or replication copy.
    pub kind: SpanKind,
    /// Arrival (or copy launch) time, seconds.
    pub start_secs: f64,
    /// Terminal time, seconds; `None` when open at the horizon.
    pub end_secs: Option<f64>,
    /// How the life ended.
    pub outcome: SpanOutcome,
    /// How the slot was obtained; `None` for rejections and copies.
    pub admit_via: Option<AdmitVia>,
    /// Migration hops the stream survived.
    pub hops: u32,
    /// Life phases, in time order.
    pub segments: Vec<Segment>,
}

impl Span {
    /// Span duration against `horizon` when still open.
    pub fn duration_secs(&self, horizon: f64) -> f64 {
        (self.end_secs.unwrap_or(horizon) - self.start_secs).max(0.0)
    }
}

/// One endpoint of a causal edge.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum EdgeEnd {
    /// A stream's span.
    Stream {
        /// The stream id.
        stream: u64,
    },
    /// A server instant (failure/repair), not a span.
    Server {
        /// The server id.
        server: u16,
    },
}

/// Why one span's event happened — the paper's mechanisms are causal
/// chains, and these are the links.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum EdgeKind {
    /// A DRM victim hand-off: `cause` is the admitted arrival, `effect`
    /// the stream its admission displaced.
    Displaced,
    /// A chain-2 inner hop: `cause` is the outer victim whose landing
    /// required the move, `effect` the inner victim.
    ChainInner,
    /// An emergency evacuation: `cause` is the failed server, `effect`
    /// the relocated stream.
    Evacuated,
    /// A waitlist serve: `cause` is the completion/repair/copy-finish
    /// that freed the capacity, `effect` the served waiter.
    FreedSlot,
}

/// One causal link between two spans (or a server instant and a span).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct CausalEdge {
    /// The mechanism that links the endpoints.
    pub kind: EdgeKind,
    /// When the effect happened, seconds.
    pub at_secs: f64,
    /// The triggering end.
    pub cause: EdgeEnd,
    /// The affected end (always a stream).
    pub effect: EdgeEnd,
}

/// A server availability instant (for the failure timeline).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ServerMark {
    /// The server.
    pub server: u16,
    /// When, seconds.
    pub at_secs: f64,
    /// `true` for a failure, `false` for a repair.
    pub down: bool,
    /// Streams rescued by evacuation (failures only).
    pub relocated: u32,
    /// Streams whose viewers lost service (failures only).
    pub dropped: u32,
}

/// A complete span export: one trial's request lifecycles, causal edges,
/// and server availability marks.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SpanSet {
    /// Simulation horizon, seconds (closes open spans in exports).
    pub horizon_secs: f64,
    /// One span per stream, in stream-id order.
    pub spans: Vec<Span>,
    /// Causal edges, in emission order.
    pub edges: Vec<CausalEdge>,
    /// Server failure/repair instants, in time order.
    pub marks: Vec<ServerMark>,
}

/// Latency decomposition of one completed request — which phase of its
/// life dominated the time from arrival to completion.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CriticalPath {
    /// The stream this decomposes.
    pub stream: u64,
    /// Arrival-to-terminal time, seconds.
    pub total_secs: f64,
    /// Seconds spent queued in the waitlist.
    pub wait_secs: f64,
    /// Seconds being transmitted (staging workahead + playback).
    pub serve_secs: f64,
    /// Seconds paused by the viewer.
    pub pause_secs: f64,
    /// Migration hops survived (jitter-free: staged data covers the
    /// hand-off latency by admission rule, so hops add no segment time).
    pub hops: u32,
    /// The dominant component: `"wait"`, `"serve"`, or `"pause"`.
    pub dominant: &'static str,
}

impl SpanSet {
    /// Parses a span set from its JSON export.
    pub fn from_json(text: &str) -> Result<SpanSet, String> {
        serde_json::from_str(text).map_err(|e| format!("invalid span set: {e}"))
    }

    /// Serialises the span set as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("span set serialises")
    }

    /// Looks up a span by stream id.
    pub fn span(&self, stream: u64) -> Option<&Span> {
        self.spans.iter().find(|s| s.stream == stream)
    }

    /// Edges of one kind, in emission order.
    pub fn edges_of(&self, kind: EdgeKind) -> impl Iterator<Item = &CausalEdge> + '_ {
        self.edges.iter().filter(move |e| e.kind == kind)
    }

    /// Spans with one outcome, in stream order.
    pub fn with_outcome(&self, outcome: SpanOutcome) -> impl Iterator<Item = &Span> + '_ {
        self.spans.iter().filter(move |s| s.outcome == outcome)
    }

    /// The latency decomposition of one span (`None` for spans without
    /// segments, i.e. immediate rejections).
    pub fn critical_path(&self, span: &Span) -> Option<CriticalPath> {
        if span.segments.is_empty() {
            return None;
        }
        let mut wait = 0.0;
        let mut serve = 0.0;
        let mut pause = 0.0;
        for seg in &span.segments {
            let d = seg.duration_secs(self.horizon_secs);
            match seg.kind {
                SegmentKind::Wait => wait += d,
                SegmentKind::Serve => serve += d,
                SegmentKind::Pause => pause += d,
            }
        }
        let dominant = if wait >= serve && wait >= pause {
            "wait"
        } else if serve >= pause {
            "serve"
        } else {
            "pause"
        };
        Some(CriticalPath {
            stream: span.stream,
            total_secs: span.duration_secs(self.horizon_secs),
            wait_secs: wait,
            serve_secs: serve,
            pause_secs: pause,
            hops: span.hops,
            dominant,
        })
    }

    /// A one-screen markdown summary: spans by outcome, edges by kind,
    /// and the failure-mark count.
    pub fn summary_markdown(&self) -> String {
        let mut out = format!(
            "# Span set ({} spans, {} causal edges, horizon {:.0} s)\n\n",
            self.spans.len(),
            self.edges.len(),
            self.horizon_secs
        );
        let mut t = crate::report::Table::new(vec!["outcome", "viewers", "copies"]);
        for (name, outcome) in [
            ("completed", SpanOutcome::Completed),
            ("rejected", SpanOutcome::Rejected),
            ("expired", SpanOutcome::Expired),
            ("dropped", SpanOutcome::Dropped),
            ("open", SpanOutcome::Open),
        ] {
            let viewers = self
                .with_outcome(outcome)
                .filter(|s| s.kind == SpanKind::Viewer)
                .count();
            let copies = self
                .with_outcome(outcome)
                .filter(|s| s.kind == SpanKind::Copy)
                .count();
            t.push_row(vec![
                name.to_string(),
                viewers.to_string(),
                copies.to_string(),
            ]);
        }
        out.push_str("## Spans\n\n");
        out.push_str(&t.to_markdown());
        out.push('\n');
        let mut t = crate::report::Table::new(vec!["edge", "count"]);
        for (name, kind) in [
            ("displaced (DRM victim ← admission)", EdgeKind::Displaced),
            ("chain inner hop ← outer hop", EdgeKind::ChainInner),
            ("evacuated ← server failure", EdgeKind::Evacuated),
            ("waitlist serve ← freed slot", EdgeKind::FreedSlot),
        ] {
            t.push_row(vec![
                name.to_string(),
                self.edges_of(kind).count().to_string(),
            ]);
        }
        out.push_str("## Causal edges\n\n");
        out.push_str(&t.to_markdown());
        out.push('\n');
        let downs = self.marks.iter().filter(|m| m.down).count();
        out.push_str(&format!(
            "{} server failures, {} repairs\n",
            downs,
            self.marks.len() - downs
        ));
        out
    }

    /// The critical-path report: aggregate latency decomposition over
    /// completed viewer requests plus the `top` longest lifecycles.
    pub fn critical_path_report(&self, top: usize) -> String {
        let mut paths: Vec<CriticalPath> = self
            .with_outcome(SpanOutcome::Completed)
            .filter(|s| s.kind == SpanKind::Viewer)
            .filter_map(|s| self.critical_path(s))
            .collect();
        if paths.is_empty() {
            return "no completed viewer spans\n".to_string();
        }
        let n = paths.len() as f64;
        let mean = |f: fn(&CriticalPath) -> f64| paths.iter().map(f).sum::<f64>() / n;
        let dominated = |k: &str| paths.iter().filter(|p| p.dominant == k).count();
        let mut out = format!(
            "# Critical path over {} completed requests\n\n",
            paths.len()
        );
        let mut t =
            crate::report::Table::new(vec!["component", "mean (s)", "max (s)", "dominates"]);
        for (name, f) in [
            (
                "queue wait",
                (|p: &CriticalPath| p.wait_secs) as fn(&CriticalPath) -> f64,
            ),
            ("serve (staging + playback)", |p: &CriticalPath| {
                p.serve_secs
            }),
            ("paused", |p: &CriticalPath| p.pause_secs),
        ] {
            let key = name.split_whitespace().next().unwrap();
            let key = if key == "queue" { "wait" } else { key };
            t.push_row(vec![
                name.to_string(),
                format!("{:.2}", mean(f)),
                format!("{:.2}", paths.iter().map(f).fold(0.0, f64::max)),
                format!("{}", dominated(key)),
            ]);
        }
        out.push_str(&t.to_markdown());
        let total_hops: u32 = paths.iter().map(|p| p.hops).sum();
        out.push_str(&format!(
            "\n{total_hops} migration hops across completed requests \
             (jitter-free: staged data covers each hand-off)\n\n"
        ));
        paths.sort_by(|a, b| {
            b.total_secs
                .total_cmp(&a.total_secs)
                .then(a.stream.cmp(&b.stream))
        });
        let mut t = crate::report::Table::new(vec![
            "stream",
            "total (s)",
            "wait (s)",
            "serve (s)",
            "paused (s)",
            "hops",
            "dominant",
        ]);
        for p in paths.iter().take(top) {
            t.push_row(vec![
                p.stream.to_string(),
                format!("{:.2}", p.total_secs),
                format!("{:.2}", p.wait_secs),
                format!("{:.2}", p.serve_secs),
                format!("{:.2}", p.pause_secs),
                p.hops.to_string(),
                p.dominant.to_string(),
            ]);
        }
        out.push_str(&format!(
            "## {} longest lifecycles\n\n",
            top.min(paths.len())
        ));
        out.push_str(&t.to_markdown());
        out
    }

    /// Exports the span set in the Chrome trace event format (loadable in
    /// Perfetto / `chrome://tracing`): requests are process 1 with one
    /// thread (track) per stream, servers are process 2 with one track
    /// per server. Every span and segment becomes a `ph:"X"` duration
    /// event (`ts`/`dur` in microseconds); causal edges become `s`/`f`
    /// flow events; failures/repairs become `ph:"i"` instants. Open spans
    /// are clamped to the horizon.
    pub fn to_perfetto(&self) -> String {
        let us = |secs: f64| secs * 1e6;
        let mut events: Vec<String> = Vec::new();
        events.push(
            "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\
             \"args\":{\"name\":\"requests\"}}"
                .to_string(),
        );
        events.push(
            "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":2,\"tid\":0,\
             \"args\":{\"name\":\"servers\"}}"
                .to_string(),
        );
        for span in &self.spans {
            let kind = match span.kind {
                SpanKind::Viewer => "request",
                SpanKind::Copy => "copy",
            };
            let via = match span.admit_via {
                Some(AdmitVia::Direct) => "Direct",
                Some(AdmitVia::Migrated) => "Migrated",
                Some(AdmitVia::Chained) => "Chained",
                Some(AdmitVia::Waitlist) => "Waitlist",
                None => "-",
            };
            events.push(format!(
                "{{\"name\":\"{kind} {} (video {})\",\"cat\":\"{kind}\",\"ph\":\"X\",\
                 \"pid\":1,\"tid\":{},\"ts\":{},\"dur\":{},\
                 \"args\":{{\"outcome\":\"{:?}\",\"admit_via\":\"{via}\",\"hops\":{}}}}}",
                span.stream,
                span.video,
                span.stream,
                us(span.start_secs),
                us(span.duration_secs(self.horizon_secs)),
                span.outcome,
                span.hops,
            ));
            for seg in &span.segments {
                let (name, cat) = match (seg.kind, seg.server) {
                    (SegmentKind::Wait, _) => ("wait".to_string(), "wait"),
                    (SegmentKind::Serve, s) => {
                        (format!("serve@s{}", s.unwrap_or(u16::MAX)), "serve")
                    }
                    (SegmentKind::Pause, s) => {
                        (format!("pause@s{}", s.unwrap_or(u16::MAX)), "pause")
                    }
                };
                events.push(format!(
                    "{{\"name\":\"{name}\",\"cat\":\"{cat}\",\"ph\":\"X\",\
                     \"pid\":1,\"tid\":{},\"ts\":{},\"dur\":{}}}",
                    span.stream,
                    us(seg.start_secs),
                    us(seg.duration_secs(self.horizon_secs)),
                ));
            }
        }
        for (i, edge) in self.edges.iter().enumerate() {
            let name = match edge.kind {
                EdgeKind::Displaced => "displaced-by-admission",
                EdgeKind::ChainInner => "chain-inner-hop",
                EdgeKind::Evacuated => "evacuated-by-failure",
                EdgeKind::FreedSlot => "served-by-freed-slot",
            };
            let anchor = |end: &EdgeEnd| match *end {
                EdgeEnd::Stream { stream } => (1u32, stream),
                EdgeEnd::Server { server } => (2u32, server as u64),
            };
            let (cpid, ctid) = anchor(&edge.cause);
            let (epid, etid) = anchor(&edge.effect);
            events.push(format!(
                "{{\"name\":\"{name}\",\"cat\":\"causal\",\"ph\":\"s\",\"id\":{i},\
                 \"pid\":{cpid},\"tid\":{ctid},\"ts\":{}}}",
                us(edge.at_secs),
            ));
            events.push(format!(
                "{{\"name\":\"{name}\",\"cat\":\"causal\",\"ph\":\"f\",\"bp\":\"e\",\
                 \"id\":{i},\"pid\":{epid},\"tid\":{etid},\"ts\":{}}}",
                us(edge.at_secs),
            ));
        }
        for mark in &self.marks {
            let name = if mark.down { "ServerDown" } else { "ServerUp" };
            events.push(format!(
                "{{\"name\":\"{name}\",\"cat\":\"availability\",\"ph\":\"i\",\"s\":\"t\",\
                 \"pid\":2,\"tid\":{},\"ts\":{},\
                 \"args\":{{\"relocated\":{},\"dropped\":{}}}}}",
                mark.server,
                us(mark.at_secs),
                mark.relocated,
                mark.dropped,
            ));
        }
        format!(
            "{{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n{}\n]}}\n",
            events.join(",\n")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SpanSet {
        SpanSet {
            horizon_secs: 100.0,
            spans: vec![
                Span {
                    stream: 0,
                    video: 2,
                    kind: SpanKind::Viewer,
                    start_secs: 0.0,
                    end_secs: Some(40.0),
                    outcome: SpanOutcome::Completed,
                    admit_via: Some(AdmitVia::Direct),
                    hops: 1,
                    segments: vec![
                        Segment {
                            kind: SegmentKind::Serve,
                            server: Some(0),
                            start_secs: 0.0,
                            end_secs: Some(10.0),
                        },
                        Segment {
                            kind: SegmentKind::Serve,
                            server: Some(1),
                            start_secs: 10.0,
                            end_secs: Some(40.0),
                        },
                    ],
                },
                Span {
                    stream: 1,
                    video: 0,
                    kind: SpanKind::Viewer,
                    start_secs: 5.0,
                    end_secs: Some(70.0),
                    outcome: SpanOutcome::Completed,
                    admit_via: Some(AdmitVia::Waitlist),
                    hops: 0,
                    segments: vec![
                        Segment {
                            kind: SegmentKind::Wait,
                            server: None,
                            start_secs: 5.0,
                            end_secs: Some(40.0),
                        },
                        Segment {
                            kind: SegmentKind::Serve,
                            server: Some(1),
                            start_secs: 40.0,
                            end_secs: Some(70.0),
                        },
                    ],
                },
                Span {
                    stream: 2,
                    video: 1,
                    kind: SpanKind::Viewer,
                    start_secs: 50.0,
                    end_secs: None,
                    outcome: SpanOutcome::Open,
                    admit_via: Some(AdmitVia::Migrated),
                    hops: 0,
                    segments: vec![Segment {
                        kind: SegmentKind::Serve,
                        server: Some(0),
                        start_secs: 50.0,
                        end_secs: None,
                    }],
                },
            ],
            edges: vec![
                CausalEdge {
                    kind: EdgeKind::Displaced,
                    at_secs: 10.0,
                    cause: EdgeEnd::Stream { stream: 2 },
                    effect: EdgeEnd::Stream { stream: 0 },
                },
                CausalEdge {
                    kind: EdgeKind::FreedSlot,
                    at_secs: 40.0,
                    cause: EdgeEnd::Stream { stream: 0 },
                    effect: EdgeEnd::Stream { stream: 1 },
                },
                CausalEdge {
                    kind: EdgeKind::Evacuated,
                    at_secs: 90.0,
                    cause: EdgeEnd::Server { server: 1 },
                    effect: EdgeEnd::Stream { stream: 2 },
                },
            ],
            marks: vec![ServerMark {
                server: 1,
                at_secs: 90.0,
                down: true,
                relocated: 1,
                dropped: 0,
            }],
        }
    }

    #[test]
    fn json_round_trip_is_exact() {
        let set = sample();
        let back = SpanSet::from_json(&set.to_json()).unwrap();
        assert_eq!(back, set);
    }

    #[test]
    fn bad_json_names_the_problem() {
        let err = SpanSet::from_json("{oops").unwrap_err();
        assert!(err.contains("invalid span set"), "{err}");
    }

    #[test]
    fn critical_path_decomposes_and_picks_dominant() {
        let set = sample();
        let cp = set.critical_path(set.span(1).unwrap()).unwrap();
        assert_eq!(cp.total_secs, 65.0);
        assert_eq!(cp.wait_secs, 35.0);
        assert_eq!(cp.serve_secs, 30.0);
        assert_eq!(cp.pause_secs, 0.0);
        assert_eq!(cp.dominant, "wait");
        let cp0 = set.critical_path(set.span(0).unwrap()).unwrap();
        assert_eq!(cp0.dominant, "serve");
        assert_eq!(cp0.hops, 1);
    }

    #[test]
    fn critical_path_clamps_open_spans_to_horizon() {
        let set = sample();
        let cp = set.critical_path(set.span(2).unwrap()).unwrap();
        assert_eq!(cp.total_secs, 50.0);
        assert_eq!(cp.serve_secs, 50.0);
    }

    #[test]
    fn reports_render_markdown() {
        let set = sample();
        let summary = set.summary_markdown();
        assert!(summary.contains("3 spans"), "{summary}");
        assert!(summary.contains("| completed | 2 | 0 |"), "{summary}");
        assert!(summary.contains("1 server failures"), "{summary}");
        let report = set.critical_path_report(10);
        assert!(report.contains("2 completed requests"), "{report}");
        assert!(report.contains("queue wait"), "{report}");
        assert!(report.contains("1 migration hops"), "{report}");
    }

    /// Wrapper so the vendored parser can hand back an untyped tree.
    struct RawValue(serde::Value);

    impl serde::Deserialize for RawValue {
        fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
            Ok(RawValue(v.clone()))
        }
    }

    #[test]
    fn perfetto_export_has_required_fields_and_nests() {
        let set = sample();
        let text = set.to_perfetto();
        // Self-check with the vendored parser: it is valid JSON.
        let RawValue(parsed) = serde_json::from_str(&text).unwrap();
        let map = parsed.as_map().unwrap();
        let events = map
            .iter()
            .find(|(k, _)| k == "traceEvents")
            .and_then(|(_, v)| v.as_seq())
            .unwrap();
        // 3 spans + 5 segments + 2 metadata + 3×2 flows + 1 instant.
        assert_eq!(events.len(), 17);
        let field = |ev: &serde::Value, name: &str| -> Option<f64> {
            match ev.as_map()?.iter().find(|(k, _)| k == name)? {
                (_, serde::Value::Num(x)) => Some(*x),
                (_, serde::Value::Int(i)) => Some(*i as f64),
                _ => None,
            }
        };
        let phase = |ev: &serde::Value| -> String {
            match ev.as_map().unwrap().iter().find(|(k, _)| k == "ph") {
                Some((_, serde::Value::Str(s))) => s.clone(),
                _ => panic!("event without ph"),
            }
        };
        let mut durations = 0;
        for ev in events {
            assert!(field(ev, "pid").is_some(), "{ev:?}");
            assert!(field(ev, "tid").is_some(), "{ev:?}");
            if phase(ev) == "X" {
                durations += 1;
                assert!(field(ev, "ts").is_some(), "{ev:?}");
                assert!(field(ev, "dur").is_some(), "{ev:?}");
            }
        }
        assert_eq!(durations, 8);
        // Segments nest inside their request span on the same track: for
        // stream 1, the wait and serve segments tile [5 s, 70 s].
        let on_track_1: Vec<(f64, f64)> = events
            .iter()
            .filter(|ev| phase(ev) == "X" && field(ev, "tid") == Some(1.0))
            .map(|ev| (field(ev, "ts").unwrap(), field(ev, "dur").unwrap()))
            .collect();
        assert_eq!(on_track_1.len(), 3);
        let (outer_ts, outer_dur) = on_track_1[0];
        for &(ts, dur) in &on_track_1[1..] {
            assert!(ts >= outer_ts && ts + dur <= outer_ts + outer_dur + 1e-6);
        }
    }
}
