//! Dependency-free SVG rendering of experiment series.
//!
//! Each [`Series`] becomes a line chart comparable to the paper's figures:
//! x/y axes with tick labels, one polyline per curve with point markers
//! and optional 95 %-CI whiskers, and a legend. The output is plain SVG
//! 1.1 viewable in any browser; the `figures` harness writes one next to
//! every markdown table.

use crate::series::Series;
use std::fmt::Write as _;

/// Rendering options.
#[derive(Clone, Debug)]
pub struct SvgOptions {
    /// Canvas width in pixels.
    pub width: u32,
    /// Canvas height in pixels.
    pub height: u32,
    /// Fixed y range; `None` = auto-fit with 5 % padding.
    pub y_range: Option<(f64, f64)>,
    /// Draw 95 %-CI whiskers when a point has more than one trial.
    pub show_ci: bool,
}

impl Default for SvgOptions {
    fn default() -> Self {
        SvgOptions {
            width: 720,
            height: 440,
            y_range: None,
            show_ci: true,
        }
    }
}

/// A colour-blind-friendly qualitative palette (Okabe–Ito), cycled.
const PALETTE: [&str; 8] = [
    "#0072B2", "#D55E00", "#009E73", "#CC79A7", "#E69F00", "#56B4E9", "#F0E442", "#000000",
];

const MARGIN_LEFT: f64 = 64.0;
const MARGIN_RIGHT: f64 = 180.0; // legend gutter
const MARGIN_TOP: f64 = 42.0;
const MARGIN_BOTTOM: f64 = 52.0;

/// "Nice" tick step: 1/2/5 × 10^k covering roughly `span / target` per
/// step.
fn nice_step(span: f64, target: usize) -> f64 {
    debug_assert!(span > 0.0);
    let raw = span / target.max(1) as f64;
    let mag = 10f64.powf(raw.log10().floor());
    let norm = raw / mag;
    let factor = if norm <= 1.0 {
        1.0
    } else if norm <= 2.0 {
        2.0
    } else if norm <= 5.0 {
        5.0
    } else {
        10.0
    };
    factor * mag
}

fn ticks(lo: f64, hi: f64, target: usize) -> Vec<f64> {
    let step = nice_step(hi - lo, target);
    let first = (lo / step).ceil() * step;
    let mut out = Vec::new();
    let mut t = first;
    while t <= hi + step * 1e-9 {
        // Snap tiny float residue (e.g. -0.7500000000000001) to the grid.
        out.push((t / step).round() * step);
        t += step;
    }
    out
}

fn fmt_tick(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 100.0 {
        format!("{v:.0}")
    } else if v.abs() >= 1.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.2}")
    }
}

/// Renders `series` as an SVG document.
pub fn render_series(series: &Series, opts: &SvgOptions) -> String {
    assert!(!series.x.is_empty(), "cannot plot an empty series");
    let w = opts.width as f64;
    let h = opts.height as f64;
    let plot_w = (w - MARGIN_LEFT - MARGIN_RIGHT).max(50.0);
    let plot_h = (h - MARGIN_TOP - MARGIN_BOTTOM).max(50.0);

    let x_lo = series.x.iter().cloned().fold(f64::INFINITY, f64::min);
    let x_hi = series.x.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let x_span = if x_hi > x_lo { x_hi - x_lo } else { 1.0 };

    let (y_lo, y_hi) = match opts.y_range {
        Some(r) => r,
        None => {
            let mut lo = f64::INFINITY;
            let mut hi = f64::NEG_INFINITY;
            for c in &series.curves {
                for p in &c.points {
                    lo = lo.min(p.mean - if opts.show_ci { p.ci95 } else { 0.0 });
                    hi = hi.max(p.mean + if opts.show_ci { p.ci95 } else { 0.0 });
                }
            }
            if !lo.is_finite() || !hi.is_finite() {
                (0.0, 1.0)
            } else if hi > lo {
                let pad = (hi - lo) * 0.05;
                (lo - pad, hi + pad)
            } else {
                (lo - 0.5, hi + 0.5)
            }
        }
    };
    let y_span = (y_hi - y_lo).max(1e-12);

    let sx = |x: f64| MARGIN_LEFT + (x - x_lo) / x_span * plot_w;
    let sy = |y: f64| MARGIN_TOP + (1.0 - (y - y_lo) / y_span) * plot_h;

    let mut svg = String::with_capacity(16 * 1024);
    let _ = writeln!(
        svg,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{w}" height="{h}" viewBox="0 0 {w} {h}" font-family="sans-serif">"#
    );
    let _ = writeln!(svg, r#"<rect width="{w}" height="{h}" fill="white"/>"#);
    // Title.
    let _ = writeln!(
        svg,
        r#"<text x="{}" y="24" font-size="15" font-weight="bold">{}</text>"#,
        MARGIN_LEFT,
        xml_escape(&series.title)
    );

    // Gridlines + ticks.
    for ty in ticks(y_lo, y_hi, 6) {
        let y = sy(ty);
        let _ = writeln!(
            svg,
            r##"<line x1="{:.1}" y1="{y:.1}" x2="{:.1}" y2="{y:.1}" stroke="#ddd"/>"##,
            MARGIN_LEFT,
            MARGIN_LEFT + plot_w
        );
        let _ = writeln!(
            svg,
            r#"<text x="{:.1}" y="{:.1}" font-size="11" text-anchor="end">{}</text>"#,
            MARGIN_LEFT - 6.0,
            y + 4.0,
            fmt_tick(ty)
        );
    }
    for tx in ticks(x_lo, x_hi, 8) {
        let x = sx(tx);
        let _ = writeln!(
            svg,
            r##"<line x1="{x:.1}" y1="{:.1}" x2="{x:.1}" y2="{:.1}" stroke="#eee"/>"##,
            MARGIN_TOP,
            MARGIN_TOP + plot_h
        );
        let _ = writeln!(
            svg,
            r#"<text x="{x:.1}" y="{:.1}" font-size="11" text-anchor="middle">{}</text>"#,
            MARGIN_TOP + plot_h + 16.0,
            fmt_tick(tx)
        );
    }
    // Axes frame.
    let _ = writeln!(
        svg,
        r##"<rect x="{:.1}" y="{:.1}" width="{plot_w:.1}" height="{plot_h:.1}" fill="none" stroke="#444"/>"##,
        MARGIN_LEFT, MARGIN_TOP
    );
    // Axis labels.
    let _ = writeln!(
        svg,
        r#"<text x="{:.1}" y="{:.1}" font-size="12" text-anchor="middle">{}</text>"#,
        MARGIN_LEFT + plot_w / 2.0,
        h - 14.0,
        xml_escape(&series.x_label)
    );
    let _ = writeln!(
        svg,
        r#"<text x="16" y="{:.1}" font-size="12" text-anchor="middle" transform="rotate(-90 16 {:.1})">{}</text>"#,
        MARGIN_TOP + plot_h / 2.0,
        MARGIN_TOP + plot_h / 2.0,
        xml_escape(&series.y_label)
    );

    // Curves.
    for (ci, curve) in series.curves.iter().enumerate() {
        let color = PALETTE[ci % PALETTE.len()];
        // CI whiskers first (under the line).
        if opts.show_ci {
            for (&x, p) in series.x.iter().zip(&curve.points) {
                if p.n > 1 && p.ci95 > 0.0 {
                    let cx = sx(x);
                    let y1 = sy((p.mean - p.ci95).clamp(y_lo, y_hi));
                    let y2 = sy((p.mean + p.ci95).clamp(y_lo, y_hi));
                    let _ = writeln!(
                        svg,
                        r#"<line x1="{cx:.1}" y1="{y1:.1}" x2="{cx:.1}" y2="{y2:.1}" stroke="{color}" stroke-opacity="0.45"/>"#
                    );
                }
            }
        }
        let pts: Vec<String> = series
            .x
            .iter()
            .zip(&curve.points)
            .map(|(&x, p)| format!("{:.1},{:.1}", sx(x), sy(p.mean.clamp(y_lo, y_hi))))
            .collect();
        let _ = writeln!(
            svg,
            r#"<polyline points="{}" fill="none" stroke="{color}" stroke-width="1.8"/>"#,
            pts.join(" ")
        );
        for (&x, p) in series.x.iter().zip(&curve.points) {
            let _ = writeln!(
                svg,
                r#"<circle cx="{:.1}" cy="{:.1}" r="2.6" fill="{color}"/>"#,
                sx(x),
                sy(p.mean.clamp(y_lo, y_hi))
            );
        }
        // Legend entry.
        let ly = MARGIN_TOP + 8.0 + ci as f64 * 18.0;
        let lx = MARGIN_LEFT + plot_w + 12.0;
        let _ = writeln!(
            svg,
            r#"<line x1="{lx:.1}" y1="{ly:.1}" x2="{:.1}" y2="{ly:.1}" stroke="{color}" stroke-width="2"/>"#,
            lx + 18.0
        );
        let _ = writeln!(
            svg,
            r#"<text x="{:.1}" y="{:.1}" font-size="11">{}</text>"#,
            lx + 24.0,
            ly + 4.0,
            xml_escape(&curve.label)
        );
    }
    svg.push_str("</svg>\n");
    svg
}

fn xml_escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
        .replace('"', "&quot;")
}

#[cfg(test)]
mod tests {
    use super::*;
    use sct_simcore::Summary;

    fn sample() -> Series {
        let mut s = Series::new(
            "Fig. X <test> & demo",
            "zipf theta",
            "utilization",
            vec![-1.0, 0.0, 1.0],
        );
        s.push_curve(
            "no migration",
            vec![
                Summary::of(&[0.5, 0.6]),
                Summary::of(&[0.8, 0.82]),
                Summary::of(&[0.9, 0.92]),
            ],
        );
        s.push_curve(
            "hops=1",
            vec![
                Summary::of(&[0.55]),
                Summary::of(&[0.85]),
                Summary::of(&[0.95]),
            ],
        );
        s
    }

    #[test]
    fn renders_well_formed_svg() {
        let svg = render_series(&sample(), &SvgOptions::default());
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        // Every opened polyline/circle/line/text/rect is self-closed; the
        // only paired tags are svg and text.
        assert_eq!(svg.matches("<svg").count(), 1);
        assert_eq!(svg.matches("</svg>").count(), 1);
        assert_eq!(svg.matches("<text").count(), svg.matches("</text>").count());
    }

    #[test]
    fn one_polyline_and_legend_entry_per_curve() {
        let svg = render_series(&sample(), &SvgOptions::default());
        assert_eq!(svg.matches("<polyline").count(), 2);
        assert!(svg.contains("no migration"));
        assert!(svg.contains("hops=1"));
        // 3 markers per curve.
        assert_eq!(svg.matches("<circle").count(), 6);
    }

    #[test]
    fn ci_whiskers_only_for_multi_trial_points() {
        let svg = render_series(&sample(), &SvgOptions::default());
        // Curve 1 has 3 multi-trial points with nonzero CI; curve 2 has
        // single-trial points (no whiskers). Whisker lines carry opacity.
        assert_eq!(svg.matches("stroke-opacity=\"0.45\"").count(), 3);
        let no_ci = render_series(
            &sample(),
            &SvgOptions {
                show_ci: false,
                ..Default::default()
            },
        );
        assert_eq!(no_ci.matches("stroke-opacity=\"0.45\"").count(), 0);
    }

    #[test]
    fn titles_are_escaped() {
        let svg = render_series(&sample(), &SvgOptions::default());
        assert!(svg.contains("Fig. X &lt;test&gt; &amp; demo"));
        assert!(!svg.contains("<test>"));
    }

    #[test]
    fn fixed_y_range_is_respected() {
        let svg = render_series(
            &sample(),
            &SvgOptions {
                y_range: Some((0.0, 1.0)),
                ..Default::default()
            },
        );
        assert!(svg.contains(">0<") || svg.contains(">0.00<") || svg.contains(">0</text>"));
        assert!(svg.contains("1.0"));
    }

    #[test]
    fn nice_ticks_cover_the_range() {
        let t = ticks(-1.5, 1.0, 8);
        assert!(t.first().unwrap() >= &-1.5);
        assert!(t.last().unwrap() <= &(1.0 + 1e-9));
        assert!(t.len() >= 4, "{t:?}");
        // Steps are uniform.
        let step = t[1] - t[0];
        for w in t.windows(2) {
            assert!((w[1] - w[0] - step).abs() < 1e-9);
        }
    }

    #[test]
    fn nice_step_values() {
        assert_eq!(nice_step(1.0, 5), 0.2);
        assert_eq!(nice_step(10.0, 5), 2.0);
        assert_eq!(nice_step(2.5, 5), 0.5);
    }

    #[test]
    #[should_panic(expected = "empty series")]
    fn empty_series_rejected() {
        let s = Series::new("t", "x", "y", Vec::new());
        render_series(&s, &SvgOptions::default());
    }
}
