//! Analytical models and result reporting.
//!
//! * [`erlang`] — the Erlang-B loss formula and the paper's analytical
//!   single-server utilization-vs-SVBR expression (§3.2 references an
//!   analytic curve in the tech report; for a single server with no
//!   staging and no migration the system is an M/G/k/k loss queue, whose
//!   blocking probability depends on the service distribution only through
//!   its mean — so Erlang-B applies exactly).
//! * [`fairness`] — Jain's index and load-spread metrics for per-server
//!   utilization vectors.
//! * [`series`] — experiment output as (x, curves) series of trial
//!   summaries, serialisable and alignable with the paper's figures.
//! * [`report`] — plain-text/markdown table rendering for the harness.
//! * [`snapshot`] — the serialisable [`snapshot::MetricsSnapshot`] schema
//!   the core's telemetry registry exports (`sctsim run --metrics`), with
//!   markdown and SVG-dashboard renderers (`sctsim report`).
//! * [`spans`] — request-lifecycle spans with causal edges
//!   (`sctsim run --spans`): the serialisable [`spans::SpanSet`] schema,
//!   a Chrome-trace/Perfetto exporter, and a critical-path analyzer
//!   decomposing completed-request latency into wait/serve/pause.
//! * [`exec`] — the wall-clock execution-plane trace (`sctsim run
//!   --exec-trace`): the serialisable [`exec::ExecTrace`] schema of
//!   epoch/burst/run timings, a Perfetto exporter (one tid per worker
//!   thread, barrier slices on the coordinator track), and the
//!   Amdahl-style barrier-stall analyzer behind `sctsim exec`.
//! * [`benchdiff`] — schema-free structured comparator for bench
//!   result files (`sctsim bench-diff`), flattening numeric leaves,
//!   classifying them by direction, and naming the worst-moved cell.
//! * [`slo`] — the declarative online SLO rule engine (threshold,
//!   rate-of-change, multi-window burn-rate) evaluated against windows as
//!   they close, emitting timestamped alerts into the recording.
//! * [`svg`] — dependency-free SVG line charts of any [`Series`], so the
//!   harness emits viewable figures, not just tables.
//! * [`timeseries`] — the flight-recorder schema (`sctsim run
//!   --timeseries`): fixed-width virtual-time windows of counters and
//!   gauge means, per-shard barrier series, trial merging, recording
//!   diff, and the `sctsim watch` terminal dashboard.
//! * [`trace`] — reader for the JSONL event traces the simulator exports
//!   (`sctsim --trace`), parsing the wire format generically so analyses
//!   can count, filter, and reconcile events without depending on the
//!   core's event enum.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod benchdiff;
pub mod erlang;
pub mod exec;
pub mod fairness;
pub mod report;
pub mod series;
pub mod slo;
pub mod snapshot;
pub mod spans;
pub mod svg;
pub mod timeseries;
pub mod trace;

pub use benchdiff::{BenchDiff, CellDelta, Direction};
pub use erlang::{erlang_b, expected_utilization_vs_svbr};
pub use exec::{BurstRecord, EpochRecord, ExecReport, ExecTrace, RunRecord};
pub use fairness::jain_index;
pub use report::Table;
pub use series::{Curve, Series};
pub use slo::{SloAlert, SloEvaluator, SloOp, SloPolicy, SloRule};
pub use snapshot::{
    BucketSnapshot, CounterSnapshot, GaugeSnapshot, HistogramSnapshot, LoopProfilesSnapshot,
    MetricsSnapshot, ProfilePhase, ProfileSnapshot,
};
pub use spans::{
    AdmitVia, CausalEdge, CriticalPath, EdgeEnd, EdgeKind, Segment, SegmentKind, ServerMark, Span,
    SpanKind, SpanOutcome, SpanSet,
};
pub use svg::{render_series, SvgOptions};
pub use timeseries::{
    diff, render_dashboard, DiffPoint, RecordingDiff, ShardSeries, TimeSeriesRecording, WindowRow,
};
pub use trace::{Trace, TraceEvent};
