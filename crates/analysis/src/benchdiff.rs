//! Structured comparator for benchmark result files.
//!
//! `sctsim bench-diff OLD.json NEW.json [--gate PCT]` compares two
//! bench reports (`results/BENCH_sim.json`, `results/BENCH_oracle.json`,
//! or anything with the same shape: nested maps and arrays of cell
//! maps with numeric leaves) and names the worst-moved cell, replacing
//! eyeballed ratchet failures with an attributed report.
//!
//! The comparator is schema-free: both files are flattened to
//! `path → number` leaves. Array elements that carry identifying
//! fields (`scheduler`/`migration` for the grid, `shards`/`threads`
//! for the huge sweep) are labelled by those ids rather than by index,
//! so a reordered array still lines up. Each leaf is classified by its
//! name — throughput-like leaves (`events_per_sec`, `speedup`,
//! `floor`) regress when they *drop*, cost-like leaves (`wall_secs`,
//! `overhead_pct`) regress when they *rise*, anything else is
//! informational — and the regression is expressed as a percentage of
//! the old value. [`BenchDiff::gate`] returns the leaves whose
//! regression exceeds a threshold.

use serde::{DeError, Deserialize, Value};
use std::fmt::Write as _;

/// Which direction of movement counts as a regression for a leaf.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// Throughput-like: a drop is a regression.
    HigherBetter,
    /// Cost-like: a rise is a regression.
    LowerBetter,
    /// Informational: never gated.
    Info,
}

/// One numeric leaf present in either file.
#[derive(Clone, Debug, PartialEq)]
pub struct CellDelta {
    /// Flattened path, e.g. `huge[4s,8t].events_per_sec`.
    pub path: String,
    /// Value in the old file.
    pub old: f64,
    /// Value in the new file.
    pub new: f64,
    /// Leaf classification.
    pub direction: Direction,
    /// Signed regression as a percentage of `old`: positive means the
    /// leaf moved in the bad direction. Always 0 for [`Direction::Info`].
    pub regression_pct: f64,
}

/// The full comparison of two bench reports.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchDiff {
    /// Leaves present in both files, worst movement first.
    pub cells: Vec<CellDelta>,
    /// Leaf paths only in the new file.
    pub added: Vec<String>,
    /// Leaf paths only in the old file.
    pub removed: Vec<String>,
}

/// Raw-tree wrapper so `serde_json::from_str` hands back the parsed
/// [`Value`] without a schema.
struct RawValue(Value);

impl Deserialize for RawValue {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(RawValue(v.clone()))
    }
}

fn classify(path: &str) -> Direction {
    let leaf = path.rsplit('.').next().unwrap_or(path);
    if leaf.contains("events_per_sec") || leaf.contains("speedup") || leaf.contains("floor") {
        Direction::HigherBetter
    } else if leaf.contains("wall_secs") || leaf.contains("overhead_pct") {
        Direction::LowerBetter
    } else {
        Direction::Info
    }
}

/// Label for an array element: identifying fields when present, else
/// the element index.
fn element_label(v: &Value, index: usize) -> String {
    if let Some(map) = v.as_map() {
        let get = |key: &str| -> Option<String> {
            map.iter().find(|(k, _)| k == key).map(|(_, v)| match v {
                Value::Str(s) => s.clone(),
                Value::Int(i) => i.to_string(),
                Value::Num(n) => format!("{n}"),
                Value::Bool(b) => b.to_string(),
                _ => String::new(),
            })
        };
        if let (Some(s), Some(m)) = (get("scheduler"), get("migration")) {
            return format!("[{s},{m}]");
        }
        if let (Some(s), Some(t)) = (get("shards"), get("threads")) {
            return format!("[{s}s,{t}t]");
        }
    }
    format!("[{index}]")
}

fn flatten(prefix: &str, v: &Value, out: &mut Vec<(String, f64)>) {
    match v {
        Value::Int(i) => out.push((prefix.to_string(), *i as f64)),
        Value::Num(n) => out.push((prefix.to_string(), *n)),
        Value::Map(entries) => {
            for (k, child) in entries {
                let path = if prefix.is_empty() {
                    k.clone()
                } else {
                    format!("{prefix}.{k}")
                };
                flatten(&path, child, out);
            }
        }
        Value::Seq(items) => {
            for (i, child) in items.iter().enumerate() {
                let path = format!("{prefix}{}", element_label(child, i));
                flatten(&path, child, out);
            }
        }
        Value::Null | Value::Bool(_) | Value::Str(_) => {}
    }
}

/// Flattens one bench report to its numeric leaves.
fn leaves(text: &str, which: &str) -> Result<Vec<(String, f64)>, String> {
    let raw: RawValue =
        serde_json::from_str(text).map_err(|e| format!("invalid {which} bench file: {e}"))?;
    let mut out = Vec::new();
    flatten("", &raw.0, &mut out);
    Ok(out)
}

/// Compares two bench report texts.
pub fn diff(old_text: &str, new_text: &str) -> Result<BenchDiff, String> {
    let old = leaves(old_text, "old")?;
    let new = leaves(new_text, "new")?;
    let mut cells = Vec::new();
    let mut removed = Vec::new();
    for (path, o) in &old {
        match new.iter().find(|(p, _)| p == path) {
            Some((_, n)) => {
                let direction = classify(path);
                let regression_pct = if *o != 0.0 {
                    match direction {
                        Direction::HigherBetter => (o - n) / o.abs() * 100.0,
                        Direction::LowerBetter => (n - o) / o.abs() * 100.0,
                        Direction::Info => 0.0,
                    }
                } else {
                    0.0
                };
                cells.push(CellDelta {
                    path: path.clone(),
                    old: *o,
                    new: *n,
                    direction,
                    regression_pct,
                });
            }
            None => removed.push(path.clone()),
        }
    }
    let added = new
        .iter()
        .filter(|(p, _)| !old.iter().any(|(q, _)| q == p))
        .map(|(p, _)| p.clone())
        .collect();
    cells.sort_by(|a, b| {
        b.regression_pct
            .partial_cmp(&a.regression_pct)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.path.cmp(&b.path))
    });
    Ok(BenchDiff {
        cells,
        added,
        removed,
    })
}

impl BenchDiff {
    /// The worst-moved gated leaf, if any leaf is gated at all.
    pub fn worst(&self) -> Option<&CellDelta> {
        self.cells.iter().find(|c| c.direction != Direction::Info)
    }

    /// Gated leaves whose regression exceeds `pct`.
    pub fn gate(&self, pct: f64) -> Vec<&CellDelta> {
        self.cells
            .iter()
            .filter(|c| c.direction != Direction::Info && c.regression_pct > pct)
            .collect()
    }

    /// Renders the comparison table, worst movement first.
    pub fn to_text(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "# Bench diff");
        let _ = writeln!(
            s,
            "{:<44} {:>14} {:>14} {:>9}  dir",
            "cell", "old", "new", "moved%"
        );
        for c in &self.cells {
            let dir = match c.direction {
                Direction::HigherBetter => "higher-better",
                Direction::LowerBetter => "lower-better",
                Direction::Info => "info",
            };
            let moved = if c.direction == Direction::Info {
                // Show raw relative movement for context, unsigned by
                // goodness.
                if c.old != 0.0 {
                    (c.new - c.old) / c.old.abs() * 100.0
                } else {
                    0.0
                }
            } else {
                c.regression_pct
            };
            let _ = writeln!(
                s,
                "{:<44} {:>14.4} {:>14.4} {:>+9.2}  {dir}",
                c.path, c.old, c.new, moved
            );
        }
        for p in &self.added {
            let _ = writeln!(s, "added:   {p}");
        }
        for p in &self.removed {
            let _ = writeln!(s, "removed: {p}");
        }
        match self.worst() {
            Some(w) if w.regression_pct > 0.0 => {
                let _ = writeln!(
                    s,
                    "worst-moved cell: {} ({:+.2}% regression, {:.4} -> {:.4})",
                    w.path, w.regression_pct, w.old, w.new
                );
            }
            _ => {
                let _ = writeln!(s, "worst-moved cell: none regressed");
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const OLD: &str = r#"{
      "grid": [
        {"scheduler": "eftf", "migration": "single_hop", "events_per_sec": 1000.0, "events": 500},
        {"scheduler": "fcfs", "migration": "none", "events_per_sec": 900.0, "events": 500}
      ],
      "huge": [
        {"shards": 4, "threads": 8, "events_per_sec": 61845.1, "wall_secs": 2.0}
      ],
      "probe_overhead": {"overhead_pct": 3.26},
      "floor": 883006.0
    }"#;

    const NEW: &str = r#"{
      "grid": [
        {"scheduler": "fcfs", "migration": "none", "events_per_sec": 950.0, "events": 500},
        {"scheduler": "eftf", "migration": "single_hop", "events_per_sec": 800.0, "events": 500}
      ],
      "huge": [
        {"shards": 4, "threads": 8, "events_per_sec": 70000.0, "wall_secs": 1.8}
      ],
      "probe_overhead": {"overhead_pct": 4.0},
      "floor": 883006.0,
      "exec_overhead": {"overhead_pct": 1.1}
    }"#;

    #[test]
    fn labels_cells_by_ids_and_survives_reordering() {
        let d = diff(OLD, NEW).unwrap();
        let eftf = d
            .cells
            .iter()
            .find(|c| c.path == "grid[eftf,single_hop].events_per_sec")
            .expect("labelled by scheduler+migration despite reorder");
        assert_eq!(eftf.old, 1000.0);
        assert_eq!(eftf.new, 800.0);
        assert!((eftf.regression_pct - 20.0).abs() < 1e-9);
        let huge = d
            .cells
            .iter()
            .find(|c| c.path == "huge[4s,8t].events_per_sec")
            .expect("labelled by shards+threads");
        assert!(
            huge.regression_pct < 0.0,
            "improvement is negative regression"
        );
    }

    #[test]
    fn directions_classify_throughput_cost_and_info() {
        let d = diff(OLD, NEW).unwrap();
        let by = |p: &str| d.cells.iter().find(|c| c.path == p).unwrap();
        assert_eq!(
            by("huge[4s,8t].events_per_sec").direction,
            Direction::HigherBetter
        );
        assert_eq!(
            by("huge[4s,8t].wall_secs").direction,
            Direction::LowerBetter
        );
        assert_eq!(
            by("probe_overhead.overhead_pct").direction,
            Direction::LowerBetter
        );
        assert_eq!(by("floor").direction, Direction::HigherBetter);
        assert_eq!(by("grid[fcfs,none].events").direction, Direction::Info);
        // wall_secs dropped 10%: an improvement for a lower-better leaf.
        assert!(by("huge[4s,8t].wall_secs").regression_pct < 0.0);
    }

    #[test]
    fn gate_names_the_worst_moved_cell() {
        let d = diff(OLD, NEW).unwrap();
        // Worst mover overall is the 20% eftf drop (overhead_pct rose
        // 22.7% — check ordering handles both).
        let worst = d.worst().unwrap();
        assert_eq!(worst.path, "probe_overhead.overhead_pct");
        assert!(
            (worst.regression_pct - 22.699).abs() < 0.01,
            "{}",
            worst.regression_pct
        );
        let gated = d.gate(15.0);
        assert_eq!(gated.len(), 2);
        assert!(d.gate(25.0).is_empty());
        let text = d.to_text();
        assert!(
            text.contains("worst-moved cell: probe_overhead.overhead_pct"),
            "{text}"
        );
    }

    #[test]
    fn added_and_removed_leaves_are_reported() {
        let d = diff(OLD, NEW).unwrap();
        assert!(
            d.added.iter().any(|p| p == "exec_overhead.overhead_pct"),
            "{:?}",
            d.added
        );
        assert!(d.removed.is_empty());
        let back = diff(NEW, OLD).unwrap();
        assert!(back
            .removed
            .iter()
            .any(|p| p == "exec_overhead.overhead_pct"));
    }

    #[test]
    fn invalid_json_is_an_error_not_a_panic() {
        assert!(diff("{nope", "{}").is_err());
        assert!(diff("{}", "[1,").is_err());
        let empty = diff("{}", "{}").unwrap();
        assert!(empty.cells.is_empty());
        assert!(empty.to_text().contains("none regressed"));
    }
}
