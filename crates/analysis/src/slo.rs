//! Online SLO rule engine for windowed time-series recordings.
//!
//! An [`SloPolicy`] is a declarative list of rules evaluated against
//! [`crate::timeseries::WindowRow`]s *as each window closes* — the
//! engine is streaming, holding only the bounded metric history each
//! rule needs. Three rule shapes cover the classic alerting repertoire:
//!
//! * [`SloRule::Threshold`] — a metric stays above/below a bound for
//!   `for_windows` consecutive windows (debounced level alert);
//! * [`SloRule::RateOfChange`] — the metric moved more than `max_delta`
//!   between consecutive windows (spike/cliff detector);
//! * [`SloRule::BurnRate`] — the SRE multi-window burn-rate pattern: a
//!   short-window average *and* a long-window average of an error ratio
//!   both exceed `factor ×` / `1 ×` the objective, catching fast budget
//!   burn without paging on noise.
//!
//! Evaluation is pure arithmetic over the rows, so alerts are exactly as
//! deterministic as the recording itself: same windows in, same alerts
//! out, independent of wall clock or shard count. Threshold and
//! burn-rate rules fire once on *entering* violation and re-arm when the
//! condition clears; rate-of-change fires per offending window.

use crate::timeseries::WindowRow;
use serde::{Deserialize, Serialize};

/// Comparison direction for [`SloRule::Threshold`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum SloOp {
    /// Violated while `metric > threshold`.
    Above,
    /// Violated while `metric < threshold`.
    Below,
}

/// One declarative SLO rule. `name` labels the alerts it emits; `metric`
/// is any name [`WindowRow::metric`] resolves (unknown names never
/// fire — the recording carries the rule verbatim so the gap is
/// auditable).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum SloRule {
    /// Debounced level alert: fires when the condition has held for
    /// `for_windows` consecutive windows.
    Threshold {
        /// Alert label.
        name: String,
        /// Metric name resolved via [`WindowRow::metric`].
        metric: String,
        /// Comparison direction.
        op: SloOp,
        /// The bound compared against.
        threshold: f64,
        /// Consecutive violating windows required before firing (≥ 1).
        for_windows: u32,
    },
    /// Spike detector: fires whenever `|metric - previous| > max_delta`.
    RateOfChange {
        /// Alert label.
        name: String,
        /// Metric name resolved via [`WindowRow::metric`].
        metric: String,
        /// Largest tolerated window-to-window move.
        max_delta: f64,
    },
    /// Multi-window burn rate: fires when the mean of the last
    /// `short_windows` exceeds `objective × factor` *and* the mean of the
    /// last `long_windows` exceeds `objective` (both windows full).
    BurnRate {
        /// Alert label.
        name: String,
        /// Metric name resolved via [`WindowRow::metric`] — typically an
        /// error ratio like `rejection_ratio`.
        metric: String,
        /// The error-budget objective for the metric.
        objective: f64,
        /// Fast-burn window length, in closed windows (≥ 1).
        short_windows: u32,
        /// Slow confirmation window length (≥ `short_windows`).
        long_windows: u32,
        /// Burn-rate multiplier the short window must exceed.
        factor: f64,
    },
}

impl SloRule {
    /// The rule's alert label.
    pub fn name(&self) -> &str {
        match self {
            SloRule::Threshold { name, .. }
            | SloRule::RateOfChange { name, .. }
            | SloRule::BurnRate { name, .. } => name,
        }
    }

    /// The metric the rule watches.
    pub fn metric(&self) -> &str {
        match self {
            SloRule::Threshold { metric, .. }
            | SloRule::RateOfChange { metric, .. }
            | SloRule::BurnRate { metric, .. } => metric,
        }
    }
}

/// A declarative list of SLO rules, serialisable so policies can be
/// loaded from a file (`sctsim run --slo FILE`).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SloPolicy {
    /// The rules, evaluated independently against every closed window.
    pub rules: Vec<SloRule>,
}

impl SloPolicy {
    /// The default watchdog policy: saturation level, rejection spike,
    /// and rejection burn-rate rules over metrics every recording has.
    pub fn default_policy() -> Self {
        SloPolicy {
            rules: vec![
                SloRule::Threshold {
                    name: "saturated".to_string(),
                    metric: "utilization".to_string(),
                    op: SloOp::Above,
                    threshold: 0.98,
                    for_windows: 3,
                },
                SloRule::RateOfChange {
                    name: "arrival_spike".to_string(),
                    metric: "arrival_rate".to_string(),
                    max_delta: 0.5,
                },
                SloRule::BurnRate {
                    name: "rejection_burn".to_string(),
                    metric: "rejection_ratio".to_string(),
                    objective: 0.02,
                    short_windows: 3,
                    long_windows: 12,
                    factor: 4.0,
                },
            ],
        }
    }

    /// Parses a policy from its JSON form.
    pub fn from_json(text: &str) -> Result<SloPolicy, String> {
        serde_json::from_str(text).map_err(|e| format!("invalid SLO policy: {e}"))
    }

    /// Serialises the policy as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("policy serialises")
    }
}

/// One timestamped alert, recorded into the time-series file.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SloAlert {
    /// Trial that produced the alert (0-based; set by the merger).
    pub trial: u32,
    /// Index of the window that closed the violation.
    pub window: u32,
    /// Virtual time at the end of that window, seconds.
    pub time_secs: f64,
    /// The firing rule's label.
    pub rule: String,
    /// The watched metric.
    pub metric: String,
    /// The value that violated (short-window mean for burn rates,
    /// window-to-window delta for rate-of-change).
    pub value: f64,
    /// The effective bound it violated (`objective × factor` for burn
    /// rates).
    pub threshold: f64,
}

/// Per-rule streaming state.
enum RuleState {
    Threshold { streak: u32 },
    RateOfChange { prev: Option<f64> },
    BurnRate { history: Vec<f64>, firing: bool },
}

/// The streaming evaluator: feed it closed windows in order via
/// [`SloEvaluator::on_window`]; it returns the alerts each close fired.
pub struct SloEvaluator {
    policy: SloPolicy,
    states: Vec<RuleState>,
}

impl SloEvaluator {
    /// Builds an evaluator over `policy`.
    pub fn new(policy: SloPolicy) -> Self {
        let states = policy
            .rules
            .iter()
            .map(|rule| match rule {
                SloRule::Threshold { .. } => RuleState::Threshold { streak: 0 },
                SloRule::RateOfChange { .. } => RuleState::RateOfChange { prev: None },
                SloRule::BurnRate { .. } => RuleState::BurnRate {
                    history: Vec::new(),
                    firing: false,
                },
            })
            .collect();
        SloEvaluator { policy, states }
    }

    /// The policy being evaluated.
    pub fn policy(&self) -> &SloPolicy {
        &self.policy
    }

    /// Evaluates every rule against a freshly closed window. Windows must
    /// arrive in index order.
    pub fn on_window(&mut self, row: &WindowRow) -> Vec<SloAlert> {
        let mut alerts = Vec::new();
        let end_secs = row.start_secs + row.span_secs;
        for (rule, state) in self.policy.rules.iter().zip(&mut self.states) {
            let Some(value) = row.metric(rule.metric()) else {
                continue;
            };
            match (rule, state) {
                (
                    SloRule::Threshold {
                        name,
                        metric,
                        op,
                        threshold,
                        for_windows,
                    },
                    RuleState::Threshold { streak },
                ) => {
                    let violated = match op {
                        SloOp::Above => value > *threshold,
                        SloOp::Below => value < *threshold,
                    };
                    *streak = if violated { *streak + 1 } else { 0 };
                    // Fire once on entering; re-arm only after clearing.
                    if *streak == (*for_windows).max(1) {
                        alerts.push(SloAlert {
                            trial: 0,
                            window: row.index,
                            time_secs: end_secs,
                            rule: name.clone(),
                            metric: metric.clone(),
                            value,
                            threshold: *threshold,
                        });
                    }
                }
                (
                    SloRule::RateOfChange {
                        name,
                        metric,
                        max_delta,
                    },
                    RuleState::RateOfChange { prev },
                ) => {
                    if let Some(p) = *prev {
                        let delta = value - p;
                        if delta.abs() > *max_delta {
                            alerts.push(SloAlert {
                                trial: 0,
                                window: row.index,
                                time_secs: end_secs,
                                rule: name.clone(),
                                metric: metric.clone(),
                                value: delta,
                                threshold: *max_delta,
                            });
                        }
                    }
                    *prev = Some(value);
                }
                (
                    SloRule::BurnRate {
                        name,
                        metric,
                        objective,
                        short_windows,
                        long_windows,
                        factor,
                    },
                    RuleState::BurnRate { history, firing },
                ) => {
                    let long = (*long_windows).max(1) as usize;
                    let short = (*short_windows).max(1) as usize;
                    history.push(value);
                    if history.len() > long {
                        history.remove(0);
                    }
                    if history.len() < long {
                        continue;
                    }
                    let mean = |w: &[f64]| w.iter().sum::<f64>() / w.len() as f64;
                    let short_mean = mean(&history[history.len() - short.min(history.len())..]);
                    let long_mean = mean(history);
                    let violated = short_mean > *objective * *factor && long_mean > *objective;
                    if violated && !*firing {
                        alerts.push(SloAlert {
                            trial: 0,
                            window: row.index,
                            time_secs: end_secs,
                            rule: name.clone(),
                            metric: metric.clone(),
                            value: short_mean,
                            threshold: *objective * *factor,
                        });
                    }
                    *firing = violated;
                }
                _ => unreachable!("rule/state vectors are built in lockstep"),
            }
        }
        alerts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timeseries::WindowRow;

    /// A minimal window with everything zero except what a test sets.
    fn window(index: u32, utilization: f64, arrivals: u64, rejected: u64) -> WindowRow {
        let mut w = WindowRow::empty(index, index as f64 * 100.0, 100.0, 100.0, 2);
        w.utilization = utilization;
        w.arrivals = arrivals;
        w.rejected = rejected;
        w
    }

    #[test]
    fn threshold_debounces_and_rearms() {
        let policy = SloPolicy {
            rules: vec![SloRule::Threshold {
                name: "hot".into(),
                metric: "utilization".into(),
                op: SloOp::Above,
                threshold: 0.9,
                for_windows: 2,
            }],
        };
        let mut ev = SloEvaluator::new(policy);
        assert!(ev.on_window(&window(0, 0.95, 0, 0)).is_empty(), "streak 1");
        let fired = ev.on_window(&window(1, 0.96, 0, 0));
        assert_eq!(fired.len(), 1, "streak 2 fires");
        assert_eq!(fired[0].rule, "hot");
        assert_eq!(fired[0].window, 1);
        assert_eq!(fired[0].time_secs, 200.0);
        assert!(
            ev.on_window(&window(2, 0.97, 0, 0)).is_empty(),
            "stays firing, no re-alert"
        );
        assert!(ev.on_window(&window(3, 0.5, 0, 0)).is_empty(), "cleared");
        assert!(ev.on_window(&window(4, 0.95, 0, 0)).is_empty());
        assert_eq!(
            ev.on_window(&window(5, 0.95, 0, 0)).len(),
            1,
            "re-armed after clearing"
        );
    }

    #[test]
    fn rate_of_change_fires_per_spike() {
        let policy = SloPolicy {
            rules: vec![SloRule::RateOfChange {
                name: "util_jump".into(),
                metric: "utilization".into(),
                max_delta: 0.3,
            }],
        };
        let mut ev = SloEvaluator::new(policy);
        assert!(ev.on_window(&window(0, 0.1, 0, 0)).is_empty(), "no prev");
        assert!(ev.on_window(&window(1, 0.3, 0, 0)).is_empty(), "small move");
        let fired = ev.on_window(&window(2, 0.8, 0, 0));
        assert_eq!(fired.len(), 1);
        assert!((fired[0].value - 0.5).abs() < 1e-12, "{}", fired[0].value);
        let fired = ev.on_window(&window(3, 0.1, 0, 0));
        assert_eq!(fired.len(), 1, "cliffs count too");
        assert!((fired[0].value + 0.7).abs() < 1e-12);
    }

    #[test]
    fn burn_rate_needs_short_and_long_budgets_burnt() {
        let policy = SloPolicy {
            rules: vec![SloRule::BurnRate {
                name: "reject_burn".into(),
                metric: "rejection_ratio".into(),
                objective: 0.1,
                short_windows: 1,
                long_windows: 3,
                factor: 2.0,
            }],
        };
        let mut ev = SloEvaluator::new(policy);
        // ratios: 0, 0, 0.5 → long mean ≈ 0.167 > 0.1, short 0.5 > 0.2.
        assert!(ev.on_window(&window(0, 0.0, 10, 0)).is_empty());
        assert!(ev.on_window(&window(1, 0.0, 10, 0)).is_empty());
        let fired = ev.on_window(&window(2, 0.0, 10, 5));
        assert_eq!(fired.len(), 1, "short and long both burnt");
        assert!((fired[0].value - 0.5).abs() < 1e-12);
        assert!((fired[0].threshold - 0.2).abs() < 1e-12);
        // Still violating → no duplicate alert.
        assert!(ev.on_window(&window(3, 0.0, 10, 5)).is_empty());
        // Recovery drains the long window, then a fresh burn re-fires.
        assert!(ev.on_window(&window(4, 0.0, 10, 0)).is_empty());
        assert!(ev.on_window(&window(5, 0.0, 10, 0)).is_empty());
        assert!(ev.on_window(&window(6, 0.0, 10, 0)).is_empty());
        let fired = ev.on_window(&window(7, 0.0, 10, 8));
        assert_eq!(fired.len(), 1, "re-fires after recovery");
    }

    #[test]
    fn unknown_metric_never_fires() {
        let policy = SloPolicy {
            rules: vec![SloRule::Threshold {
                name: "ghost".into(),
                metric: "no_such_metric".into(),
                op: SloOp::Above,
                threshold: 0.0,
                for_windows: 1,
            }],
        };
        let mut ev = SloEvaluator::new(policy);
        assert!(ev.on_window(&window(0, 1.0, 1, 1)).is_empty());
    }

    #[test]
    fn policy_round_trips_through_json() {
        let policy = SloPolicy::default_policy();
        let back = SloPolicy::from_json(&policy.to_json()).unwrap();
        assert_eq!(back, policy);
        assert!(SloPolicy::from_json("{oops").is_err());
    }

    /// Zero-denominator windows must not poison a burn rate:
    /// `rejection_ratio` is defined as 0.0 when a window saw no
    /// arrivals, so idle windows count as zero burn — and a later real
    /// burn still fires with the idle windows diluting the long mean.
    #[test]
    fn burn_rate_survives_zero_denominator_windows() {
        let policy = SloPolicy {
            rules: vec![SloRule::BurnRate {
                name: "reject_burn".into(),
                metric: "rejection_ratio".into(),
                objective: 0.1,
                short_windows: 1,
                long_windows: 3,
                factor: 2.0,
            }],
        };
        let mut ev = SloEvaluator::new(policy);
        // Three arrival-free windows: ratio is 0.0 (not 0/0), so the
        // full long window holds finite zeros and nothing fires.
        for i in 0..3 {
            assert!(
                ev.on_window(&window(i, 0.0, 0, 0)).is_empty(),
                "idle window {i}"
            );
        }
        // A real burn after the idle stretch: short mean 1.0 > 0.2 and
        // long mean (0 + 0 + 1)/3 ≈ 0.33 > 0.1 — fires exactly once,
        // with a finite value.
        let fired = ev.on_window(&window(3, 0.0, 4, 4));
        assert_eq!(fired.len(), 1);
        assert!(fired[0].value.is_finite());
        assert!((fired[0].value - 1.0).abs() < 1e-12);
    }

    /// A zero-span window makes per-second rates 0/0 = NaN. NaN
    /// comparisons are false, so the rule must treat the window as
    /// non-violating (never fire, never panic) rather than propagate.
    #[test]
    fn burn_rate_treats_nan_rates_as_non_violating() {
        let policy = SloPolicy {
            rules: vec![SloRule::BurnRate {
                name: "spike_burn".into(),
                metric: "arrival_rate".into(),
                objective: 0.001,
                short_windows: 1,
                long_windows: 2,
                factor: 1.0,
            }],
        };
        let mut ev = SloEvaluator::new(policy);
        let zero_span = |index: u32| WindowRow::empty(index, index as f64 * 100.0, 0.0, 0.0, 2);
        assert!(ev.on_window(&zero_span(0)).is_empty());
        assert!(
            ev.on_window(&zero_span(1)).is_empty(),
            "NaN means must not satisfy the burn condition"
        );
    }

    /// A recording's last window is usually truncated (the run ends mid
    /// width). A threshold streak that completes exactly on that partial
    /// window must still fire, and the alert must be stamped with the
    /// window's *actual* end — start plus its real span, not the nominal
    /// width.
    #[test]
    fn threshold_streak_straddles_the_final_partial_window() {
        let policy = SloPolicy {
            rules: vec![SloRule::Threshold {
                name: "hot".into(),
                metric: "utilization".into(),
                op: SloOp::Above,
                threshold: 0.9,
                for_windows: 3,
            }],
        };
        let mut ev = SloEvaluator::new(policy);
        assert!(ev.on_window(&window(0, 0.95, 0, 0)).is_empty(), "streak 1");
        assert!(ev.on_window(&window(1, 0.95, 0, 0)).is_empty(), "streak 2");
        // The final window closes after 37.5 of its nominal 100 s.
        let mut partial = WindowRow::empty(2, 200.0, 37.5, 37.5, 2);
        partial.utilization = 0.95;
        let fired = ev.on_window(&partial);
        assert_eq!(fired.len(), 1, "streak completes on the partial window");
        assert_eq!(fired[0].window, 2);
        assert!(
            (fired[0].time_secs - 237.5).abs() < 1e-12,
            "alert must end at the truncated window's real end, got {}",
            fired[0].time_secs
        );
    }

    /// The default policy over an empty recording: no windows ever
    /// close, so evaluation is a no-op — no alerts, no panics, and the
    /// evaluator still carries the policy for the recording header.
    #[test]
    fn default_policy_over_an_empty_recording_is_a_no_op() {
        let recording = crate::timeseries::TimeSeriesRecording {
            version: 1,
            trials: 1,
            window_secs: 900.0,
            warmup_secs: 0.0,
            duration_secs: 0.0,
            n_servers: 2,
            windows: Vec::new(),
            shards: Vec::new(),
            alerts: Vec::new(),
        };
        assert!(recording.windows.is_empty());
        let mut ev = SloEvaluator::new(SloPolicy::default_policy());
        let alerts: Vec<SloAlert> = recording
            .windows
            .iter()
            .flat_map(|w| ev.on_window(w))
            .collect();
        assert!(alerts.is_empty());
        assert_eq!(ev.policy(), &SloPolicy::default_policy());
    }
}
